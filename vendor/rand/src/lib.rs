//! Offline drop-in subset of the `rand` crate API used by this workspace.
//!
//! The build container has no network access, so the workspace vendors the
//! few pieces of `rand` it actually uses: a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via splitmix64), the [`Rng`] core trait, the
//! [`RngExt`] extension methods (`random`, `random_range`, `random_bool`),
//! and [`SeedableRng::seed_from_u64`].
//!
//! The generator is *not* the upstream ChaCha12 `StdRng`; seeded streams
//! differ from upstream `rand`, which is fine for this repository because
//! every consumer treats the stream as an opaque deterministic source (the
//! golden tests pin scores produced by *this* generator).

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an [`Rng`]'s raw output
/// (the vendored analogue of sampling from the standard distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Convenience sampling methods available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one value of `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Bundled generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ with
    /// splitmix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let x = rng.random_range(0..4u8);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(1..=16u64);
            assert!((1..=16).contains(&v));
            let i = rng.random_range(0..5usize);
            assert!(i < 5);
            let s = rng.random_range(-3..=3i64);
            assert!((-3..=3).contains(&s));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(10);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(11);
        let _ = rng.random_range(3..3u32);
    }
}
