//! Offline subset of the `criterion` benchmarking API used by this
//! workspace.
//!
//! The build container has no network access, so the workspace vendors the
//! pieces of criterion its benches rely on: [`Criterion`] with
//! `sample_size` / `warm_up_time` / `measurement_time`, benchmark groups
//! with optional [`Throughput`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The harness is deliberately simple: each benchmark warms up for the
//! configured warm-up window, then collects `sample_size` timed samples
//! spread over the measurement window and reports the median ns/iter (plus
//! derived element throughput when configured). There is no statistical
//! regression analysis, plotting, or HTML report.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A display label for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs closures under timing; handed to benchmark functions.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher<'_> {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses, measuring the
        // rough per-iteration cost so samples can batch iterations.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Pick an iteration count per sample so all samples together fill
        // roughly the measurement window.
        let samples = self.config.sample_size.max(2);
        let target_sample_secs = self.config.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = ((target_sample_secs / per_iter.max(1e-9)) as u64).max(1);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            sample_ns.push(elapsed / iters_per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        self.median_ns = sample_ns[sample_ns.len() / 2];
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the warm-up window run before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the total measurement window shared by the samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&self.config, &name.to_string(), None, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&self.criterion.config, &label, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.criterion.config, &label, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (reporting happens per-benchmark; this is a no-op).
    pub fn finish(&mut self) {}
}

fn run_one<F>(config: &Config, label: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher<'_>),
{
    let mut bencher = Bencher {
        config,
        median_ns: f64::NAN,
    };
    f(&mut bencher);
    if bencher.median_ns.is_nan() {
        println!("{label:<50} (no measurement: Bencher::iter never called)");
        return;
    }
    let ns = bencher.median_ns;
    match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let rate = n as f64 / (ns * 1e-9);
            println!("{label:<50} {ns:>14.1} ns/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            let rate = n as f64 / (ns * 1e-9);
            println!("{label:<50} {ns:>14.1} ns/iter  {rate:>14.0} B/s");
        }
        _ => println!("{label:<50} {ns:>14.1} ns/iter"),
    }
}

/// Collects benchmark functions (and an optional configuration) into a
/// callable group for [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench target from [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags (e.g. `--bench`); the
            // vendored harness runs everything unconditionally.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_function("sum", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("input");
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(42u64), &42u64, |b, &x| {
            seen = x;
            b.iter(|| x * 2);
        });
        group.finish();
        assert_eq!(seen, 42);
    }
}
