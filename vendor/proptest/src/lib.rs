//! Offline sampling-only subset of the `proptest` API used by this workspace.
//!
//! The build container has no network access, so the workspace vendors the
//! parts of `proptest` its property tests rely on: the `Strategy` trait
//! with `prop_map` / `prop_flat_map` / `prop_filter`, `Just`, integer range
//! strategies, tuple strategies, `collection::vec`, weighted unions via
//! `prop_oneof!`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Unlike upstream proptest this implementation only *samples*: failing
//! cases are reported by the panicking assertion but are not shrunk to a
//! minimal counterexample. Sampling is deterministic — each generated test
//! seeds its generator from a hash of the test's module path and name — so
//! failures reproduce exactly across runs.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` sampled cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the vendored runner keeps the suite
            // quick while still exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator used to sample strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (the test name).
        pub fn from_label(label: &str) -> Self {
            // FNV-1a over the label gives a stable per-test seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in label.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(hash),
            }
        }

        /// Access to the underlying `rand` generator.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.inner
        }
    }

    impl Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// A failed test case, usable with `?` inside `proptest!` bodies.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        /// Fails the current case with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError {
                reason: reason.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.reason)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// How many rejected samples [`Strategy::prop_filter`] tolerates before
    /// giving up on a case.
    const MAX_FILTER_ATTEMPTS: usize = 10_000;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// The vendored strategy only samples; it performs no shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Rejects samples for which `f` returns `false`, resampling.
        ///
        /// # Panics
        ///
        /// Panics with `reason` if no sample passes the filter after a
        /// bounded number of attempts.
        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                reason: reason.into(),
                f,
            }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        source: S,
        reason: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_FILTER_ATTEMPTS {
                let candidate = self.source.sample(rng);
                if (self.f)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "prop_filter gave up after {MAX_FILTER_ATTEMPTS} attempts: {}",
                self.reason
            );
        }
    }

    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample_dyn(rng)
        }
    }

    /// A weighted choice among erased strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        variants: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` pairs.
        ///
        /// # Panics
        ///
        /// Panics if `variants` is empty or all weights are zero.
        pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight: u64 = variants.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! requires a positive total weight"
            );
            Union {
                variants,
                total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.rng().random_range(0..self.total_weight);
            for (weight, strat) in &self.variants {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strat.sample(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng().random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng().random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`](vec()).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines deterministic property tests over sampled strategies.
///
/// Mirrors the upstream macro's surface: an optional
/// `#![proptest_config(...)]` header followed by `fn name(pat in strategy,
/// ...) { body }` items (each carrying its own `#[test]` attribute).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::from_label(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for _case in 0..config.cases {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::sample(&$strat, &mut rng),)+
                    );
                    // Run the body in a `Result` context so `?` with
                    // `TestCaseError` works as it does upstream.
                    let case = || {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = case();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!("test case failed: {err}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Chooses among strategies, optionally `weight => strategy` pairs.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn just_yields_its_value() {
        let mut rng = TestRng::from_label("just");
        assert_eq!(Just(7u32).sample(&mut rng), 7);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_label("ranges");
        for _ in 0..1_000 {
            let a = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&a));
            let b = (1u64..=4).sample(&mut rng);
            assert!((1..=4).contains(&b));
        }
    }

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = TestRng::from_label("vec-sizes");
        let strat = crate::collection::vec(0u32..5, 2..=6);
        for _ in 0..500 {
            let v = strat.sample(&mut rng);
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = crate::collection::vec(0u32..5, 4usize);
        assert_eq!(exact.sample(&mut rng).len(), 4);
    }

    #[test]
    fn map_flat_map_filter_compose() {
        let mut rng = TestRng::from_label("compose");
        let strat = (1usize..=3)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..10, n)))
            .prop_map(|(n, v)| (n, v.len()))
            .prop_filter("lengths agree", |&(n, len)| n == len);
        for _ in 0..200 {
            let (n, len) = strat.sample(&mut rng);
            assert_eq!(n, len);
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let mut rng = TestRng::from_label("oneof");
        let strat = prop_oneof![
            3 => Just(0u8),
            1 => Just(1u8),
        ];
        let ones = (0..4_000).filter(|_| strat.sample(&mut rng) == 1).count();
        // Expect ~1000 of 4000; accept a generous band.
        assert!((600..=1400).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn sampling_is_deterministic_per_label() {
        let strat = crate::collection::vec(0u64..1_000, 5usize);
        let mut a = TestRng::from_label("det");
        let mut b = TestRng::from_label("det");
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke((a, b) in (0u32..10, 0u32..10), c in 1usize..4) {
            prop_assert!(a < 10 && b < 10, "a={} b={}", a, b);
            prop_assert_eq!(c.clamp(1, 3), c);
        }
    }
}
