//! Minimal `recvmmsg(2)`/`sendmmsg(2)` bindings for the batched network
//! ingress path (the `mmsg` cargo feature of `smbm-net`).
//!
//! The workspace builds offline with no registry access, so there is no
//! `libc` crate to lean on: this crate declares the two vectored-datagram
//! syscall wrappers and the ABI structs they need itself, for 64-bit Linux
//! (x86_64 and aarch64 share every layout used here). Every other crate in
//! the workspace `#![forbid(unsafe_code)]`; the entire unsafe surface of
//! the feature is quarantined in this one small crate behind a safe,
//! `std`-typed API.
//!
//! On non-Linux targets the same API compiles but every call reports
//! [`std::io::ErrorKind::Unsupported`], so callers can build the feature
//! everywhere and keep their portable single-syscall path as the fallback.
//!
//! # Semantics
//!
//! - [`RecvBatch::recv`] issues one `recvmmsg` with `MSG_WAITFORONE`: it
//!   blocks (honouring the socket's `SO_RCVTIMEO`, which surfaces as
//!   `WouldBlock` exactly like `recv_from`) until at least one datagram is
//!   available, then claims everything already queued up to the batch
//!   depth without blocking again.
//! - [`send_batch`] issues one `sendmmsg` over a *connected* socket and
//!   returns how many of the leading payloads the kernel accepted; callers
//!   re-offer the remainder.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Whether this build actually reaches the `mmsg` syscalls (true on Linux,
/// false where the stub implementation answers `Unsupported`).
pub const SUPPORTED: bool = cfg!(target_os = "linux");

/// A reusable receive batch: `depth` datagram buffers of `datagram_len`
/// bytes each, filled by one [`RecvBatch::recv`] call and read back with
/// [`RecvBatch::datagram`].
#[derive(Debug)]
pub struct RecvBatch {
    bufs: Vec<Vec<u8>>,
    lens: Vec<usize>,
    addrs: Vec<Option<SocketAddr>>,
    count: usize,
}

impl RecvBatch {
    /// Allocates a batch of `depth` buffers, `datagram_len` bytes each
    /// (datagrams longer than that are truncated by the kernel, exactly as
    /// with an undersized `recv_from` buffer).
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `datagram_len` is zero.
    pub fn new(depth: usize, datagram_len: usize) -> RecvBatch {
        assert!(depth > 0, "batch depth must be positive");
        assert!(datagram_len > 0, "datagram length must be positive");
        RecvBatch {
            bufs: (0..depth).map(|_| vec![0u8; datagram_len]).collect(),
            lens: vec![0; depth],
            addrs: vec![None; depth],
            count: 0,
        }
    }

    /// Datagrams filled by the last [`RecvBatch::recv`].
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the last receive filled nothing.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Payload and source address of filled datagram `i` (`i <
    /// self.len()`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not within the last receive's fill count.
    pub fn datagram(&self, i: usize) -> (&[u8], Option<SocketAddr>) {
        assert!(i < self.count, "datagram index out of range");
        (&self.bufs[i][..self.lens[i]], self.addrs[i])
    }

    /// Receives up to `depth` datagrams with one syscall, blocking for the
    /// first one per the socket's read timeout. Returns the fill count.
    ///
    /// # Errors
    ///
    /// Propagates the syscall error; an expired `SO_RCVTIMEO` surfaces as
    /// `WouldBlock`/`TimedOut` exactly like `recv_from`. On non-Linux
    /// builds always returns `Unsupported`.
    pub fn recv(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        self.count = 0;
        let n = imp::recv_into(socket, &mut self.bufs, &mut self.lens, &mut self.addrs)?;
        self.count = n;
        Ok(n)
    }
}

/// Sends the leading payloads of `payloads` over the *connected* `socket`
/// with one `sendmmsg` syscall, returning how many datagrams the kernel
/// accepted (callers re-offer the rest). An empty slice sends nothing.
///
/// # Errors
///
/// Propagates the syscall error (on non-Linux builds always
/// `Unsupported`). A short count is not an error.
pub fn send_batch(socket: &UdpSocket, payloads: &[Vec<u8>]) -> io::Result<usize> {
    if payloads.is_empty() {
        return Ok(0);
    }
    imp::send_connected(socket, payloads)
}

#[cfg(target_os = "linux")]
mod imp {
    use std::io;
    use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, SocketAddrV4, SocketAddrV6, UdpSocket};
    use std::os::fd::AsRawFd;
    use std::ptr;

    // Stable Linux ABI constants (include/linux/socket.h, bits/socket.h).
    const MSG_WAITFORONE: i32 = 0x10000;
    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    /// `UIO_MAXIOV`: the kernel rejects larger `vlen`s outright.
    const MAX_VLEN: usize = 1024;

    /// `struct iovec`: `{ void *iov_base; size_t iov_len; }`.
    #[repr(C)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    /// `struct msghdr` on 64-bit Linux; the compiler inserts the same
    /// padding after `namelen` and `flags` that a C compiler does.
    #[repr(C)]
    struct MsgHdr {
        name: *mut u8,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    /// `struct mmsghdr`: `{ struct msghdr msg_hdr; unsigned int msg_len; }`.
    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    /// `struct sockaddr_storage`: 128 bytes, 8-aligned.
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    struct SockAddrStorage([u8; 128]);

    extern "C" {
        // glibc/musl wrappers over the syscalls; `timeout` is a
        // `struct timespec *` we always pass as null (the socket's
        // `SO_RCVTIMEO` governs blocking instead — the `recvmmsg` timeout
        // argument famously only applies *between* datagrams).
        fn recvmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32, timeout: *mut u8) -> i32;
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    }

    fn decode_addr(raw: &SockAddrStorage, len: u32) -> Option<SocketAddr> {
        let b = &raw.0;
        let len = len as usize;
        if len < 2 {
            return None;
        }
        match u16::from_ne_bytes([b[0], b[1]]) {
            AF_INET if len >= 8 => {
                let port = u16::from_be_bytes([b[2], b[3]]);
                let ip = Ipv4Addr::new(b[4], b[5], b[6], b[7]);
                Some(SocketAddr::V4(SocketAddrV4::new(ip, port)))
            }
            AF_INET6 if len >= 28 => {
                let port = u16::from_be_bytes([b[2], b[3]]);
                let flowinfo = u32::from_be_bytes([b[4], b[5], b[6], b[7]]);
                let mut oct = [0u8; 16];
                oct.copy_from_slice(&b[8..24]);
                let scope = u32::from_ne_bytes([b[24], b[25], b[26], b[27]]);
                Some(SocketAddr::V6(SocketAddrV6::new(
                    Ipv6Addr::from(oct),
                    port,
                    flowinfo,
                    scope,
                )))
            }
            _ => None,
        }
    }

    pub(crate) fn recv_into(
        socket: &UdpSocket,
        bufs: &mut [Vec<u8>],
        lens: &mut [usize],
        addrs: &mut [Option<SocketAddr>],
    ) -> io::Result<usize> {
        let n = bufs.len().min(MAX_VLEN);
        let mut names = vec![SockAddrStorage([0u8; 128]); n];
        let mut iovs: Vec<IoVec> = Vec::with_capacity(n);
        for buf in bufs.iter_mut().take(n) {
            iovs.push(IoVec {
                base: buf.as_mut_ptr(),
                len: buf.len(),
            });
        }
        let iov_base = iovs.as_mut_ptr();
        let mut msgs: Vec<MMsgHdr> = Vec::with_capacity(n);
        for (i, name) in names.iter_mut().enumerate().take(n) {
            msgs.push(MMsgHdr {
                hdr: MsgHdr {
                    name: name.0.as_mut_ptr(),
                    namelen: 128,
                    iov: iov_base.wrapping_add(i),
                    iovlen: 1,
                    control: ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            });
        }
        // SAFETY: `msgs` points at `n` valid `mmsghdr`s whose iovecs and
        // name buffers are owned by this frame (or by `bufs`) and outlive
        // the call; `vlen == n`; the kernel writes at most `iov_len` bytes
        // per message and at most 128 bytes per name. None of the vectors
        // reallocate between pointer capture and the call.
        let r = unsafe {
            recvmmsg(
                socket.as_raw_fd(),
                msgs.as_mut_ptr(),
                n as u32,
                MSG_WAITFORONE,
                ptr::null_mut(),
            )
        };
        if r < 0 {
            return Err(io::Error::last_os_error());
        }
        let filled = (r as usize).min(n);
        for i in 0..filled {
            lens[i] = (msgs[i].len as usize).min(bufs[i].len());
            addrs[i] = decode_addr(&names[i], msgs[i].hdr.namelen);
        }
        Ok(filled)
    }

    pub(crate) fn send_connected(socket: &UdpSocket, payloads: &[Vec<u8>]) -> io::Result<usize> {
        let n = payloads.len().min(MAX_VLEN);
        let mut iovs: Vec<IoVec> = Vec::with_capacity(n);
        for p in payloads.iter().take(n) {
            iovs.push(IoVec {
                // The kernel never writes through a send iovec; the cast
                // only satisfies the shared struct layout.
                base: p.as_ptr().cast_mut(),
                len: p.len(),
            });
        }
        let iov_base = iovs.as_mut_ptr();
        let mut msgs: Vec<MMsgHdr> = Vec::with_capacity(n);
        for i in 0..n {
            msgs.push(MMsgHdr {
                hdr: MsgHdr {
                    name: ptr::null_mut(),
                    namelen: 0,
                    iov: iov_base.wrapping_add(i),
                    iovlen: 1,
                    control: ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            });
        }
        // SAFETY: as in `recv_into`, every pointer in `msgs` refers to
        // memory valid for the duration of the call, and `vlen == n`. The
        // socket is connected, so null `msg_name` is well-defined.
        let r = unsafe { sendmmsg(socket.as_raw_fd(), msgs.as_mut_ptr(), n as u32, 0) };
        if r < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((r as usize).min(n))
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::io;
    use std::net::{SocketAddr, UdpSocket};

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "mmsg syscalls are Linux-only; use the portable path",
        )
    }

    pub(crate) fn recv_into(
        _socket: &UdpSocket,
        _bufs: &mut [Vec<u8>],
        _lens: &mut [usize],
        _addrs: &mut [Option<SocketAddr>],
    ) -> io::Result<usize> {
        Err(unsupported())
    }

    pub(crate) fn send_connected(_socket: &UdpSocket, _payloads: &[Vec<u8>]) -> io::Result<usize> {
        Err(unsupported())
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket) {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();
        (tx, rx)
    }

    #[test]
    fn send_batch_then_recv_batch_round_trips() {
        let (tx, rx) = pair();
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let payloads: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; (i as usize + 1) * 3]).collect();
        let mut offered = 0;
        while offered < payloads.len() {
            offered += send_batch(&tx, &payloads[offered..]).unwrap();
        }
        let mut batch = RecvBatch::new(8, 64);
        let mut got: Vec<Vec<u8>> = Vec::new();
        while got.len() < payloads.len() {
            let n = batch.recv(&rx).unwrap();
            assert!(n >= 1);
            for i in 0..n {
                let (data, from) = batch.datagram(i);
                assert_eq!(from, Some(tx.local_addr().unwrap()));
                got.push(data.to_vec());
            }
        }
        assert_eq!(got, payloads, "payloads arrive intact and in order");
    }

    #[test]
    fn recv_honours_the_socket_read_timeout() {
        let (_tx, rx) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let mut batch = RecvBatch::new(4, 64);
        let err = batch.recv(&rx).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "{err:?}"
        );
        assert!(batch.is_empty());
    }

    #[test]
    fn oversized_datagrams_truncate_like_recv_from() {
        let (tx, rx) = pair();
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        send_batch(&tx, &[vec![7u8; 100]]).unwrap();
        let mut batch = RecvBatch::new(2, 16);
        assert_eq!(batch.recv(&rx).unwrap(), 1);
        let (data, _) = batch.datagram(0);
        assert_eq!(data, &[7u8; 16][..]);
    }

    #[test]
    fn empty_send_is_a_noop() {
        let (tx, _rx) = pair();
        assert_eq!(send_batch(&tx, &[]).unwrap(), 0);
    }
}
