//! # smbm-spsc
//!
//! A bounded **lock-free** single-producer/single-consumer ring, built for
//! the live datapath's producer→shard ingress hand-off. It replaces the
//! `Mutex`+`Condvar` ring that every batch crossing a core boundary used to
//! pay a lock round-trip (and a potential futex wake) for; the uncontended
//! push or pop here is a handful of plain loads plus one release store.
//!
//! Like `smbm-mmsg` before it, this crate quarantines the feature's entire
//! `unsafe` surface: every other crate in the workspace keeps
//! `#![forbid(unsafe_code)]`, and CI runs this crate's test suite under
//! Miri so the slot-ownership protocol below is machine-checked, not just
//! argued.
//!
//! ## Layout
//!
//! Storage is a power-of-two array of [`MaybeUninit`] slots indexed by two
//! monotonically increasing counters: `tail` (next free slot, written only
//! by the producer) and `head` (next occupied slot, written only by the
//! consumer). Each lives on its own cache line (`CachePadded`), and each
//! endpoint keeps a *local cached copy of the other side's counter*, so the
//! uncontended fast path touches one shared cache line (its own counter's),
//! not two: the producer re-reads the shared `head` only when its cached
//! window is exhausted, the consumer re-reads `tail` only when its cached
//! view is empty. The user-facing `capacity` need not be a power of two —
//! occupancy is bounded by `capacity` exactly, storage is merely rounded
//! up.
//!
//! ## Memory ordering
//!
//! The protocol needs exactly two acquire/release pairings (the full
//! argument lives in DESIGN.md §6):
//!
//! * producer `tail.store(Release)` ⇄ consumer `tail.load(Acquire)` —
//!   publishes the slot *writes* before the index advance, so the consumer
//!   never reads an uninitialized slot;
//! * consumer `head.store(Release)` ⇄ producer `head.load(Acquire)` —
//!   publishes the slot *reads* before the index advance, so the producer
//!   never overwrites a slot the consumer is still reading.
//!
//! The `closed` flags piggyback on the same pattern (release store, acquire
//! load, then one re-read of the opposing index to catch items published
//! before the close).
//!
//! ## Blocking and waking
//!
//! Blocking ops spin briefly, then yield, then **park** with a bounded
//! timeout that doubles up to a cap — an idle endpoint sleeps instead of
//! burning a core. Wake-ups are *hints*: the fast path checks the peer's
//! parked flag with one relaxed load and skips the unpark entirely when
//! nobody waits, accepting a narrow store→load race in exchange — a missed
//! wake-up costs at most one park timeout, never correctness. Closing
//! either end notifies through a `fence(SeqCst)`, so shutdown (the path
//! regression tests time) is prompt rather than timeout-bounded.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

/// Spin iterations before a blocking op starts yielding.
const SPINS: usize = if cfg!(miri) { 4 } else { 64 };
/// Yield iterations after spinning, before the first park.
const YIELDS: usize = if cfg!(miri) { 2 } else { 16 };
/// First park timeout; doubles per sleep up to [`PARK_MAX`]. The timeout is
/// what makes the relaxed wake-up hint safe: a lost wake costs one bounded
/// sleep, after which the waiter re-checks the indices itself.
const PARK_MIN: Duration = Duration::from_micros(100);
/// Park timeout cap: an idle endpoint wakes this often to re-check.
const PARK_MAX: Duration = Duration::from_millis(10);

/// Pads and aligns to 128 bytes so `head` and `tail` (and the metadata)
/// never share a cache line — 128 covers the spatial-prefetcher pairing on
/// x86 as well as the plain 64-byte line.
#[repr(align(128))]
struct CachePadded<T> {
    value: T,
}

/// One endpoint's parked-thread slot. The `parked` flag is the wake-up
/// hint the peer's fast path polls with a relaxed load; the `Mutex` is
/// touched only on the park/notify slow paths, never per item.
struct Waiter {
    parked: AtomicBool,
    thread: Mutex<Option<Thread>>,
}

impl Waiter {
    fn new() -> Self {
        Waiter {
            parked: AtomicBool::new(false),
            thread: Mutex::new(None),
        }
    }

    /// Announces the current thread as about to park. The caller must
    /// re-check its wake condition *after* this (the `SeqCst` store orders
    /// the flag before the re-read) and only then park.
    fn register(&self) {
        *self.thread.lock().unwrap_or_else(|e| e.into_inner()) = Some(thread::current());
        self.parked.store(true, Ordering::SeqCst);
    }

    /// Withdraws the announcement after waking (or deciding not to park).
    /// A wake token banked by a racing [`Waiter::notify`] is left in place;
    /// it only makes some later park return early, which every wait loop
    /// tolerates by re-checking its condition.
    fn unregister(&self) {
        self.parked.store(false, Ordering::Relaxed);
    }

    /// Wakes the registered thread if one announced itself. The `SeqCst`
    /// swap pairs with [`Waiter::register`]'s store so at most one of the
    /// racing sides consumes the flag.
    fn notify(&self) {
        if self.parked.swap(false, Ordering::SeqCst) {
            let t = self.thread.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(t) = t {
                t.unpark();
            }
        }
    }

    /// The fast-path hint: skip the whole notify when nobody is parked.
    /// Relaxed is deliberate — see the module docs; the bounded park
    /// timeout makes the narrow miss window a latency blip, not a hang.
    #[inline]
    fn notify_fast(&self) {
        if self.parked.load(Ordering::Relaxed) {
            self.notify();
        }
    }
}

/// The shared ring state. Field order groups the producer-written line
/// (`tail`), the consumer-written line (`head`), and the rarely-written
/// metadata (closed flags, waiters) on lines of their own.
struct Shared<T> {
    /// Next slot the producer will fill. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
    /// Next slot the consumer will drain. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Closed flags and waiters: read every op, written only at shutdown
    /// (flags) or around parks (waiters), so the line stays shared.
    meta: CachePadded<Meta>,
    /// Logical bound on occupancy (`tail - head <= capacity`), exact even
    /// though storage rounds up to a power of two.
    capacity: usize,
    /// `slots.len() - 1`; `slots.len()` is a power of two, so `index &
    /// mask` is `index % slots.len()` even across `usize` wraparound.
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

struct Meta {
    producer_closed: AtomicBool,
    consumer_closed: AtomicBool,
    /// Where a full-ring producer parks; notified by consumer pops/close.
    producer_waiter: Waiter,
    /// Where an empty-ring consumer parks; notified by producer
    /// pushes/close.
    consumer_waiter: Waiter,
}

// SAFETY: the ring moves `T` values across threads (producer writes a
// slot, consumer takes it), so `T: Send` is required and sufficient. The
// `UnsafeCell` slots are not synchronized by the type system but by the
// index protocol: the producer only writes slots in `[tail, head +
// capacity)` and the consumer only reads slots in `[head, tail)`, with the
// acquire/release pairings on `head`/`tail` (module docs) ordering every
// access to a given slot. Handles are unique per side (`Producer` /
// `Consumer` are not `Clone`), and their interior `Cell` caches make them
// `!Sync`, so each side's index is only ever advanced by one thread.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: see above — `&Shared` is shared between exactly the producer and
// consumer handle, and every slot access is ordered by the index protocol.
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    /// Writes `item` into the slot for logical index `idx`.
    ///
    /// # Safety
    ///
    /// The caller must be the producer side, and `idx` must lie in the free
    /// window `[tail, head + capacity)`: the consumer never touches those
    /// slots, and any previous occupant was taken out by a consumer read
    /// whose completion the producer observed via an acquire load of
    /// `head`.
    #[inline]
    unsafe fn write_slot(&self, idx: usize, item: T) {
        // SAFETY: `idx & mask < slots.len()` because `mask = slots.len() -
        // 1`; exclusive access per the function contract.
        unsafe {
            (*self.slots.get_unchecked(idx & self.mask).get()).write(item);
        }
    }

    /// Moves the value out of the slot for logical index `idx`.
    ///
    /// # Safety
    ///
    /// The caller must be the consumer side and `idx` must lie in
    /// `[head, tail)` for a `tail` observed with an acquire load: the slot
    /// was initialized by the producer write published by that tail store,
    /// and will not be read again (the caller advances `head` past it,
    /// transferring the slot back to the producer).
    #[inline]
    unsafe fn read_slot(&self, idx: usize) -> T {
        // SAFETY: in-bounds via the mask; initialized and uniquely owned
        // per the function contract.
        unsafe { (*self.slots.get_unchecked(idx & self.mask).get()).assume_init_read() }
    }

    /// Borrows the value in the slot for logical index `idx`.
    ///
    /// # Safety
    ///
    /// Same window as [`Shared::read_slot`] (`idx ∈ [head, tail)` with an
    /// acquired `tail`), and the caller must not advance `head` past `idx`
    /// while the borrow lives. Only the consumer side may call this, so no
    /// concurrent `read_slot` of the same index exists.
    #[inline]
    unsafe fn slot_ref(&self, idx: usize) -> &T {
        // SAFETY: in-bounds via the mask; initialized per the contract, and
        // the producer never writes inside `[head, tail)`.
        unsafe { (*self.slots.get_unchecked(idx & self.mask).get()).assume_init_ref() }
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<T>() {
            // `&mut self`: both handles are gone, the atomics hold the
            // final indices; everything still queued is initialized and
            // owned by the ring.
            let tail = *self.tail.value.get_mut();
            let mut idx = *self.head.value.get_mut();
            while idx != tail {
                // SAFETY: `[head, tail)` slots are initialized and this is
                // the only remaining owner (see above).
                unsafe {
                    (*self.slots[idx & self.mask].get()).assume_init_drop();
                }
                idx = idx.wrapping_add(1);
            }
        }
    }
}

/// The sending half of a ring, held by exactly one producer thread.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Local copy of `tail` (this handle is its only writer).
    tail: Cell<usize>,
    /// Cached view of the consumer's `head`, refreshed from the shared
    /// atomic only when the free window computed from it is exhausted.
    head: Cell<usize>,
}

/// The receiving half of a ring, held by exactly one consumer thread at a
/// time. Dropping it closes the ring: subsequent pushes fail with
/// [`PushError::Closed`].
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Local copy of `head` (this handle is its only writer).
    head: Cell<usize>,
    /// Cached view of the producer's `tail`, refreshed when empty.
    tail: Cell<usize>,
}

impl<T> fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Producer").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Consumer").finish_non_exhaustive()
    }
}

/// A push that did not enqueue, returning the item(s) to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is at capacity (non-blocking pushes only).
    Full(T),
    /// The consumer is gone; the item can never be delivered.
    Closed(T),
}

/// Outcome of a non-blocking pop.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPop<T> {
    /// The oldest queued item.
    Item(T),
    /// Nothing queued right now, but the producer is still alive.
    Empty,
    /// Nothing queued and the producer is gone: end of stream.
    Closed,
}

/// Outcome of a [`Consumer::pop_bulk`]: how many items were claimed with
/// the one index advance, and whether the producer has closed. End of
/// stream is `popped == 0 && closed` — a closed producer's backlog still
/// drains first, exactly as with the scalar [`Consumer::try_pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkPop {
    /// Items appended to the caller's buffer, oldest first.
    pub popped: usize,
    /// The producer is gone; nothing further will ever be queued.
    pub closed: bool,
}

/// Creates a bounded ring holding at most `capacity` items.
///
/// # Panics
///
/// Panics if `capacity` is zero (or absurdly large — the power-of-two
/// slot array must be addressable).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let len = capacity
        .checked_next_power_of_two()
        .expect("ring capacity too large");
    let shared = Arc::new(Shared {
        tail: CachePadded {
            value: AtomicUsize::new(0),
        },
        head: CachePadded {
            value: AtomicUsize::new(0),
        },
        meta: CachePadded {
            value: Meta {
                producer_closed: AtomicBool::new(false),
                consumer_closed: AtomicBool::new(false),
                producer_waiter: Waiter::new(),
                consumer_waiter: Waiter::new(),
            },
        },
        capacity,
        mask: len - 1,
        slots: (0..len)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
    });
    (
        Producer {
            shared: shared.clone(),
            tail: Cell::new(0),
            head: Cell::new(0),
        },
        Consumer {
            shared,
            head: Cell::new(0),
            tail: Cell::new(0),
        },
    )
}

impl<T> Producer<T> {
    #[inline]
    fn meta(&self) -> &Meta {
        &self.shared.meta.value
    }

    /// Free slots by the cached view, refreshing the cache from the shared
    /// `head` (acquire — this is what licenses overwriting drained slots)
    /// only when the cached window is exhausted. The scalar fast path: the
    /// lazy refresh cannot change a `Full`/`Ok` outcome (a zero cached
    /// window always refreshes), so scalar behavior stays exact.
    #[inline]
    fn free_slots(&self) -> usize {
        let used = self.tail.get().wrapping_sub(self.head.get());
        if used < self.shared.capacity {
            return self.shared.capacity - used;
        }
        self.free_slots_refreshed()
    }

    /// Free slots with an unconditional refresh. Bulk ops use this: one
    /// acquire load amortizes over the whole slice, and it keeps the split
    /// point exact — a stale cached window would split a bulk push where a
    /// scalar loop (or the locked oracle) would not.
    #[inline]
    fn free_slots_refreshed(&self) -> usize {
        self.head
            .set(self.shared.head.value.load(Ordering::Acquire));
        self.shared.capacity - self.tail.get().wrapping_sub(self.head.get())
    }

    /// Publishes every slot written up to `new_tail` with one release
    /// store, then wakes a parked consumer (hint only — see module docs).
    #[inline]
    fn publish(&self, new_tail: usize) {
        self.tail.set(new_tail);
        self.shared.tail.value.store(new_tail, Ordering::Release);
        self.meta().consumer_waiter.notify_fast();
    }

    /// Enqueues `item`, blocking while the ring is full.
    ///
    /// A consumer closing mid-wait is observed *promptly*: the closed flag
    /// is re-checked on every wake-up and [`Consumer::close`] notifies
    /// through a sequentially-consistent fence, so a blocked producer
    /// returns [`PushError::Closed`] off the close notification itself,
    /// not after riding out a park timeout. Network ingress threads rely
    /// on this to shut down as soon as their shard's rings close.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] (with the item) once the consumer is
    /// gone; never returns [`PushError::Full`].
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut item = item;
        loop {
            match self.try_push(item) {
                Ok(()) => return Ok(()),
                Err(PushError::Closed(i)) => return Err(PushError::Closed(i)),
                Err(PushError::Full(i)) => {
                    item = i;
                    self.wait_not_full();
                }
            }
        }
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] when the ring is at capacity (this is
    /// the backpressure signal) or [`PushError::Closed`] once the consumer
    /// is gone, handing the item back either way. `Closed` wins when the
    /// ring is both full and closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        if self.meta().consumer_closed.load(Ordering::Acquire) {
            return Err(PushError::Closed(item));
        }
        if self.free_slots() == 0 {
            return Err(PushError::Full(item));
        }
        let tail = self.tail.get();
        // SAFETY: `free_slots() > 0` puts `tail` inside the free window
        // (the acquire load of `head` ordered the consumer's reads of any
        // previous occupant before this overwrite), and this thread is the
        // unique producer.
        unsafe { self.shared.write_slot(tail, item) };
        self.publish(tail.wrapping_add(1));
        Ok(())
    }

    /// Enqueues every item of `items` in order, blocking whenever the ring
    /// is full. Each run of items that fits the current free window is
    /// published with a *single* release store and at most one consumer
    /// wake — this is the bulk counterpart of [`Producer::push`], with
    /// identical per-item semantics: items already enqueued when the
    /// consumer closes stay queued (the shard drains or accounts them),
    /// and the unpushed remainder is handed back.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] with the items that did *not* enter
    /// the ring once the consumer is gone; never returns
    /// [`PushError::Full`].
    pub fn push_bulk(&self, items: Vec<T>) -> Result<(), PushError<Vec<T>>> {
        let mut iter = items.into_iter();
        let mut pending = iter.next();
        if pending.is_none() {
            return Ok(());
        }
        loop {
            if self.meta().consumer_closed.load(Ordering::Acquire) {
                let mut rest: Vec<T> = pending.into_iter().collect();
                rest.extend(iter);
                return Err(PushError::Closed(rest));
            }
            let free = self.free_slots_refreshed();
            if free == 0 {
                self.wait_not_full();
                continue;
            }
            let tail = self.tail.get();
            let mut n = 0;
            while n < free {
                let Some(item) = pending.take() else { break };
                // SAFETY: `n < free` keeps `tail + n` inside the free
                // window observed by `free_slots`; unique producer.
                unsafe { self.shared.write_slot(tail.wrapping_add(n), item) };
                n += 1;
                pending = iter.next();
            }
            if n > 0 {
                self.publish(tail.wrapping_add(n));
            }
            if pending.is_none() {
                return Ok(());
            }
        }
    }

    /// Enqueues as many leading items of `items` as fit, without blocking,
    /// publishing them with a single release store. Per-item semantics
    /// match a [`Producer::try_push`] loop exactly: the first `k` items
    /// enter a ring with `k` free slots and the rest come back as
    /// [`PushError::Full`].
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] with the items that did not fit, or
    /// [`PushError::Closed`] with every unpushed item once the consumer is
    /// gone ([`PushError::Closed`] wins when the ring is both full and
    /// closed, as with the scalar op).
    pub fn try_push_bulk(&self, items: Vec<T>) -> Result<(), PushError<Vec<T>>> {
        if items.is_empty() {
            return Ok(());
        }
        if self.meta().consumer_closed.load(Ordering::Acquire) {
            return Err(PushError::Closed(items));
        }
        let free = self.free_slots_refreshed();
        if free == 0 {
            return Err(PushError::Full(items));
        }
        let tail = self.tail.get();
        let mut iter = items.into_iter();
        let mut n = 0;
        while n < free {
            let Some(item) = iter.next() else { break };
            // SAFETY: `n < free` keeps `tail + n` inside the free window;
            // unique producer.
            unsafe { self.shared.write_slot(tail.wrapping_add(n), item) };
            n += 1;
        }
        self.publish(tail.wrapping_add(n));
        let rest: Vec<T> = iter.collect();
        if rest.is_empty() {
            Ok(())
        } else {
            Err(PushError::Full(rest))
        }
    }

    /// Marks the stream finished. Queued items stay poppable; afterwards
    /// the consumer sees end-of-stream. Also performed on drop.
    pub fn close(&self) {
        self.meta().producer_closed.store(true, Ordering::Release);
        // Shutdown must be prompt, not timeout-bounded: the fence orders
        // the flag store before the parked-flag read inside notify.
        fence(Ordering::SeqCst);
        self.meta().consumer_waiter.notify();
    }

    /// Spin → yield → park (bounded, escalating) until the ring has room
    /// or the consumer closed. Wake-ups are hints; the park timeout is the
    /// liveness guarantee.
    fn wait_not_full(&self) {
        let meta = self.meta();
        let tail = self.tail.get();
        let mut rounds = 0usize;
        let mut park = PARK_MIN;
        loop {
            self.head
                .set(self.shared.head.value.load(Ordering::Acquire));
            if tail.wrapping_sub(self.head.get()) < self.shared.capacity
                || meta.consumer_closed.load(Ordering::Acquire)
            {
                return;
            }
            if rounds < SPINS {
                std::hint::spin_loop();
            } else if rounds < SPINS + YIELDS {
                thread::yield_now();
            } else {
                meta.producer_waiter.register();
                // Order the parked-flag store before the condition
                // re-read; pairs with the peer's store→hint-load sequence.
                fence(Ordering::SeqCst);
                if tail.wrapping_sub(self.shared.head.value.load(Ordering::Relaxed))
                    < self.shared.capacity
                    || meta.consumer_closed.load(Ordering::Relaxed)
                {
                    meta.producer_waiter.unregister();
                    continue;
                }
                thread::park_timeout(park);
                meta.producer_waiter.unregister();
                park = (park * 2).min(PARK_MAX);
            }
            rounds += 1;
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T> Consumer<T> {
    #[inline]
    fn meta(&self) -> &Meta {
        &self.shared.meta.value
    }

    /// Items visible by the cached view, refreshing the cache from the
    /// shared `tail` (acquire — this is what licenses reading the slots)
    /// only when the cached view is empty.
    #[inline]
    fn available(&self) -> usize {
        let avail = self.tail.get().wrapping_sub(self.head.get());
        if avail > 0 {
            return avail;
        }
        self.tail
            .set(self.shared.tail.value.load(Ordering::Acquire));
        self.tail.get().wrapping_sub(self.head.get())
    }

    /// Retires every slot read up to `new_head` with one release store,
    /// then wakes a parked producer (hint only).
    #[inline]
    fn advance(&self, new_head: usize) {
        self.head.set(new_head);
        self.shared.head.value.store(new_head, Ordering::Release);
        self.meta().producer_waiter.notify_fast();
    }

    /// Dequeues the oldest item, blocking while the ring is empty. Returns
    /// `None` only when the ring is empty *and* the producer is gone.
    pub fn pop(&self) -> Option<T> {
        loop {
            match self.try_pop() {
                TryPop::Item(item) => return Some(item),
                TryPop::Closed => return None,
                TryPop::Empty => self.wait_not_empty(None),
            }
        }
    }

    /// Dequeues the oldest item without blocking.
    pub fn try_pop(&self) -> TryPop<T> {
        if self.available() == 0 {
            if !self.meta().producer_closed.load(Ordering::Acquire) {
                return TryPop::Empty;
            }
            // Closed — but items published *before* the close may not have
            // been in the cached view; one acquire re-read catches them.
            self.tail
                .set(self.shared.tail.value.load(Ordering::Acquire));
            if self.tail.get() == self.head.get() {
                return TryPop::Closed;
            }
        }
        let head = self.head.get();
        // SAFETY: `head < tail` for an acquired `tail`, so the slot is
        // initialized; this thread is the unique consumer and advances
        // `head` past the slot right after.
        let item = unsafe { self.shared.read_slot(head) };
        self.advance(head.wrapping_add(1));
        TryPop::Item(item)
    }

    /// Dequeues up to `max` items into `out` (appending, oldest first)
    /// without blocking — the whole visible backlog is claimed with a
    /// *single* index advance, the bulk counterpart of a
    /// [`Consumer::try_pop`] loop. The returned [`BulkPop`] carries the
    /// count and whether the producer has closed; end of stream is
    /// `popped == 0 && closed`.
    pub fn pop_bulk(&self, out: &mut Vec<T>, max: usize) -> BulkPop {
        // Bulk claims refresh `tail` unconditionally: one acquire load
        // amortizes over the whole batch, and it keeps the claim exact —
        // a stale cached view would under-claim where the locked oracle
        // (and a scalar `try_pop` loop) would not.
        self.tail
            .set(self.shared.tail.value.load(Ordering::Acquire));
        let mut avail = self.tail.get().wrapping_sub(self.head.get());
        let closed = self.meta().producer_closed.load(Ordering::Acquire);
        if avail == 0 {
            if !closed {
                return BulkPop {
                    popped: 0,
                    closed: false,
                };
            }
            // Items published *before* the close may have landed after the
            // refresh above; one more acquire re-read catches them.
            self.tail
                .set(self.shared.tail.value.load(Ordering::Acquire));
            avail = self.tail.get().wrapping_sub(self.head.get());
            if avail == 0 {
                return BulkPop {
                    popped: 0,
                    closed: true,
                };
            }
        }
        let take = avail.min(max);
        let head = self.head.get();
        out.reserve(take);
        let base = out.len();
        // SAFETY: the `take` slots starting at `head` are inside
        // `[head, tail)` for an acquired `tail` (initialized, consumer-
        // owned); `out` reserved room for `take` more items, and `set_len`
        // only covers slots actually written.
        unsafe {
            let dst = out.as_mut_ptr().add(base);
            for i in 0..take {
                dst.add(i)
                    .write(self.shared.read_slot(head.wrapping_add(i)));
            }
            out.set_len(base + take);
        }
        self.advance(head.wrapping_add(take));
        BulkPop {
            popped: take,
            closed,
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .tail
            .value
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.get())
    }

    /// True when nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every queued item without dequeuing, oldest first. The
    /// supervisor uses this to count a dead shard's orphaned backlog.
    pub fn peek<F: FnMut(&T)>(&self, mut f: F) {
        let head = self.head.get();
        let tail = self.shared.tail.value.load(Ordering::Acquire);
        let mut idx = head;
        while idx != tail {
            // SAFETY: `idx ∈ [head, tail)` with `tail` acquired; `head` is
            // not advanced while the borrow lives (this thread holds the
            // unique consumer handle and is busy here).
            f(unsafe { self.shared.slot_ref(idx) });
            idx = idx.wrapping_add(1);
        }
    }

    /// Blocks until the ring is non-empty, the producer has closed, or
    /// `timeout` (when given) elapses — spinning briefly, then yielding,
    /// then parking. Returns `true` when there is something to observe
    /// (data or end-of-stream), `false` on timeout.
    ///
    /// This is the idle-shard primitive: a freerun shard with an empty
    /// buffer parks here instead of spinning through empty polls.
    pub fn wait_nonempty(&self, timeout: Option<Duration>) -> bool {
        if self.available() > 0 || self.meta().producer_closed.load(Ordering::Acquire) {
            return true;
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        self.wait_not_empty(deadline);
        self.available() > 0 || self.meta().producer_closed.load(Ordering::Acquire)
    }

    /// Spin → yield → park (bounded, escalating) until data arrives, the
    /// producer closes, or `deadline` passes.
    fn wait_not_empty(&self, deadline: Option<Instant>) {
        let meta = self.meta();
        let head = self.head.get();
        let mut rounds = 0usize;
        let mut park = PARK_MIN;
        loop {
            let tail = self.shared.tail.value.load(Ordering::Acquire);
            if tail != head {
                self.tail.set(tail);
                return;
            }
            if meta.producer_closed.load(Ordering::Acquire) {
                return;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return;
                }
            }
            if rounds < SPINS {
                std::hint::spin_loop();
            } else if rounds < SPINS + YIELDS {
                thread::yield_now();
            } else {
                meta.consumer_waiter.register();
                // Order the parked-flag store before the condition
                // re-read; pairs with the peer's store→hint-load sequence.
                fence(Ordering::SeqCst);
                if self.shared.tail.value.load(Ordering::Relaxed) != head
                    || meta.producer_closed.load(Ordering::Relaxed)
                {
                    meta.consumer_waiter.unregister();
                    continue;
                }
                let mut sleep = park;
                if let Some(d) = deadline {
                    sleep = sleep.min(d.saturating_duration_since(Instant::now()));
                }
                thread::park_timeout(sleep);
                meta.consumer_waiter.unregister();
                park = (park * 2).min(PARK_MAX);
            }
            rounds += 1;
        }
    }

    /// Abandons the stream: subsequent pushes fail with
    /// [`PushError::Closed`]. Also performed on drop. Already-queued items
    /// stay poppable (and are freed with the ring otherwise).
    pub fn close(&self) {
        self.meta().consumer_closed.store(true, Ordering::Release);
        // Prompt shutdown for a blocked producer — same fence rationale as
        // `Producer::close`.
        fence(Ordering::SeqCst);
        self.meta().producer_waiter.notify();
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Scaled-down iteration counts so the Miri run stays minutes, not
    /// hours, while the native run keeps real pressure.
    const SOAK: u32 = if cfg!(miri) { 300 } else { 10_000 };

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = ring(4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.try_pop(), TryPop::Item(2));
        assert_eq!(rx.try_pop(), TryPop::Empty);
        assert!(rx.is_empty());
    }

    #[test]
    fn capacity_is_exact_even_when_not_a_power_of_two() {
        let (tx, rx) = ring(5);
        for i in 0..5 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(5), Err(PushError::Full(5)));
        assert_eq!(rx.pop(), Some(0));
        tx.try_push(5).unwrap();
        assert_eq!(tx.try_push(6), Err(PushError::Full(6)));
        let mut out = Vec::new();
        rx.pop_bulk(&mut out, usize::MAX);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn indices_survive_many_wraparounds() {
        let (tx, rx) = ring(3);
        for i in 0..SOAK as u64 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn closed_producer_drains_then_ends() {
        let (tx, rx) = ring(4);
        tx.push(7).unwrap();
        drop(tx);
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.pop(), None);
        assert_eq!(rx.try_pop(), TryPop::Closed);
    }

    #[test]
    fn closed_consumer_rejects_pushes() {
        let (tx, rx) = ring(4);
        drop(rx);
        assert_eq!(tx.push(1), Err(PushError::Closed(1)));
        assert_eq!(tx.try_push(2), Err(PushError::Closed(2)));
    }

    #[test]
    fn closed_wins_over_full() {
        let (tx, rx) = ring(1);
        tx.try_push(1).unwrap();
        assert_eq!(tx.try_push(2), Err(PushError::Full(2)));
        drop(rx);
        assert_eq!(tx.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(
            tx.try_push_bulk(vec![4, 5]),
            Err(PushError::Closed(vec![4, 5]))
        );
    }

    #[test]
    fn blocking_push_wakes_on_pop() {
        let (tx, rx) = ring(1);
        tx.push(1).unwrap();
        let h = thread::spawn(move || tx.push(2));
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        let (tx, rx) = ring::<u32>(1);
        let h = thread::spawn(move || rx.pop());
        thread::sleep(Duration::from_millis(10));
        drop(tx);
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn blocked_full_push_fails_when_consumer_drops() {
        let (tx, rx) = ring(1);
        tx.push(1).unwrap();
        let h = thread::spawn(move || tx.push(2));
        thread::sleep(Duration::from_millis(10));
        drop(rx);
        assert_eq!(h.join().unwrap(), Err(PushError::Closed(2)));
    }

    #[test]
    fn push_bulk_publishes_fifo_and_pop_bulk_claims() {
        let (tx, rx) = ring(8);
        tx.push_bulk((0..5).collect()).unwrap();
        let mut out = Vec::new();
        let r = rx.pop_bulk(&mut out, 16);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(
            r,
            BulkPop {
                popped: 5,
                closed: false
            }
        );
    }

    #[test]
    fn push_bulk_empty_is_a_noop_even_when_full() {
        let (tx, _rx) = ring::<u32>(1);
        tx.push(1).unwrap();
        tx.push_bulk(Vec::new()).unwrap();
    }

    #[test]
    fn try_push_bulk_splits_at_the_free_window() {
        let (tx, rx) = ring(4);
        let rest = match tx.try_push_bulk((0..7).collect()) {
            Err(PushError::Full(rest)) => rest,
            other => panic!("expected Full, got {other:?}"),
        };
        assert_eq!(rest, vec![4, 5, 6]);
        let mut out = Vec::new();
        rx.pop_bulk(&mut out, usize::MAX);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pop_bulk_respects_max_and_reports_close() {
        let (tx, rx) = ring(8);
        tx.push_bulk(vec![1, 2, 3]).unwrap();
        drop(tx);
        let mut out = Vec::new();
        assert_eq!(
            rx.pop_bulk(&mut out, 2),
            BulkPop {
                popped: 2,
                closed: true
            }
        );
        assert_eq!(
            rx.pop_bulk(&mut out, 2),
            BulkPop {
                popped: 1,
                closed: true
            }
        );
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(
            rx.pop_bulk(&mut out, 2),
            BulkPop {
                popped: 0,
                closed: true
            }
        );
    }

    #[test]
    fn peek_counts_without_dequeuing() {
        let (tx, rx) = ring(4);
        tx.push(10).unwrap();
        tx.push(20).unwrap();
        let mut seen = Vec::new();
        rx.peek(|&v| seen.push(v));
        assert_eq!(seen, vec![10, 20]);
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn wait_nonempty_times_out_then_observes_data() {
        let (tx, rx) = ring(4);
        assert!(!rx.wait_nonempty(Some(Duration::from_millis(1))));
        tx.push(1).unwrap();
        assert!(rx.wait_nonempty(Some(Duration::from_millis(1))));
        assert_eq!(rx.pop(), Some(1));
        drop(tx);
        // Closed counts as observable (end-of-stream), not a timeout.
        assert!(rx.wait_nonempty(None));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ring::<u32>(0);
    }

    #[test]
    fn works_with_zero_sized_types() {
        let (tx, rx) = ring::<()>(3);
        tx.push(()).unwrap();
        tx.push_bulk(vec![(), ()]).unwrap();
        assert_eq!(tx.try_push(()), Err(PushError::Full(())));
        let mut out = Vec::new();
        assert_eq!(rx.pop_bulk(&mut out, 8).popped, 3);
    }

    /// Counts live instances so leaks and double-drops both fail loudly
    /// (Miri additionally catches the double-drop as UB).
    #[derive(Debug)]
    struct Token(Arc<AtomicU64>);
    impl Token {
        fn new(live: &Arc<AtomicU64>) -> Self {
            live.fetch_add(1, Ordering::Relaxed);
            Token(live.clone())
        }
    }
    impl Drop for Token {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn queued_items_drop_exactly_once_with_the_ring() {
        let live = Arc::new(AtomicU64::new(0));
        let (tx, rx) = ring(4);
        for _ in 0..3 {
            tx.push(Token::new(&live)).unwrap();
        }
        assert_eq!(live.load(Ordering::Relaxed), 3);
        drop(rx.pop());
        assert_eq!(live.load(Ordering::Relaxed), 2);
        drop(tx);
        drop(rx);
        assert_eq!(live.load(Ordering::Relaxed), 0, "ring drop frees the rest");
    }

    #[test]
    fn rejected_items_hand_ownership_back() {
        let live = Arc::new(AtomicU64::new(0));
        let (tx, rx) = ring(1);
        tx.push(Token::new(&live)).unwrap();
        let r = tx.try_push(Token::new(&live));
        assert!(matches!(r, Err(PushError::Full(_))));
        drop(r);
        drop(rx);
        let r = tx.push(Token::new(&live));
        assert!(matches!(r, Err(PushError::Closed(_))));
        drop(r);
        drop(tx);
        assert_eq!(live.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn concurrent_scalar_stream_arrives_in_order() {
        let (tx, rx) = ring(7);
        let h = thread::spawn(move || {
            for i in 0..SOAK as u64 {
                tx.push(i).unwrap();
            }
        });
        for i in 0..SOAK as u64 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        h.join().unwrap();
    }

    #[test]
    fn concurrent_bulk_stream_matches_the_scalar_sequence() {
        let total: u64 = SOAK as u64;
        let (tx, rx) = ring(7);
        let h = thread::spawn(move || {
            let mut next = 0u64;
            let mut size = 1usize;
            while next < total {
                let end = (next + size as u64).min(total);
                tx.push_bulk((next..end).collect()).unwrap();
                next = end;
                size = size % 13 + 1;
            }
        });
        let mut got: Vec<u64> = Vec::new();
        let mut out = Vec::new();
        loop {
            out.clear();
            let r = rx.pop_bulk(&mut out, 5);
            got.extend(&out);
            if r.popped == 0 {
                if r.closed {
                    break;
                }
                rx.wait_nonempty(None);
            }
        }
        h.join().unwrap();
        assert_eq!(got.len() as u64, total);
        assert!(
            got.windows(2).all(|w| w[0] + 1 == w[1]),
            "in order, no gaps"
        );
    }

    #[test]
    fn midstream_consumer_close_bounds_the_stranded_items() {
        let (tx, rx) = ring(4);
        let h = thread::spawn(move || {
            let mut accepted = 0u64;
            loop {
                match tx.push(accepted) {
                    Ok(()) => accepted += 1,
                    Err(PushError::Closed(_)) => return accepted,
                    Err(PushError::Full(_)) => unreachable!(),
                }
            }
        });
        let mut popped = 0u64;
        while popped < SOAK as u64 / 10 {
            if let TryPop::Item(v) = rx.try_pop() {
                assert_eq!(v, popped);
                popped += 1;
            }
        }
        rx.close();
        let accepted = h.join().unwrap();
        // Whatever the producer got in but we never popped is still in the
        // ring (freed on drop), and is bounded by its capacity.
        assert!(
            accepted - popped <= 4,
            "{accepted} accepted, {popped} popped"
        );
    }
}
