//! Property tests for the wire codec:
//!
//! * random work/value batches round-trip encode→decode identical;
//! * truncating a valid datagram anywhere never panics and the per-frame
//!   loss tallies (the future `NetDecode` drops) account for every
//!   declared frame exactly;
//! * flipping arbitrary bytes or feeding pure garbage never panics —
//!   every datagram either decodes or is rejected whole.

use proptest::prelude::*;

use smbm_net::codec::{decode, encode_data, Datagram, WirePacket, HEADER_LEN};
use smbm_switch::{PortId, Value, ValuePacket, Work, WorkPacket};

fn work_batch() -> impl Strategy<Value = Vec<WorkPacket>> {
    proptest::collection::vec((0usize..4096, 0u32..1_000_000), 0..200).prop_map(|v| {
        v.into_iter()
            .map(|(p, w)| WorkPacket::new(PortId::new(p), Work::new(w)))
            .collect()
    })
}

fn value_batch() -> impl Strategy<Value = Vec<ValuePacket>> {
    proptest::collection::vec((0usize..4096, 0u64..u64::MAX), 0..200).prop_map(|v| {
        v.into_iter()
            .map(|(p, x)| ValuePacket::new(PortId::new(p), Value::new(x)))
            .collect()
    })
}

/// Unpacks a data decode, failing the property on any other outcome.
fn data<P: WirePacket + std::fmt::Debug>(buf: &[u8]) -> (Vec<P>, u64, u64, bool) {
    match decode::<P>(buf, |_| true) {
        Ok(Datagram::Data {
            packets,
            bad_frames,
            missing,
            truncated,
            ..
        }) => (packets, bad_frames, missing, truncated),
        other => panic!("expected a data datagram, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn work_batches_round_trip(client in 0u16..=u16::MAX, packets in work_batch()) {
        let buf = encode_data(client, &packets);
        prop_assert_eq!(buf.len(), HEADER_LEN + packets.len() * WorkPacket::FRAME_LEN);
        let (got, bad, missing, truncated) = data::<WorkPacket>(&buf);
        prop_assert_eq!(got, packets);
        prop_assert_eq!(bad, 0);
        prop_assert_eq!(missing, 0);
        prop_assert!(!truncated);
    }

    #[test]
    fn value_batches_round_trip(client in 0u16..=u16::MAX, packets in value_batch()) {
        let buf = encode_data(client, &packets);
        let (got, _, missing, _) = data::<ValuePacket>(&buf);
        prop_assert_eq!(got, packets);
        prop_assert_eq!(missing, 0);
    }

    #[test]
    fn truncation_never_panics_and_accounts_every_frame(
        packets in work_batch(),
        cut_per_mille in 0usize..=1000,
    ) {
        let full = encode_data(7, &packets);
        let cut = full.len() * cut_per_mille / 1000;
        let buf = &full[..cut.min(full.len())];
        match decode::<WorkPacket>(buf, |_| true) {
            Err(_) => prop_assert!(buf.len() < HEADER_LEN, "whole headers must decode"),
            Ok(Datagram::Data { packets: got, bad_frames, missing, truncated, .. }) => {
                // Declared == delivered + lost, exactly: `missing` is the
                // NetDecode drop tally the server will charge.
                prop_assert_eq!(got.len() as u64 + bad_frames + missing, packets.len() as u64);
                prop_assert_eq!(bad_frames, 0);
                prop_assert_eq!(truncated, buf.len() < full.len() && !packets.is_empty());
                prop_assert!(got.iter().zip(&packets).all(|(a, b)| a == b), "prefix preserved");
            }
            Ok(other) => prop_assert!(false, "truncated data decoded as {other:?}"),
        }
    }

    #[test]
    fn frame_validation_losses_are_exact(packets in work_batch(), limit in 1usize..4096) {
        let buf = encode_data(0, &packets);
        let valid = packets.iter().filter(|p| p.port().index() < limit).count() as u64;
        let (got, bad, missing, _) = data::<WorkPacket>(&buf);
        // Re-decode with the admission check a real server would use.
        let _ = got;
        let (kept, bad2, _, _) = match decode::<WorkPacket>(&buf, |p| p.port().index() < limit) {
            Ok(Datagram::Data { packets, bad_frames, missing, truncated, .. }) =>
                (packets, bad_frames, missing, truncated),
            other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
        };
        prop_assert_eq!(kept.len() as u64, valid);
        prop_assert_eq!(bad2, packets.len() as u64 - valid);
        prop_assert_eq!(bad + missing, 0);
    }

    #[test]
    fn corrupted_bytes_never_panic(
        packets in work_batch(),
        flips in proptest::collection::vec((0usize..4096, 0u8..=255), 1..8),
    ) {
        let mut buf = encode_data(3, &packets);
        for (pos, val) in flips {
            if !buf.is_empty() {
                let idx = pos % buf.len();
                buf[idx] = val;
            }
        }
        // Whatever came out: a decode, a whole-datagram rejection — but
        // never a panic, and data decodes never invent frames.
        if let Ok(Datagram::Data { packets: got, bad_frames, missing, .. }) =
            decode::<WorkPacket>(&buf, |p| p.port().index() < 4096)
        {
            prop_assert!(got.len() as u64 + bad_frames + missing <= u64::from(u16::MAX));
        }
    }

    #[test]
    fn pure_garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        let _ = decode::<WorkPacket>(&bytes, |_| true);
        let _ = decode::<ValuePacket>(&bytes, |_| true);
    }
}
