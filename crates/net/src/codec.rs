//! The smbm wire format: a compact little-endian codec packing many
//! fixed-size packet frames into one UDP datagram.
//!
//! # Datagram layout
//!
//! Every datagram starts with an 8-byte header:
//!
//! | offset | size | field   | meaning                                    |
//! |--------|------|---------|--------------------------------------------|
//! | 0      | 2    | magic   | [`MAGIC`] (`0xB0FF`), little-endian        |
//! | 2      | 1    | version | [`VERSION`] (`1`)                          |
//! | 3      | 1    | kind    | see below                                  |
//! | 4      | 2    | count   | frames in a data datagram, else `0`        |
//! | 6      | 2    | client  | sender's client id                         |
//!
//! Kinds `0` (work data) and `1` (value data) carry `count` back-to-back
//! packet frames; the remaining kinds are the control plane ([`Datagram`]):
//! `2` FIN, `3` FIN-ACK, `4` SYNC, `5` SYNC-ACK. SYNC and SYNC-ACK carry an
//! 8-byte sequence number so a client can run stop-and-wait flow control —
//! a SYNC-ACK for sequence `s` means the server has *fully accounted* every
//! data datagram the client sent before SYNC `s`.
//!
//! A work frame is 8 bytes (`port: u32`, `work: u32`); a value frame is 12
//! bytes (`port: u32`, `value: u64`). All integers little-endian.
//!
//! # Fuzz safety
//!
//! [`decode`] never panics on wire input. A datagram that is not even a
//! well-formed header (short, bad magic/version/kind) is rejected whole
//! with a [`WireError`]. A *data* datagram with a good header always
//! decodes: frames that fail the caller's validation close are counted in
//! [`Datagram::Data::bad_frames`], frames the header declared but the
//! payload is too short to contain are counted in
//! [`Datagram::Data::missing`] — both are exact per-frame tallies the
//! server turns into `DropReason::NetDecode` drops.

use std::fmt;

use smbm_switch::{PortId, Value, ValuePacket, Work, WorkPacket};

/// First two header bytes of every smbm datagram.
pub const MAGIC: u16 = 0xB0FF;

/// Wire format version this codec speaks.
pub const VERSION: u8 = 1;

/// Bytes in the datagram header.
pub const HEADER_LEN: usize = 8;

/// Kind tag of a FIN datagram (client is done sending).
pub const KIND_FIN: u8 = 2;
/// Kind tag of a FIN-ACK datagram (server acknowledges the FIN).
pub const KIND_FIN_ACK: u8 = 3;
/// Kind tag of a SYNC datagram (flow-control barrier request).
pub const KIND_SYNC: u8 = 4;
/// Kind tag of a SYNC-ACK datagram (barrier acknowledged).
pub const KIND_SYNC_ACK: u8 = 5;

/// A packet type with a fixed-size wire frame.
///
/// Implemented for [`WorkPacket`] (kind `0`, 8-byte frames) and
/// [`ValuePacket`] (kind `1`, 12-byte frames). `decode_frame` is total: any
/// `FRAME_LEN` bytes decode to *some* packet, and semantic validation
/// (known port, matching work) is the caller's per-frame check in
/// [`decode`] — that split is what makes the codec fuzz-safe while still
/// keeping garbage out of the switch, whose admission path treats an
/// unknown port or mismatched work as a programming error.
pub trait WirePacket: Copy {
    /// Kind tag of data datagrams carrying this packet type.
    const KIND: u8;
    /// Encoded frame size in bytes.
    const FRAME_LEN: usize;
    /// Appends this packet's frame to `out`.
    fn encode_frame(&self, out: &mut Vec<u8>);
    /// Decodes one frame; `bytes` is exactly `FRAME_LEN` long.
    fn decode_frame(bytes: &[u8]) -> Self;
    /// Destination port index, for shard fanout routing.
    fn port_index(&self) -> usize;
}

impl WirePacket for WorkPacket {
    const KIND: u8 = 0;
    const FRAME_LEN: usize = 8;

    fn encode_frame(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.port().index() as u32).to_le_bytes());
        out.extend_from_slice(&self.work().cycles().to_le_bytes());
    }

    fn decode_frame(bytes: &[u8]) -> Self {
        let port = u32_at(bytes, 0) as usize;
        let work = u32_at(bytes, 4);
        WorkPacket::new(PortId::new(port), Work::new(work))
    }

    fn port_index(&self) -> usize {
        self.port().index()
    }
}

impl WirePacket for ValuePacket {
    const KIND: u8 = 1;
    const FRAME_LEN: usize = 12;

    fn encode_frame(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.port().index() as u32).to_le_bytes());
        out.extend_from_slice(&self.value().get().to_le_bytes());
    }

    fn decode_frame(bytes: &[u8]) -> Self {
        let port = u32_at(bytes, 0) as usize;
        let value = u64_at(bytes, 4);
        ValuePacket::new(PortId::new(port), Value::new(value))
    }

    fn port_index(&self) -> usize {
        self.port().index()
    }
}

/// One decoded datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datagram<P> {
    /// A data datagram: the frames that decoded and validated, plus exact
    /// tallies of the ones that did not.
    Data {
        /// Sender's client id.
        client: u16,
        /// Frames that decoded and passed the caller's validation check.
        packets: Vec<P>,
        /// Frames present in the payload that failed validation.
        bad_frames: u64,
        /// Frames the header declared but the payload did not contain
        /// (the datagram was truncated mid-flight).
        missing: u64,
        /// The payload was shorter than `count * FRAME_LEN`.
        truncated: bool,
    },
    /// The client is done sending.
    Fin {
        /// Sender's client id.
        client: u16,
    },
    /// The server acknowledges a FIN.
    FinAck {
        /// Client the ack is addressed to.
        client: u16,
    },
    /// Flow-control barrier: the client asks the server to confirm that
    /// everything sent before this datagram has been accounted.
    Sync {
        /// Sender's client id.
        client: u16,
        /// Barrier sequence number.
        seq: u64,
    },
    /// The server confirms barrier `seq`.
    SyncAck {
        /// Client the ack is addressed to.
        client: u16,
        /// Barrier sequence number being confirmed.
        seq: u64,
    },
}

/// A datagram rejected whole: not even its header (or control payload) was
/// intelligible, so nothing about its contents — not even how many frames
/// it claimed to carry — can be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Shorter than the fixed header (or a control payload).
    TooShort {
        /// Bytes actually received.
        len: usize,
    },
    /// The first two bytes are not [`MAGIC`].
    BadMagic(u16),
    /// Unknown wire format version.
    BadVersion(u8),
    /// Unknown datagram kind.
    BadKind(u8),
    /// A data datagram of the other packet model (e.g. value frames
    /// arriving at a work-model server).
    WrongModel {
        /// Kind this decoder expected for data datagrams.
        expected: u8,
        /// Kind the datagram carried.
        got: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TooShort { len } => write!(f, "datagram too short ({len} bytes)"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown datagram kind {k}"),
            WireError::WrongModel { expected, got } => {
                write!(f, "wrong packet model: expected kind {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn header(kind: u8, count: u16, client: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&client.to_le_bytes());
    out
}

/// Encodes a data datagram carrying `packets` from `client`.
///
/// # Panics
///
/// Panics if `packets` holds more than `u16::MAX` frames — split batches
/// before encoding (any sane batch is orders of magnitude smaller than a
/// datagram can carry anyway).
pub fn encode_data<P: WirePacket>(client: u16, packets: &[P]) -> Vec<u8> {
    let count = u16::try_from(packets.len()).expect("at most 65535 frames per datagram");
    let mut out = header(P::KIND, count, client);
    out.reserve(packets.len() * P::FRAME_LEN);
    for p in packets {
        p.encode_frame(&mut out);
    }
    out
}

/// Encodes a FIN from `client`.
pub fn encode_fin(client: u16) -> Vec<u8> {
    header(KIND_FIN, 0, client)
}

/// Encodes a FIN-ACK addressed to `client`.
pub fn encode_fin_ack(client: u16) -> Vec<u8> {
    header(KIND_FIN_ACK, 0, client)
}

/// Encodes a SYNC barrier `seq` from `client`.
pub fn encode_sync(client: u16, seq: u64) -> Vec<u8> {
    let mut out = header(KIND_SYNC, 0, client);
    out.extend_from_slice(&seq.to_le_bytes());
    out
}

/// Encodes a SYNC-ACK for barrier `seq`, addressed to `client`.
pub fn encode_sync_ack(client: u16, seq: u64) -> Vec<u8> {
    let mut out = header(KIND_SYNC_ACK, 0, client);
    out.extend_from_slice(&seq.to_le_bytes());
    out
}

/// Decodes one datagram, validating every data frame with `check` (ports in
/// range, work matching the port's configured requirement — whatever the
/// receiving switch demands at admission).
///
/// # Errors
///
/// Returns [`WireError`] only for datagrams rejected *whole* (unintelligible
/// header or control payload). A data datagram with a good header always
/// yields [`Datagram::Data`], with per-frame losses tallied exactly.
pub fn decode<P: WirePacket>(
    buf: &[u8],
    check: impl Fn(&P) -> bool,
) -> Result<Datagram<P>, WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::TooShort { len: buf.len() });
    }
    let magic = u16_at(buf, 0);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if buf[2] != VERSION {
        return Err(WireError::BadVersion(buf[2]));
    }
    let kind = buf[3];
    let count = u16_at(buf, 4) as usize;
    let client = u16_at(buf, 6);
    let payload = &buf[HEADER_LEN..];
    match kind {
        k if k == P::KIND => {
            let mut packets = Vec::with_capacity(count.min(payload.len() / P::FRAME_LEN.max(1)));
            let mut bad_frames = 0u64;
            let mut decoded = 0usize;
            for frame in payload.chunks_exact(P::FRAME_LEN).take(count) {
                decoded += 1;
                let p = P::decode_frame(frame);
                if check(&p) {
                    packets.push(p);
                } else {
                    bad_frames += 1;
                }
            }
            Ok(Datagram::Data {
                client,
                packets,
                bad_frames,
                missing: (count - decoded) as u64,
                truncated: payload.len() < count * P::FRAME_LEN,
            })
        }
        KIND_FIN => Ok(Datagram::Fin { client }),
        KIND_FIN_ACK => Ok(Datagram::FinAck { client }),
        KIND_SYNC | KIND_SYNC_ACK => {
            if payload.len() < 8 {
                return Err(WireError::TooShort { len: buf.len() });
            }
            let seq = u64_at(payload, 0);
            if kind == KIND_SYNC {
                Ok(Datagram::Sync { client, seq })
            } else {
                Ok(Datagram::SyncAck { client, seq })
            }
        }
        // The other model's data kind is a distinct error so a misdirected
        // client shows up in logs as "wrong model", not generic garbage.
        0 | 1 => Err(WireError::WrongModel {
            expected: P::KIND,
            got: kind,
        }),
        other => Err(WireError::BadKind(other)),
    }
}

fn u16_at(b: &[u8], i: usize) -> u16 {
    u16::from_le_bytes([b[i], b[i + 1]])
}

fn u32_at(b: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]])
}

fn u64_at(b: &[u8], i: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&b[i..i + 8]);
    u64::from_le_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(port: usize, work: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(port), Work::new(work))
    }

    fn vp(port: usize, value: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(value))
    }

    #[test]
    fn work_data_round_trips() {
        let packets = vec![wp(0, 1), wp(3, 4), wp(7, 8)];
        let buf = encode_data(9, &packets);
        assert_eq!(buf.len(), HEADER_LEN + 3 * WorkPacket::FRAME_LEN);
        match decode::<WorkPacket>(&buf, |_| true).unwrap() {
            Datagram::Data {
                client,
                packets: got,
                bad_frames,
                missing,
                truncated,
            } => {
                assert_eq!(client, 9);
                assert_eq!(got, packets);
                assert_eq!(bad_frames, 0);
                assert_eq!(missing, 0);
                assert!(!truncated);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn value_data_round_trips() {
        let packets = vec![vp(1, u64::MAX), vp(0, 0)];
        let buf = encode_data(0, &packets);
        assert_eq!(buf.len(), HEADER_LEN + 2 * ValuePacket::FRAME_LEN);
        match decode::<ValuePacket>(&buf, |_| true).unwrap() {
            Datagram::Data { packets: got, .. } => assert_eq!(got, packets),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn control_datagrams_round_trip() {
        assert_eq!(
            decode::<WorkPacket>(&encode_fin(7), |_| true).unwrap(),
            Datagram::Fin { client: 7 }
        );
        assert_eq!(
            decode::<WorkPacket>(&encode_fin_ack(7), |_| true).unwrap(),
            Datagram::FinAck { client: 7 }
        );
        assert_eq!(
            decode::<ValuePacket>(&encode_sync(2, u64::MAX), |_| true).unwrap(),
            Datagram::Sync {
                client: 2,
                seq: u64::MAX
            }
        );
        assert_eq!(
            decode::<ValuePacket>(&encode_sync_ack(2, 5), |_| true).unwrap(),
            Datagram::SyncAck { client: 2, seq: 5 }
        );
    }

    #[test]
    fn bad_frames_are_counted_not_delivered() {
        let packets = vec![wp(0, 1), wp(99, 1), wp(1, 2)];
        let buf = encode_data(0, &packets);
        match decode::<WorkPacket>(&buf, |p| p.port().index() < 8).unwrap() {
            Datagram::Data {
                packets: got,
                bad_frames,
                missing,
                ..
            } => {
                assert_eq!(got, vec![wp(0, 1), wp(1, 2)]);
                assert_eq!(bad_frames, 1);
                assert_eq!(missing, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncation_counts_missing_frames_exactly() {
        let buf = encode_data(4, &[wp(0, 1), wp(1, 2), wp(2, 3)]);
        // Chop mid-way through the second frame: one whole frame decodes,
        // two are missing.
        let cut = &buf[..HEADER_LEN + WorkPacket::FRAME_LEN + 3];
        match decode::<WorkPacket>(cut, |_| true).unwrap() {
            Datagram::Data {
                packets,
                bad_frames,
                missing,
                truncated,
                ..
            } => {
                assert_eq!(packets, vec![wp(0, 1)]);
                assert_eq!(bad_frames, 0);
                assert_eq!(missing, 2);
                assert!(truncated);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_headers_are_rejected_whole() {
        assert_eq!(
            decode::<WorkPacket>(&[], |_| true),
            Err(WireError::TooShort { len: 0 })
        );
        assert_eq!(
            decode::<WorkPacket>(&[0xFF; 4], |_| true),
            Err(WireError::TooShort { len: 4 })
        );
        let mut buf = encode_fin(0);
        buf[0] = 0;
        assert!(matches!(
            decode::<WorkPacket>(&buf, |_| true),
            Err(WireError::BadMagic(_))
        ));
        let mut buf = encode_fin(0);
        buf[2] = 9;
        assert_eq!(
            decode::<WorkPacket>(&buf, |_| true),
            Err(WireError::BadVersion(9))
        );
        let mut buf = encode_fin(0);
        buf[3] = 200;
        assert_eq!(
            decode::<WorkPacket>(&buf, |_| true),
            Err(WireError::BadKind(200))
        );
        // A SYNC whose seq payload is chopped off.
        let buf = encode_sync(0, 1);
        assert!(matches!(
            decode::<WorkPacket>(&buf[..HEADER_LEN + 2], |_| true),
            Err(WireError::TooShort { .. })
        ));
    }

    #[test]
    fn cross_model_data_is_a_wrong_model_error() {
        let buf = encode_data(0, &[vp(0, 1)]);
        assert_eq!(
            decode::<WorkPacket>(&buf, |_| true),
            Err(WireError::WrongModel {
                expected: 0,
                got: 1
            })
        );
        let buf = encode_data(0, &[wp(0, 1)]);
        assert_eq!(
            decode::<ValuePacket>(&buf, |_| true),
            Err(WireError::WrongModel {
                expected: 1,
                got: 0
            })
        );
    }

    #[test]
    fn errors_display_usefully() {
        assert_eq!(
            WireError::TooShort { len: 3 }.to_string(),
            "datagram too short (3 bytes)"
        );
        assert_eq!(WireError::BadMagic(0xDEAD).to_string(), "bad magic 0xdead");
        assert_eq!(
            WireError::WrongModel {
                expected: 0,
                got: 1
            }
            .to_string(),
            "wrong packet model: expected kind 0, got 1"
        );
    }
}
