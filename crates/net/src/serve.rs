//! The high-level server runner: build the sharded datapath for a model
//! and policy, attach the bound UDP ingress plane, run until every
//! expected client has FINed, and report.

use std::fmt;
use std::net::SocketAddr;

use smbm_core::{value_policy_by_name, work_policy_by_name};
use smbm_obs::{NetCounts, TelemetryConfig};
use smbm_runtime::{
    FaultPlan, FlightConfig, IngestMode, Model, RuntimeBuilder, RuntimeConfig, RuntimeReport,
    ShardConfig, SupervisionConfig, ValueService, VirtualClock, WorkService,
};
use smbm_switch::{Counters, PortId, ValuePacket, ValueSwitchConfig, WorkPacket, WorkSwitchConfig};

use crate::server::{NetConfig, NetIngress};

/// Everything the network server needs to know.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Packet model served. The combined model has no wire format and is
    /// rejected.
    pub model: Model,
    /// Policy name, resolved through the model's registry
    /// (case-insensitive).
    pub policy: String,
    /// Output ports per shard.
    pub ports: usize,
    /// Shared buffer capacity per shard (`B`).
    pub buffer: usize,
    /// Transmission speedup (`C`).
    pub speedup: u32,
    /// Switch shards; every socket fans out across all of them.
    pub shards: usize,
    /// Ingress ring depth, in batches, per (socket, shard) pair.
    pub ring_capacity: usize,
    /// The ingress plane: listen addresses, fanout, client expectations.
    pub net: NetConfig,
    /// Faults to inject during the run (chaos mode); empty injects
    /// nothing. Sockets stay bound and serving across shard restarts.
    pub faults: FaultPlan,
    /// Restarts allowed per shard before its supervisor gives up.
    pub restart_budget: u32,
    /// Run the live telemetry plane alongside the datapath; the per-shard
    /// stat cells then carry the net ingress tallies too.
    pub telemetry: Option<TelemetryConfig>,
    /// Attach crash flight recorders; post-mortem dump headers carry the
    /// net tallies of the sockets feeding the dead shard.
    pub flight: Option<FlightConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            model: Model::Work,
            policy: "LWD".to_owned(),
            ports: 64,
            buffer: 256,
            speedup: 1,
            shards: 1,
            ring_capacity: 64,
            net: NetConfig::default(),
            faults: FaultPlan::none(),
            restart_budget: 3,
            telemetry: None,
            flight: None,
        }
    }
}

/// A rejected [`ServeConfig`] or a failed socket operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The policy name is not in the model's registry.
    UnknownPolicy {
        /// The model whose registry was consulted.
        model: Model,
        /// The offending name.
        policy: String,
    },
    /// A structural parameter was invalid.
    InvalidConfig(String),
    /// Binding or inspecting the sockets failed.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownPolicy { model, policy } => {
                write!(f, "unknown {model}-model policy {policy:?}")
            }
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::Io(msg) => write!(f, "net ingress: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What a serve run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The model served.
    pub model: Model,
    /// Canonical policy name (registry casing).
    pub policy: String,
    /// The addresses that were actually bound, in listen order.
    pub local_addrs: Vec<SocketAddr>,
    /// The underlying datapath report; net tallies ride on the producer
    /// reports ([`RuntimeReport::net_counts`]).
    pub runtime: RuntimeReport,
}

impl ServeReport {
    /// Datapath-wide counters (see [`RuntimeReport::counters`]), including
    /// the `NetDecode` drop fold.
    pub fn counters(&self) -> Counters {
        self.runtime.counters()
    }

    /// Sum of every shard's objective.
    pub fn score(&self) -> u64 {
        self.runtime.score()
    }

    /// Wire-level tallies summed over every socket.
    pub fn net_counts(&self) -> NetCounts {
        self.runtime.net_counts()
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        let c = self.counters();
        format!(
            "{{\"model\":\"{}\",\"policy\":\"{}\",\"shards\":{},\"sockets\":{},\
             \"arrived\":{},\"admitted\":{},\"transmitted\":{},\"score\":{},\
             \"drops\":{{\"switch\":{},\"backpressure\":{},\"shard_failure\":{},\
             \"net_decode\":{}}},\"lost\":{},\"restarts\":{},\"orphans\":{},\
             \"gave_up\":{},\"net\":{},\"flight_dumps\":{},\"elapsed_ms\":{:.3},\
             \"packets_per_sec\":{:.0}}}",
            self.model,
            self.policy,
            self.runtime.shards.len(),
            self.local_addrs.len(),
            c.arrived(),
            c.admitted(),
            c.transmitted(),
            self.score(),
            c.dropped_at_switch(),
            c.dropped_backpressure(),
            c.dropped_shard_failure(),
            c.dropped_net_decode(),
            self.runtime.lost_packets(),
            self.runtime.restarts(),
            self.runtime.orphaned_packets(),
            self.runtime.shards_gave_up(),
            self.net_counts().to_json(),
            self.runtime.flight_dumps(),
            self.runtime.elapsed.as_secs_f64() * 1e3,
            self.runtime.processed_per_sec(),
        )
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.counters();
        let net = self.net_counts();
        writeln!(
            f,
            "serve {} model, policy {}, {} shard(s) on {} socket(s): \
             {} packets in {:.1} ms ({:.0} packets/sec)",
            self.model,
            self.policy,
            self.runtime.shards.len(),
            self.local_addrs.len(),
            c.arrived(),
            self.runtime.elapsed.as_secs_f64() * 1e3,
            self.runtime.processed_per_sec(),
        )?;
        writeln!(
            f,
            "  net: {} datagram(s), {} frame(s), {} decode error(s), {} truncation(s)",
            net.datagrams, net.frames, net.decode_errors, net.truncations,
        )?;
        writeln!(
            f,
            "  admitted {} | dropped at switch {} | backpressure {} | net_decode {} | score {}",
            c.admitted(),
            c.dropped_at_switch(),
            c.dropped_backpressure(),
            c.dropped_net_decode(),
            self.score(),
        )?;
        if self.runtime.shard_panics > 0 {
            writeln!(
                f,
                "  supervision: {} panic(s), {} restart(s), {} shard(s) abandoned \
                 — sockets stayed bound throughout",
                self.runtime.shard_panics,
                self.runtime.restarts(),
                self.runtime.shards_gave_up(),
            )?;
        }
        for err in &self.runtime.obs_errors {
            writeln!(f, "  observability error: {err}")?;
        }
        for (i, addr) in self.local_addrs.iter().enumerate() {
            writeln!(f, "  socket {i}: {addr}")?;
        }
        Ok(())
    }
}

fn validate(config: &ServeConfig) -> Result<(), ServeError> {
    if config.ports == 0 {
        return Err(ServeError::InvalidConfig("ports must be positive".into()));
    }
    if config.buffer < config.ports {
        return Err(ServeError::InvalidConfig(format!(
            "buffer {} smaller than ports {}",
            config.buffer, config.ports
        )));
    }
    if config.shards == 0 {
        return Err(ServeError::InvalidConfig(
            "at least one shard required".into(),
        ));
    }
    if config.speedup == 0 {
        return Err(ServeError::InvalidConfig("speedup must be positive".into()));
    }
    Ok(())
}

/// Binds the configured sockets and serves until every expected client has
/// FINed (or the ingress goes idle past its timeout).
///
/// # Errors
///
/// Returns [`ServeError`] for an unknown policy, invalid parameters, or a
/// failed bind; nothing is spawned in that case.
pub fn run_server(config: &ServeConfig) -> Result<ServeReport, ServeError> {
    let ingress =
        NetIngress::bind(config.net.clone()).map_err(|e| ServeError::Io(e.to_string()))?;
    run_bound_server(config, ingress)
}

/// Like [`run_server`], but over sockets bound beforehand — the pattern for
/// ephemeral ports: bind, read [`NetIngress::local_addrs`] back, hand them
/// to the clients, then serve.
///
/// # Errors
///
/// Returns [`ServeError`] for an unknown policy or invalid parameters.
pub fn run_bound_server(
    config: &ServeConfig,
    ingress: NetIngress,
) -> Result<ServeReport, ServeError> {
    validate(config)?;
    let local_addrs = ingress
        .local_addrs()
        .map_err(|e| ServeError::Io(e.to_string()))?;
    let invalid = |e: &dyn fmt::Display| ServeError::InvalidConfig(e.to_string());
    let runtime_config = RuntimeConfig {
        ring_capacity: config.ring_capacity,
        shard: ShardConfig {
            mode: IngestMode::Freerun,
            flush: None,
            drain_at_end: true,
        },
        record_metrics: false,
        faults: config.faults.clone(),
        supervision: SupervisionConfig {
            restart_budget: config.restart_budget,
            ..SupervisionConfig::default()
        },
        telemetry: config.telemetry.clone(),
        flight: config.flight.clone(),
    };
    match config.model {
        Model::Work => {
            let canonical = work_policy_by_name(&config.policy)
                .ok_or_else(|| ServeError::UnknownPolicy {
                    model: config.model,
                    policy: config.policy.clone(),
                })?
                .name()
                .to_owned();
            let switch_cfg = WorkSwitchConfig::contiguous(config.ports as u32, config.buffer)
                .map_err(|e| invalid(&e))?;
            let mut builder = RuntimeBuilder::new(runtime_config);
            let ids: Vec<_> = (0..config.shards)
                .map(|_| {
                    let cfg = switch_cfg.clone();
                    let name = canonical.clone();
                    let speedup = config.speedup;
                    builder.add_shard(move || {
                        let policy = work_policy_by_name(&name).expect("validated above");
                        WorkService::new(smbm_core::WorkRunner::new(cfg.clone(), policy, speedup))
                    })
                })
                .collect();
            // Admission treats an unknown port or mismatched work as a
            // programming error, so the wire check must be exactly as
            // strict as the switch.
            let works: Vec<u32> = (0..config.ports)
                .map(|i| switch_cfg.work(PortId::new(i)).cycles())
                .collect();
            ingress.attach(&mut builder, &ids, move |p: &WorkPacket| {
                works.get(p.port().index()).copied() == Some(p.work().cycles())
            });
            let runtime = builder.run(|_| VirtualClock::new());
            Ok(ServeReport {
                model: config.model,
                policy: canonical,
                local_addrs,
                runtime,
            })
        }
        Model::Value => {
            let canonical = value_policy_by_name(&config.policy)
                .ok_or_else(|| ServeError::UnknownPolicy {
                    model: config.model,
                    policy: config.policy.clone(),
                })?
                .name()
                .to_owned();
            let switch_cfg =
                ValueSwitchConfig::new(config.buffer, config.ports).map_err(|e| invalid(&e))?;
            let mut builder = RuntimeBuilder::new(runtime_config);
            let ids: Vec<_> = (0..config.shards)
                .map(|_| {
                    let name = canonical.clone();
                    let speedup = config.speedup;
                    builder.add_shard(move || {
                        let policy = value_policy_by_name(&name).expect("validated above");
                        ValueService::new(smbm_core::ValueRunner::new(switch_cfg, policy, speedup))
                    })
                })
                .collect();
            let ports = config.ports;
            ingress.attach(&mut builder, &ids, move |p: &ValuePacket| {
                p.port().index() < ports
            });
            let runtime = builder.run(|_| VirtualClock::new());
            Ok(ServeReport {
                model: config.model,
                policy: canonical,
                local_addrs,
                runtime,
            })
        }
        Model::Combined => Err(ServeError::InvalidConfig(
            "the combined model has no wire format; use work or value".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{run_netgen, NetGenConfig};
    use crate::server::Fanout;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn rejects_bad_configs_without_spawning() {
        let mut cfg = ServeConfig {
            net: NetConfig {
                listen: vec!["127.0.0.1:0".parse().unwrap()],
                ..NetConfig::default()
            },
            ..ServeConfig::default()
        };
        cfg.policy = "nonsense".into();
        assert!(matches!(
            run_server(&cfg),
            Err(ServeError::UnknownPolicy { .. })
        ));
        cfg.policy = "LWD".into();
        cfg.buffer = 1;
        assert!(matches!(
            run_server(&cfg),
            Err(ServeError::InvalidConfig(_))
        ));
        cfg.buffer = 256;
        cfg.model = Model::Combined;
        assert!(run_server(&cfg).is_err());
        cfg.model = Model::Work;
        cfg.net.listen.clear();
        assert!(matches!(run_server(&cfg), Err(ServeError::Io(_))));
    }

    #[test]
    fn loopback_smoke_run_reconciles_exactly() {
        let serve_cfg = ServeConfig {
            ports: 8,
            buffer: 32,
            shards: 2,
            net: NetConfig {
                listen: vec!["127.0.0.1:0".parse().unwrap()],
                fanout: Fanout::ByPort,
                expected_clients: 2,
                read_timeout: Duration::from_millis(5),
                idle_timeout: Duration::from_secs(30),
                ..NetConfig::default()
            },
            ..ServeConfig::default()
        };
        let ingress = NetIngress::bind(serve_cfg.net.clone()).unwrap();
        let addrs = ingress.local_addrs().unwrap();
        let server = thread::spawn(move || run_bound_server(&serve_cfg, ingress).unwrap());
        let gen = run_netgen(&NetGenConfig {
            targets: addrs,
            clients: 2,
            ports: 8,
            slots: 300,
            sources: 10,
            batch: 32,
            window: 8,
            ..NetGenConfig::default()
        })
        .unwrap();
        let report = server.join().unwrap();
        assert!(gen.all_completed(), "{gen}");
        assert!(gen.frames_sent() > 0);
        let c = report.counters();
        assert_eq!(
            c.arrived(),
            gen.frames_declared(),
            "every declared frame is accounted: {gen}\n{report}"
        );
        assert_eq!(c.dropped_net_decode(), 0);
        assert!(c.check_conservation(0).is_ok());
        assert_eq!(report.net_counts().frames, gen.frames_sent());
        assert!(report.to_json().contains("\"net\":{\"datagrams\":"));
    }
}
