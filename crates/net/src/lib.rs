//! # smbm-net
//!
//! The network ingress/egress plane: the live datapath served over real
//! UDP sockets instead of in-process producer threads.
//!
//! The moving parts:
//!
//! * [`codec`] — the compact little-endian wire format: versioned 8-byte
//!   datagram header, many fixed-size packet frames per datagram
//!   ([`WirePacket`] for work and value packets), a small control plane
//!   (SYNC/SYNC-ACK flow-control barriers, FIN/FIN-ACK shutdown), and a
//!   fuzz-safe [`decode`] that never panics on wire input and tallies
//!   per-frame losses exactly;
//! * [`NetIngress`] — bound UDP sockets whose receive threads decode
//!   datagrams, validate every frame against the receiving switch's
//!   admission rules, and feed the runtime's SPSC shard rings with the
//!   same backpressure/lost accounting as the in-process load generator,
//!   via [`RuntimeBuilder::add_producer_fanout`]; sockets stay bound and
//!   serving while shard supervision restarts incarnations around them;
//! * [`run_server`] — the whole server: build the sharded datapath for a
//!   model and policy, attach the ingress plane, serve until every
//!   expected client has FINed, report with exact conservation (every
//!   declared frame is admitted, dropped with a reason — including
//!   `DropReason::NetDecode` — or orphaned);
//! * [`run_netgen`] — the client fleet: per-client MMPP traces over
//!   loopback or a real NIC, stop-and-wait SYNC barriers so UDP's silent
//!   drops cannot corrupt the books, per-client send/ack tallies, and
//!   optional deliberate corruption for testing the server's decode
//!   accounting.
//!
//! [`RuntimeBuilder::add_producer_fanout`]: smbm_runtime::RuntimeBuilder::add_producer_fanout

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;

mod client;
mod serve;
mod server;

pub use client::{run_netgen, ClientReport, NetGenConfig, NetGenError, NetGenReport};
pub use codec::{decode, encode_data, encode_fin, encode_sync, Datagram, WireError, WirePacket};
pub use serve::{run_bound_server, run_server, ServeConfig, ServeError, ServeReport};
pub use server::{Fanout, NetConfig, NetIngress, RECV_BURST};
