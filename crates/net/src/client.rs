//! The `netgen` client: drives MMPP scenario traffic at a running server
//! over UDP, from another thread, process, or machine.
//!
//! Each client gets its own socket, its own deterministic trace
//! (`seed + client`), and its own thread. Reliability over a lossy
//! transport comes from stop-and-wait SYNC barriers: after every
//! [`NetGenConfig::window`] data datagrams the client sends a SYNC and
//! blocks for the matching SYNC-ACK (resending the idempotent SYNC on
//! timeout), which keeps the unacknowledged bytes in flight below the
//! kernel's receive buffer — on loopback that means *zero* silent drops,
//! and the final handshake (SYNC, then FIN/FIN-ACK) guarantees the server
//! has fully accounted every declared frame before the client reports.
//!
//! The client can also misbehave on purpose — inject frames with
//! out-of-range ports or datagrams truncated mid-frame — so tests can
//! verify the server's `NetDecode` accounting against exact sender-side
//! tallies.

use std::fmt;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::thread;
use std::time::{Duration, Instant};

use smbm_runtime::Model;
use smbm_switch::{PortId, Value, ValuePacket, Work, WorkPacket, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

use crate::codec::{decode, encode_data, encode_fin, encode_sync, Datagram, WirePacket};

/// Everything the netgen client fleet needs to know.
#[derive(Debug, Clone)]
pub struct NetGenConfig {
    /// Packet model (the server must run the same one). The combined model
    /// has no wire format and is rejected.
    pub model: Model,
    /// Server sockets; client `i` sends everything to `targets[i % len]`.
    pub targets: Vec<SocketAddr>,
    /// Concurrent clients, each with its own socket, trace, and thread.
    pub clients: usize,
    /// Ports the receiving switches are configured with; traces stay in
    /// range and the work model derives its per-port requirements from the
    /// same contiguous configuration the server uses.
    pub ports: usize,
    /// MMPP trace length per client, in slots.
    pub slots: usize,
    /// MMPP sources per client.
    pub sources: usize,
    /// Base RNG seed; client `i` uses `seed + i`.
    pub seed: u64,
    /// Largest packet value (value model).
    pub max_value: u64,
    /// Frames per data datagram.
    pub batch: usize,
    /// Data datagrams between SYNC barriers. Keep
    /// `window * batch * frame_len` below the receiver's socket buffer or
    /// the barriers lose their no-silent-drop guarantee.
    pub window: usize,
    /// How long to wait for a SYNC-ACK/FIN-ACK before resending.
    pub ack_timeout: Duration,
    /// Resends per barrier before the client gives up on the server.
    pub ack_retries: u32,
    /// Fault injection: frames with an out-of-range port sent per client
    /// (the server must count every one as a `NetDecode` drop).
    pub bad_frames: usize,
    /// Fault injection: datagrams per client declaring two frames but
    /// carrying one (the server must count one `NetDecode` drop and one
    /// truncation each).
    pub truncated_datagrams: usize,
    /// Fault injection: whole-datagram corruption — datagrams per client
    /// that are garbage at the header level (bad magic, or chopped off
    /// mid-header), alternating between the two shapes. They declare no
    /// frames, so the server must count each as exactly one decode error
    /// and zero `NetDecode` frame drops.
    pub garbage_datagrams: usize,
}

impl Default for NetGenConfig {
    fn default() -> Self {
        NetGenConfig {
            model: Model::Work,
            targets: Vec::new(),
            clients: 1,
            ports: 64,
            slots: 2_000,
            sources: 50,
            seed: 0xB0FFE2,
            max_value: 100,
            batch: 64,
            window: 32,
            ack_timeout: Duration::from_millis(200),
            ack_retries: 25,
            bad_frames: 0,
            truncated_datagrams: 0,
            garbage_datagrams: 0,
        }
    }
}

/// A rejected [`NetGenConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetGenError(String);

impl fmt::Display for NetGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid netgen config: {}", self.0)
    }
}

impl std::error::Error for NetGenError {}

/// What one client did, with sender-side exact tallies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReport {
    /// Client id (also the wire `client` field).
    pub client: u16,
    /// Server socket this client talked to.
    pub target: SocketAddr,
    /// Data datagrams put on the wire (including fault-injection ones).
    pub datagrams: u64,
    /// Well-formed frames sent: declared, present, and valid.
    pub frames: u64,
    /// Deliberately invalid frames sent (out-of-range port).
    pub bad_frames: u64,
    /// Frames declared in a header but chopped off the payload.
    pub missing_frames: u64,
    /// Header-level garbage datagrams sent (not counted in `datagrams`:
    /// they carry no valid header, so they declare nothing).
    pub garbage_datagrams: u64,
    /// SYNC datagrams sent (handshake + barriers + resends).
    pub syncs: u64,
    /// Barrier resends after an ack timeout.
    pub retries: u64,
    /// The full handshake ran: every barrier acked and the FIN
    /// acknowledged, so the server has accounted every declared frame.
    pub completed: bool,
    /// Why the client stopped early, if it did.
    pub error: Option<String>,
}

impl ClientReport {
    /// Frames this client declared across all data datagrams — the
    /// quantity the server-side reconciliation must account one by one.
    pub fn frames_declared(&self) -> u64 {
        self.frames + self.bad_frames + self.missing_frames
    }
}

/// The whole fleet's report.
#[derive(Debug, Clone)]
pub struct NetGenReport {
    /// Packet model driven.
    pub model: Model,
    /// Per-client reports, in client-id order.
    pub clients: Vec<ClientReport>,
    /// Wall time from first spawn to last join.
    pub elapsed: Duration,
}

impl NetGenReport {
    /// Well-formed frames sent, fleet-wide.
    pub fn frames_sent(&self) -> u64 {
        self.clients.iter().map(|c| c.frames).sum()
    }

    /// Deliberately invalid frames sent, fleet-wide.
    pub fn bad_frames_sent(&self) -> u64 {
        self.clients.iter().map(|c| c.bad_frames).sum()
    }

    /// Declared-but-chopped frames, fleet-wide.
    pub fn missing_frames_declared(&self) -> u64 {
        self.clients.iter().map(|c| c.missing_frames).sum()
    }

    /// Header-level garbage datagrams sent, fleet-wide.
    pub fn garbage_datagrams_sent(&self) -> u64 {
        self.clients.iter().map(|c| c.garbage_datagrams).sum()
    }

    /// Every frame declared on the wire, fleet-wide.
    pub fn frames_declared(&self) -> u64 {
        self.clients.iter().map(|c| c.frames_declared()).sum()
    }

    /// Data datagrams sent, fleet-wide.
    pub fn datagrams_sent(&self) -> u64 {
        self.clients.iter().map(|c| c.datagrams).sum()
    }

    /// Every client finished its handshake.
    pub fn all_completed(&self) -> bool {
        self.clients.iter().all(|c| c.completed)
    }

    /// Well-formed frames per second of fleet wall time.
    pub fn frames_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.frames_sent() as f64 / secs
        } else {
            0.0
        }
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut clients = String::new();
        for (i, c) in self.clients.iter().enumerate() {
            if i > 0 {
                clients.push(',');
            }
            clients.push_str(&format!(
                "{{\"client\":{},\"target\":\"{}\",\"datagrams\":{},\"frames\":{},\
                 \"bad_frames\":{},\"missing_frames\":{},\"garbage_datagrams\":{},\
                 \"syncs\":{},\"retries\":{},\"completed\":{}}}",
                c.client,
                c.target,
                c.datagrams,
                c.frames,
                c.bad_frames,
                c.missing_frames,
                c.garbage_datagrams,
                c.syncs,
                c.retries,
                c.completed,
            ));
        }
        format!(
            "{{\"model\":\"{}\",\"clients\":[{}],\"frames_declared\":{},\
             \"datagrams\":{},\"completed\":{},\"elapsed_ms\":{:.3},\
             \"frames_per_sec\":{:.0}}}",
            self.model,
            clients,
            self.frames_declared(),
            self.datagrams_sent(),
            self.all_completed(),
            self.elapsed.as_secs_f64() * 1e3,
            self.frames_per_sec(),
        )
    }
}

impl fmt::Display for NetGenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netgen {} model, {} client(s): {} frames in {} datagrams over {:.1} ms \
             ({:.0} frames/sec)",
            self.model,
            self.clients.len(),
            self.frames_sent(),
            self.datagrams_sent(),
            self.elapsed.as_secs_f64() * 1e3,
            self.frames_per_sec(),
        )?;
        for c in &self.clients {
            write!(
                f,
                "  client {} -> {}: {} frames, {} sync(s), {} retries{}",
                c.client,
                c.target,
                c.frames,
                c.syncs,
                c.retries,
                if c.completed { "" } else { " [INCOMPLETE]" },
            )?;
            match &c.error {
                Some(e) => writeln!(f, " — {e}")?,
                None => writeln!(f)?,
            }
        }
        Ok(())
    }
}

/// Runs the client fleet to completion: pregenerate every client's trace,
/// spawn the client threads, join them, and report exact sender-side
/// tallies.
///
/// A client that loses its server (acks stop coming) marks itself
/// incomplete with an error rather than failing the fleet; callers check
/// [`NetGenReport::all_completed`].
///
/// # Errors
///
/// Returns [`NetGenError`] for structurally invalid configs (no targets,
/// zero clients, the combined model...); nothing is sent in that case.
pub fn run_netgen(config: &NetGenConfig) -> Result<NetGenReport, NetGenError> {
    if config.targets.is_empty() {
        return Err(NetGenError("no targets".into()));
    }
    if config.clients == 0 || config.clients > usize::from(u16::MAX) {
        return Err(NetGenError("clients must be in 1..=65535".into()));
    }
    if config.ports == 0 {
        return Err(NetGenError("ports must be positive".into()));
    }
    if config.batch == 0 || config.batch > usize::from(u16::MAX) {
        return Err(NetGenError("batch must be in 1..=65535".into()));
    }
    if config.window == 0 {
        return Err(NetGenError("window must be positive".into()));
    }
    let invalid = |e: &dyn fmt::Display| NetGenError(e.to_string());
    match config.model {
        Model::Work => {
            let switch_cfg = WorkSwitchConfig::contiguous(config.ports as u32, config.ports)
                .map_err(|e| invalid(&e))?;
            let mut feeds = Vec::with_capacity(config.clients);
            for client in 0..config.clients {
                let trace = scenario_for(config, client)
                    .work_trace(&switch_cfg, &PortMix::Uniform)
                    .map_err(|e| invalid(&e))?;
                feeds.push(trace.batches(config.batch).collect::<Vec<_>>());
            }
            let probe = WorkPacket::new(PortId::new(0), switch_cfg.work(PortId::new(0)));
            let bad = WorkPacket::new(PortId::new(config.ports + 7), Work::new(1));
            Ok(drive(config, feeds, probe, bad))
        }
        Model::Value => {
            let value_mix = ValueMix::Uniform {
                max: config.max_value,
            };
            let mut feeds = Vec::with_capacity(config.clients);
            for client in 0..config.clients {
                let trace = scenario_for(config, client)
                    .value_trace(config.ports, &PortMix::Uniform, &value_mix)
                    .map_err(|e| invalid(&e))?;
                feeds.push(trace.batches(config.batch).collect::<Vec<_>>());
            }
            let probe = ValuePacket::new(PortId::new(0), Value::new(1));
            let bad = ValuePacket::new(PortId::new(config.ports + 7), Value::new(1));
            Ok(drive(config, feeds, probe, bad))
        }
        Model::Combined => Err(NetGenError(
            "the combined model has no wire format; use work or value".into(),
        )),
    }
}

fn scenario_for(config: &NetGenConfig, client: usize) -> MmppScenario {
    MmppScenario {
        sources: config.sources,
        slots: config.slots,
        seed: config.seed.wrapping_add(client as u64),
        ..MmppScenario::default()
    }
}

fn drive<P: WirePacket + Send + 'static>(
    config: &NetGenConfig,
    feeds: Vec<Vec<Vec<P>>>,
    probe: P,
    bad: P,
) -> NetGenReport {
    let started = Instant::now();
    let mut joins = Vec::with_capacity(feeds.len());
    for (i, batches) in feeds.into_iter().enumerate() {
        let client = i as u16;
        let target = config.targets[i % config.targets.len()];
        let cfg = config.clone();
        joins.push(
            thread::Builder::new()
                .name(format!("smbm-netgen-{i}"))
                .spawn(move || client_loop(client, target, batches, probe, bad, &cfg))
                .expect("spawn netgen client thread"),
        );
    }
    let clients = joins
        .into_iter()
        .enumerate()
        .map(|(i, j)| {
            j.join().unwrap_or_else(|_| ClientReport {
                client: i as u16,
                target: config.targets[i % config.targets.len()],
                datagrams: 0,
                frames: 0,
                bad_frames: 0,
                missing_frames: 0,
                garbage_datagrams: 0,
                syncs: 0,
                retries: 0,
                completed: false,
                error: Some("client thread panicked".into()),
            })
        })
        .collect();
    NetGenReport {
        model: config.model,
        clients,
        elapsed: started.elapsed(),
    }
}

fn client_loop<P: WirePacket>(
    client: u16,
    target: SocketAddr,
    batches: Vec<Vec<P>>,
    probe: P,
    bad: P,
    config: &NetGenConfig,
) -> ClientReport {
    let mut report = ClientReport {
        client,
        target,
        datagrams: 0,
        frames: 0,
        bad_frames: 0,
        missing_frames: 0,
        garbage_datagrams: 0,
        syncs: 0,
        retries: 0,
        completed: false,
        error: None,
    };
    let bind_addr: SocketAddr = if target.is_ipv4() {
        "0.0.0.0:0".parse().expect("literal addr")
    } else {
        "[::]:0".parse().expect("literal addr")
    };
    let socket = match UdpSocket::bind(bind_addr).and_then(|s| {
        s.connect(target)?;
        s.set_read_timeout(Some(config.ack_timeout))?;
        Ok(s)
    }) {
        Ok(s) => s,
        Err(e) => {
            report.error = Some(format!("socket setup: {e}"));
            return report;
        }
    };

    let mut seq = 0u64;
    // Initial barrier doubles as the handshake: no data flows until the
    // server answers, so a client racing a slow server bind never loses
    // datagrams into the void.
    if let Err(e) = barrier::<P>(&socket, client, seq, config, &mut report) {
        report.error = Some(e);
        return report;
    }

    // Data flows one SYNC window at a time: encode the whole window, put
    // it on the wire (one sendmmsg(2) syscall under the `mmsg` feature, a
    // send-per-datagram loop otherwise), then run the barrier. Frames are
    // tallied per datagram actually sent, so a mid-window send failure
    // still leaves the declared counts exact.
    let mut window_payloads: Vec<Vec<u8>> = Vec::with_capacity(config.window);
    let mut window_frames: Vec<u64> = Vec::with_capacity(config.window);
    let mut batches_iter = batches.iter().peekable();
    while let Some(batch) = batches_iter.next() {
        window_payloads.push(encode_data(client, batch));
        window_frames.push(batch.len() as u64);
        if window_payloads.len() >= config.window || batches_iter.peek().is_none() {
            let (sent, err) = send_window(&socket, &window_payloads);
            report.datagrams += sent as u64;
            report.frames += window_frames[..sent].iter().sum::<u64>();
            if let Some(e) = err {
                report.error = Some(format!("send failed: {e}"));
                return report;
            }
            window_payloads.clear();
            window_frames.clear();
            seq += 1;
            if let Err(e) = barrier::<P>(&socket, client, seq, config, &mut report) {
                report.error = Some(e);
                return report;
            }
        }
    }

    // Fault injection, all inside the barrier discipline so even the
    // garbage is fully accounted before the final FIN.
    if config.bad_frames > 0 {
        let frames: Vec<P> = (0..config.bad_frames).map(|_| bad).collect();
        if socket.send(&encode_data(client, &frames)).is_ok() {
            report.datagrams += 1;
            report.bad_frames += frames.len() as u64;
        }
    }
    for _ in 0..config.truncated_datagrams {
        // Declare two frames, ship one: exactly one missing frame and one
        // truncation on the server's books per datagram.
        let full = encode_data(client, &[probe, probe]);
        let cut = &full[..crate::codec::HEADER_LEN + P::FRAME_LEN];
        if socket.send(cut).is_ok() {
            report.datagrams += 1;
            report.frames += 1;
            report.missing_frames += 1;
        }
    }
    for g in 0..config.garbage_datagrams {
        // Whole-datagram corruption: a full-size header whose magic is
        // wrong, alternating with one chopped off mid-header. Neither
        // declares a frame, so the server books exactly one decode error
        // and zero NetDecode drops per datagram.
        let junk = if g % 2 == 0 {
            vec![0x5A; crate::codec::HEADER_LEN]
        } else {
            vec![0x5A; crate::codec::HEADER_LEN / 2]
        };
        if socket.send(&junk).is_ok() {
            report.garbage_datagrams += 1;
        }
    }

    // Final barrier: the server has accounted every declared frame.
    seq += 1;
    if let Err(e) = barrier::<P>(&socket, client, seq, config, &mut report) {
        report.error = Some(e);
        return report;
    }

    // FIN/FIN-ACK, retried like a barrier.
    for attempt in 0..=config.ack_retries {
        if attempt > 0 {
            report.retries += 1;
        }
        if socket.send(&encode_fin(client)).is_err() {
            break;
        }
        if await_ack::<P>(
            &socket,
            |d| matches!(d, Datagram::FinAck { client: c } if *c == client),
        ) {
            report.completed = true;
            return report;
        }
    }
    report.error = Some("no FIN-ACK from server".into());
    report
}

/// Puts one window of encoded datagrams on the wire in order, returning
/// how many were fully sent and the error that stopped the rest (if any).
///
/// With the `mmsg` feature on Linux this is a `sendmmsg(2)` loop — the
/// whole window normally leaves in one syscall, with partial-accept
/// handling; elsewhere it is one `send` per datagram on the connected
/// socket. Either way the sent count is datagram-exact, so the caller's
/// declared-frame tallies stay reconcilable even on a mid-window failure.
#[cfg(all(feature = "mmsg", target_os = "linux"))]
fn send_window(socket: &UdpSocket, payloads: &[Vec<u8>]) -> (usize, Option<io::Error>) {
    let mut sent = 0;
    while sent < payloads.len() {
        match smbm_mmsg::send_batch(socket, &payloads[sent..]) {
            Ok(n) => sent += n,
            Err(e) => return (sent, Some(e)),
        }
    }
    (sent, None)
}

#[cfg(not(all(feature = "mmsg", target_os = "linux")))]
fn send_window(socket: &UdpSocket, payloads: &[Vec<u8>]) -> (usize, Option<io::Error>) {
    for (i, payload) in payloads.iter().enumerate() {
        if let Err(e) = socket.send(payload) {
            return (i, Some(e));
        }
    }
    (payloads.len(), None)
}

/// One stop-and-wait barrier: send SYNC `seq`, block for its SYNC-ACK,
/// resend on timeout. SYNCs are idempotent so resends are always safe.
fn barrier<P: WirePacket>(
    socket: &UdpSocket,
    client: u16,
    seq: u64,
    config: &NetGenConfig,
    report: &mut ClientReport,
) -> Result<(), String> {
    for attempt in 0..=config.ack_retries {
        if attempt > 0 {
            report.retries += 1;
        }
        if socket.send(&encode_sync(client, seq)).is_err() {
            return Err(format!("client {client}: SYNC send failed"));
        }
        report.syncs += 1;
        let want = |d: &Datagram<P>| matches!(d, Datagram::SyncAck { client: c, seq: s } if *c == client && *s == seq);
        if await_ack::<P>(socket, want) {
            return Ok(());
        }
    }
    Err(format!(
        "client {client}: no SYNC-ACK for seq {seq} after {} retries",
        config.ack_retries
    ))
}

/// Drains the socket until `want` matches or the read times out. Stale
/// acks (earlier barriers' resends) are skipped, garbage is ignored.
fn await_ack<P: WirePacket>(socket: &UdpSocket, want: impl Fn(&Datagram<P>) -> bool) -> bool {
    let mut buf = [0u8; 64];
    loop {
        match socket.recv(&mut buf) {
            Ok(len) => {
                if let Ok(d) = decode::<P>(&buf[..len], |_| true) {
                    if want(&d) {
                        return true;
                    }
                }
            }
            Err(_) => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_configs_are_rejected() {
        let base = NetGenConfig {
            targets: vec!["127.0.0.1:9".parse().unwrap()],
            ..NetGenConfig::default()
        };
        assert!(run_netgen(&NetGenConfig {
            targets: vec![],
            ..base.clone()
        })
        .is_err());
        assert!(run_netgen(&NetGenConfig {
            clients: 0,
            ..base.clone()
        })
        .is_err());
        assert!(run_netgen(&NetGenConfig {
            window: 0,
            ..base.clone()
        })
        .is_err());
        let err = run_netgen(&NetGenConfig {
            model: Model::Combined,
            ..base
        })
        .unwrap_err();
        assert!(err.to_string().contains("combined"), "{err}");
    }

    #[test]
    fn client_without_a_server_reports_incomplete_not_panic() {
        // Nothing listens on the target; the handshake must time out and
        // the fleet must still produce a structured report.
        let config = NetGenConfig {
            targets: vec!["127.0.0.1:1".parse().unwrap()],
            clients: 1,
            ports: 4,
            slots: 10,
            sources: 2,
            ack_timeout: Duration::from_millis(5),
            ack_retries: 1,
            ..NetGenConfig::default()
        };
        let report = run_netgen(&config).unwrap();
        assert!(!report.all_completed());
        assert_eq!(report.clients.len(), 1);
        assert_eq!(report.clients[0].datagrams, 0, "no data before handshake");
        assert!(report.clients[0].error.is_some());
        assert!(report.to_json().contains("\"completed\":false"));
    }
}
