//! The UDP ingress plane: bound sockets whose receive loops decode wire
//! datagrams and feed the runtime's SPSC shard rings.
//!
//! Each socket becomes one *fanout producer* on the [`RuntimeBuilder`]: a
//! dedicated thread owning one [`IngressHandle`] (one ring) per shard, so
//! ring backpressure and closed-ring losses are accounted per shard with
//! exactly the semantics of the in-process load generator. Shard panics
//! never touch these threads — supervision restarts the shard incarnation
//! while the sockets stay bound and keep serving — and when the datapath
//! shuts down (or a shard's supervisor gives up and closes its rings) the
//! receive loops observe `PushError::Closed` promptly and account every
//! late packet instead of wedging.
//!
//! ## Flow control and exactness
//!
//! UDP gives no delivery guarantee, and even loopback silently drops
//! datagrams once the receive buffer overflows. The protocol therefore has
//! clients issue SYNC barriers every few datagrams (see
//! [`crate::codec`]); a barrier is acknowledged only after the receive loop
//! has pushed everything it decoded into the rings (or counted it as
//! backpressure/lost), which both bounds the unacknowledged in-flight bytes
//! below the kernel's receive buffer and makes the final tallies exact:
//! every frame a client declared is, by the time its final barrier is
//! acknowledged, admitted, dropped (with a reason), or orphaned.
//!
//! ## The batched hot path
//!
//! The receive loop is allocation- and syscall-frugal:
//!
//! * full per-shard batches are staged into *ready* queues and published
//!   with one bulk ring operation per shard per receive burst
//!   ([`IngressHandle::send_bulk`] / [`IngressHandle::try_send_bulk`]) —
//!   the lock-free ring publishes every batch the burst produced with a
//!   single release store and at most one consumer wake;
//! * batch buffers come from a small recycling pool, so a staged batch
//!   swaps in a pre-sized buffer instead of reallocating from zero
//!   capacity on every flush (lossy rejects hand their emptied buffers
//!   back to the pool);
//! * with the `mmsg` cargo feature on Linux, each wakeup drains up to
//!   [`RECV_BURST`] queued datagrams with a single `recvmmsg(2)` call
//!   (elsewhere the feature quietly falls back to the portable
//!   one-datagram `recv_from` path).

use std::collections::HashSet;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use smbm_obs::NetCounts;
use smbm_runtime::{IngressHandle, RuntimeBuilder, Service, ShardId};

use crate::codec::{decode, encode_fin_ack, encode_sync_ack, Datagram, WirePacket};

/// Datagrams drained per `recvmmsg` wakeup when the `mmsg` feature is
/// active. Sized to the client's default SYNC window: one syscall claims a
/// whole unacknowledged window.
pub const RECV_BURST: usize = 32;

/// At most this many idle batch buffers are retained for reuse; beyond it
/// the pool lets buffers drop (a bound, not a reservation).
const POOL_DEPTH: usize = 64;

/// How a socket's receive loop sprays decoded packets across the shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fanout {
    /// Shard `port % shards`: every port has a home shard, so per-port
    /// switch state is never split across shards.
    ByPort,
    /// Shard `hash(port) % shards`: a multiplicative hash decorrelates the
    /// shard assignment from low port bits (striped port configurations).
    Hash,
}

impl Fanout {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            Fanout::ByPort => "port",
            Fanout::Hash => "hash",
        }
    }

    /// Parses a lowercase label.
    pub fn parse(s: &str) -> Option<Fanout> {
        match s {
            "port" => Some(Fanout::ByPort),
            "hash" => Some(Fanout::Hash),
            _ => None,
        }
    }

    /// The shard (out of `shards`) that `port` routes to.
    pub fn route(&self, port: usize, shards: usize) -> usize {
        match self {
            Fanout::ByPort => port % shards,
            Fanout::Hash => {
                ((port as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shards
            }
        }
    }
}

/// Configuration of the network ingress plane.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Addresses to bind, one receive thread each. Port `0` binds an
    /// ephemeral port (read it back via [`NetIngress::local_addrs`]).
    pub listen: Vec<SocketAddr>,
    /// Packet-to-shard routing.
    pub fanout: Fanout,
    /// Total clients expected across all sockets. Clients pick their socket
    /// round-robin by client id (`id % sockets`, the `netgen` convention),
    /// and each receive loop exits once every client assigned to it has
    /// FINed.
    pub expected_clients: usize,
    /// Receive poll timeout; bounds how quickly a loop notices idleness.
    pub read_timeout: Duration,
    /// A receive loop that hears nothing for this long gives up — a crashed
    /// client must not wedge the server forever.
    pub idle_timeout: Duration,
    /// Push decoded batches with non-blocking sends: a full ring rejects
    /// the batch as backpressure instead of stalling the receive loop.
    pub lossy: bool,
    /// Decoded packets buffered per shard before being pushed as one ring
    /// batch.
    pub batch: usize,
    /// Receive buffer size; datagrams longer than this are truncated by
    /// the kernel and surface as truncation tallies.
    pub max_datagram: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            listen: Vec::new(),
            fanout: Fanout::ByPort,
            expected_clients: 1,
            read_timeout: Duration::from_millis(20),
            idle_timeout: Duration::from_secs(10),
            lossy: false,
            batch: 256,
            max_datagram: 64 * 1024,
        }
    }
}

/// Bound-but-not-yet-serving ingress sockets.
///
/// Binding is split from serving so callers can bind ephemeral ports,
/// read the real addresses back, hand them to clients, and only then run
/// the datapath ([`NetIngress::attach`] + [`RuntimeBuilder::run`]).
#[derive(Debug)]
pub struct NetIngress {
    sockets: Vec<UdpSocket>,
    config: NetConfig,
}

impl NetIngress {
    /// Binds every address in `config.listen`.
    ///
    /// # Errors
    ///
    /// Fails if the listen list is empty, `expected_clients` or `batch` is
    /// zero, or any bind fails — nothing is served half-bound.
    pub fn bind(config: NetConfig) -> io::Result<NetIngress> {
        if config.listen.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no listen addresses",
            ));
        }
        if config.expected_clients == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "expected_clients must be positive",
            ));
        }
        if config.batch == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "batch must be positive",
            ));
        }
        let sockets = config
            .listen
            .iter()
            .map(UdpSocket::bind)
            .collect::<io::Result<Vec<_>>>()?;
        Ok(NetIngress { sockets, config })
    }

    /// The actually-bound addresses, in listen order (resolves port `0`).
    pub fn local_addrs(&self) -> io::Result<Vec<SocketAddr>> {
        self.sockets.iter().map(|s| s.local_addr()).collect()
    }

    /// Registers one fanout producer per socket on `builder`, each feeding
    /// all of `shards`. `check` is the per-frame validation the receiving
    /// switch demands at admission (known port, matching work); frames
    /// failing it are counted as `NetDecode` drops, never offered.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or contains an id foreign to `builder`
    /// (the latter via [`RuntimeBuilder::add_producer_fanout`]).
    pub fn attach<S>(
        self,
        builder: &mut RuntimeBuilder<S>,
        shards: &[ShardId],
        check: impl Fn(&S::Packet) -> bool + Clone + Send + 'static,
    ) where
        S: Service + 'static,
        S::Packet: WirePacket,
    {
        assert!(!shards.is_empty(), "net ingress needs at least one shard");
        let sockets = self.sockets.len();
        for (k, socket) in self.sockets.into_iter().enumerate() {
            // Clients pick their socket as `id % sockets`, so socket `k`
            // waits for exactly the clients that map onto it.
            let quota = (0..self.config.expected_clients)
                .filter(|id| id % sockets == k)
                .count();
            let config = self.config.clone();
            let check = check.clone();
            builder.add_producer_fanout(shards, move |handles| {
                serve_socket(&socket, handles, &config, quota, check);
            });
        }
    }
}

/// Errors a UDP `recv_from` can surface without invalidating the socket.
///
/// On Linux, a previous `send_to` whose peer answered with an ICMP
/// port-unreachable is reported on the *next* receive as
/// `ConnectionRefused`/`ConnectionReset` — e.g. an ack sent to a client
/// that already exited. The socket itself is fine; the other clients are
/// still sending. Unreachable-network flavours and plain `Interrupted`
/// (EINTR) are equally recoverable. A loop that `break`s on these kills
/// ingress for every remaining client, so the receive loop counts them and
/// keeps serving; only unclassified errors (bad fd, ENOMEM, ...) are fatal.
fn transient_recv_error(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::HostUnreachable
            | io::ErrorKind::NetworkUnreachable
            | io::ErrorKind::Interrupted
    )
}

/// The staging area between the decoder and the rings: per-shard queues of
/// *full* batches awaiting one bulk publish, plus the recycling buffer
/// pool that batch buffers are drawn from and returned to.
struct Publisher<P> {
    ready: Vec<Vec<Vec<P>>>,
    pool: Vec<Vec<P>>,
    cap: usize,
}

impl<P: Copy> Publisher<P> {
    fn new(shards: usize, cap: usize) -> Publisher<P> {
        Publisher {
            ready: (0..shards).map(|_| Vec::new()).collect(),
            pool: Vec::new(),
            cap,
        }
    }

    /// A batch buffer with at least `cap` capacity — recycled if the pool
    /// has one, freshly sized otherwise.
    fn take_buf(&mut self) -> Vec<P> {
        self.pool
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(self.cap))
    }

    /// Returns an emptied buffer to the pool (bounded by [`POOL_DEPTH`]).
    fn recycle(&mut self, mut buf: Vec<P>) {
        if self.pool.len() < POOL_DEPTH {
            buf.clear();
            self.pool.push(buf);
        }
    }

    /// Stages every shard's pending batch — the barrier and exit flushes.
    fn stage_all(&mut self, pending: &mut [Vec<P>]) {
        for (shard, batch) in pending.iter_mut().enumerate() {
            self.stage(shard, batch);
        }
    }

    /// Moves `pending` into shard `shard`'s ready queue, swapping in a
    /// pooled buffer so the caller keeps filling at full capacity — the
    /// hot path never reallocates a batch buffer from zero.
    fn stage(&mut self, shard: usize, pending: &mut Vec<P>) {
        if pending.is_empty() {
            return;
        }
        let mut staged = self.take_buf();
        std::mem::swap(pending, &mut staged);
        debug_assert!(
            pending.capacity() >= self.cap,
            "staging must hand back a full-capacity buffer, not a fresh Vec"
        );
        self.ready[shard].push(staged);
    }

    /// Publishes every staged batch, one bulk ring operation per shard.
    /// Lossy rejects come back as emptied buffers and rejoin the pool.
    fn publish(&mut self, handles: &mut [IngressHandle<P>], lossy: bool) {
        for (shard, handle) in handles.iter_mut().enumerate() {
            if self.ready[shard].is_empty() {
                continue;
            }
            let batches = std::mem::take(&mut self.ready[shard]);
            if lossy {
                for buf in handle.try_send_bulk(batches) {
                    self.recycle(buf);
                }
            } else {
                // `false` means the ring closed (shutdown or supervisor
                // give-up); the handle counted the remainder as lost. Keep
                // serving: later sends are counted the same way and
                // clients still get their acks.
                let _ = handle.send_bulk(batches);
            }
        }
    }
}

/// The receive side of the loop: with the `mmsg` feature on Linux, one
/// `recvmmsg(2)` per wakeup drains up to [`RECV_BURST`] datagrams;
/// otherwise one `recv_from` yields one datagram. Same shape either way:
/// `fill` blocks for the first datagram (honouring the socket read
/// timeout) and returns how many arrived; `datagram(i)` reads them back.
#[cfg(all(feature = "mmsg", target_os = "linux"))]
struct DatagramSource {
    batch: smbm_mmsg::RecvBatch,
}

#[cfg(all(feature = "mmsg", target_os = "linux"))]
impl DatagramSource {
    fn new(config: &NetConfig) -> DatagramSource {
        DatagramSource {
            batch: smbm_mmsg::RecvBatch::new(RECV_BURST, config.max_datagram.max(64)),
        }
    }

    fn fill(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        self.batch.recv(socket)
    }

    fn datagram(&self, i: usize) -> (&[u8], Option<SocketAddr>) {
        self.batch.datagram(i)
    }
}

#[cfg(not(all(feature = "mmsg", target_os = "linux")))]
struct DatagramSource {
    buf: Vec<u8>,
    len: usize,
    from: Option<SocketAddr>,
}

#[cfg(not(all(feature = "mmsg", target_os = "linux")))]
impl DatagramSource {
    fn new(config: &NetConfig) -> DatagramSource {
        DatagramSource {
            buf: vec![0u8; config.max_datagram.max(64)],
            len: 0,
            from: None,
        }
    }

    fn fill(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        let (len, from) = socket.recv_from(&mut self.buf)?;
        self.len = len;
        self.from = Some(from);
        Ok(1)
    }

    fn datagram(&self, i: usize) -> (&[u8], Option<SocketAddr>) {
        debug_assert_eq!(i, 0, "portable source holds one datagram");
        (&self.buf[..self.len], self.from)
    }
}

/// One socket's receive loop. Accounting invariant on exit: every frame
/// ever declared to this socket in a well-formed data datagram has been
/// pushed into a ring, tallied as backpressure/lost by its handle, or
/// counted as a `NetDecode` drop.
fn serve_socket<P: WirePacket>(
    socket: &UdpSocket,
    handles: &mut [IngressHandle<P>],
    config: &NetConfig,
    expected_fins: usize,
    check: impl Fn(&P) -> bool,
) {
    let shards = handles.len();
    let mut pending: Vec<Vec<P>> = (0..shards)
        .map(|_| Vec::with_capacity(config.batch))
        .collect();
    let mut publisher = Publisher::new(shards, config.batch);
    // Socket-level tallies accumulate locally and flush through the first
    // handle (the socket's home shard) so hot-path datagrams cost no
    // atomics; `drops` are the NetDecode frames (bad + missing).
    let mut acc = NetCounts::default();
    let mut drops = 0u64;
    let mut fins: HashSet<u16> = HashSet::new();
    let mut recv_errors = 0u64;
    let mut last_heard = Instant::now();
    let mut source = DatagramSource::new(config);
    // A socket that cannot poll cannot serve, but the failure must not
    // vanish: surface it on the report and still run the exit flush so the
    // accounting invariant holds trivially (nothing pending, zero tallies).
    if let Err(e) = socket.set_read_timeout(Some(config.read_timeout)) {
        handles[0].record_error(format!(
            "net: set_read_timeout failed on {:?}: {e}",
            socket.local_addr()
        ));
        publisher.stage_all(&mut pending);
        publisher.publish(handles, config.lossy);
        flush_net(handles, &mut acc, &mut drops);
        return;
    }

    'serve: loop {
        let burst = match source.fill(socket) {
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if last_heard.elapsed() >= config.idle_timeout {
                    break;
                }
                continue;
            }
            Err(e) if transient_recv_error(e.kind()) => {
                // An ICMP echo of an earlier ack (peer gone), EINTR, and
                // friends: the socket is fine, other clients are still
                // sending. Count it, keep the idle clock honest, serve on.
                recv_errors += 1;
                if last_heard.elapsed() >= config.idle_timeout {
                    break;
                }
                continue;
            }
            Err(e) => {
                handles[0].record_error(format!(
                    "net: fatal receive error on {:?}: {e}",
                    socket.local_addr()
                ));
                break;
            }
        };
        last_heard = Instant::now();
        for d in 0..burst {
            let (payload, from) = source.datagram(d);
            acc.datagrams += 1;
            match decode::<P>(payload, &check) {
                Ok(Datagram::Data {
                    packets,
                    bad_frames,
                    missing,
                    truncated,
                    ..
                }) => {
                    acc.frames += packets.len() as u64;
                    acc.decode_errors += bad_frames + missing;
                    acc.truncations += u64::from(truncated);
                    drops += bad_frames + missing;
                    for p in packets {
                        let shard = config.fanout.route(p.port_index(), shards);
                        pending[shard].push(p);
                        if pending[shard].len() >= config.batch {
                            publisher.stage(shard, &mut pending[shard]);
                        }
                    }
                }
                Ok(Datagram::Sync { client, seq }) => {
                    // Barrier: everything received before this SYNC must
                    // be fully accounted before the ACK goes out.
                    publisher.stage_all(&mut pending);
                    publisher.publish(handles, config.lossy);
                    flush_net(handles, &mut acc, &mut drops);
                    if let Some(from) = from {
                        let _ = socket.send_to(&encode_sync_ack(client, seq), from);
                    }
                }
                Ok(Datagram::Fin { client }) => {
                    publisher.stage_all(&mut pending);
                    publisher.publish(handles, config.lossy);
                    flush_net(handles, &mut acc, &mut drops);
                    if let Some(from) = from {
                        let _ = socket.send_to(&encode_fin_ack(client), from);
                    }
                    fins.insert(client);
                    if fins.len() >= expected_fins {
                        // Every client on this socket has FINed after its
                        // final acknowledged barrier; anything left in the
                        // burst can only be retried barriers.
                        break 'serve;
                    }
                }
                // Acks are server-to-client; one arriving here is a
                // confused peer, counted like any other undecodable
                // datagram.
                Ok(Datagram::FinAck { .. }) | Ok(Datagram::SyncAck { .. }) | Err(_) => {
                    acc.decode_errors += 1;
                }
            }
        }
        // One bulk publish per shard covers every batch the burst filled.
        publisher.publish(handles, config.lossy);
        // Keep live telemetry fresh even between barriers.
        if acc.datagrams >= 64 {
            flush_net(handles, &mut acc, &mut drops);
        }
    }
    publisher.stage_all(&mut pending);
    publisher.publish(handles, config.lossy);
    flush_net(handles, &mut acc, &mut drops);
    if recv_errors > 0 {
        handles[0].record_error(format!(
            "net: {recv_errors} transient receive error(s) tolerated on {:?}",
            socket.local_addr()
        ));
    }
}

fn flush_net<P: Copy>(handles: &[IngressHandle<P>], acc: &mut NetCounts, drops: &mut u64) {
    if *acc != NetCounts::default() || *drops != 0 {
        handles[0].record_net(*acc, *drops);
        *acc = NetCounts::default();
        *drops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_labels_round_trip() {
        for f in [Fanout::ByPort, Fanout::Hash] {
            assert_eq!(Fanout::parse(f.label()), Some(f));
        }
        assert_eq!(Fanout::parse("bogus"), None);
    }

    #[test]
    fn by_port_routing_is_modular_and_hash_covers_all_shards() {
        assert_eq!(Fanout::ByPort.route(5, 4), 1);
        assert_eq!(Fanout::ByPort.route(4, 4), 0);
        let hit: HashSet<usize> = (0..64).map(|p| Fanout::Hash.route(p, 4)).collect();
        assert_eq!(hit.len(), 4, "hash fanout reaches every shard");
        for p in 0..64 {
            assert!(Fanout::Hash.route(p, 4) < 4);
        }
    }

    #[test]
    fn bind_rejects_degenerate_configs() {
        let err = NetIngress::bind(NetConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let cfg = NetConfig {
            listen: vec!["127.0.0.1:0".parse().unwrap()],
            expected_clients: 0,
            ..NetConfig::default()
        };
        assert!(NetIngress::bind(cfg).is_err());
    }

    #[test]
    fn bind_resolves_ephemeral_ports() {
        let cfg = NetConfig {
            listen: vec![
                "127.0.0.1:0".parse().unwrap(),
                "127.0.0.1:0".parse().unwrap(),
            ],
            ..NetConfig::default()
        };
        let ingress = NetIngress::bind(cfg).unwrap();
        let addrs = ingress.local_addrs().unwrap();
        assert_eq!(addrs.len(), 2);
        assert!(addrs.iter().all(|a| a.port() != 0));
        assert_ne!(addrs[0].port(), addrs[1].port());
    }

    #[test]
    fn icmp_echo_errors_are_transient_but_bad_fd_is_fatal() {
        for kind in [
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::HostUnreachable,
            io::ErrorKind::NetworkUnreachable,
            io::ErrorKind::Interrupted,
        ] {
            assert!(transient_recv_error(kind), "{kind:?} must not kill ingress");
        }
        for kind in [
            io::ErrorKind::InvalidInput,
            io::ErrorKind::OutOfMemory,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::NotConnected,
            io::ErrorKind::WouldBlock, // handled by the idle path, not here
        ] {
            assert!(!transient_recv_error(kind), "{kind:?} must stay fatal");
        }
    }

    // The mem::take regression: staging a full batch must hand the hot
    // path a buffer that still has full capacity (a taken Vec has zero
    // and reallocates its way back up on every single flush).
    #[test]
    fn staging_retains_batch_capacity_and_recycles_buffers() {
        let cap = 32;
        let mut publisher: Publisher<u32> = Publisher::new(2, cap);
        let mut pending: Vec<u32> = Vec::with_capacity(cap);
        for round in 0..4 {
            pending.extend(0..cap as u32);
            publisher.stage(0, &mut pending);
            assert!(pending.is_empty());
            assert!(
                pending.capacity() >= cap,
                "round {round}: capacity fell to {}",
                pending.capacity()
            );
        }
        assert_eq!(publisher.ready[0].len(), 4);
        assert!(publisher.ready[1].is_empty());
        // Rejected buffers come home and are reused before any allocation.
        let reject: Vec<u32> = Vec::with_capacity(cap * 2);
        publisher.recycle(reject);
        let reused = publisher.take_buf();
        assert!(reused.capacity() >= cap * 2, "pool must hand back reuses");
        // Staging nothing is a no-op — no empty batches reach the rings.
        publisher.stage(1, &mut pending);
        assert!(publisher.ready[1].is_empty());
    }

    #[test]
    fn pool_depth_is_bounded() {
        let mut publisher: Publisher<u32> = Publisher::new(1, 4);
        for _ in 0..(POOL_DEPTH + 10) {
            publisher.recycle(Vec::with_capacity(4));
        }
        assert_eq!(publisher.pool.len(), POOL_DEPTH);
    }
}
