//! The UDP ingress plane: bound sockets whose receive loops decode wire
//! datagrams and feed the runtime's SPSC shard rings.
//!
//! Each socket becomes one *fanout producer* on the [`RuntimeBuilder`]: a
//! dedicated thread owning one [`IngressHandle`] (one ring) per shard, so
//! ring backpressure and closed-ring losses are accounted per shard with
//! exactly the semantics of the in-process load generator. Shard panics
//! never touch these threads — supervision restarts the shard incarnation
//! while the sockets stay bound and keep serving — and when the datapath
//! shuts down (or a shard's supervisor gives up and closes its rings) the
//! receive loops observe `PushError::Closed` promptly and account every
//! late packet instead of wedging.
//!
//! ## Flow control and exactness
//!
//! UDP gives no delivery guarantee, and even loopback silently drops
//! datagrams once the receive buffer overflows. The protocol therefore has
//! clients issue SYNC barriers every few datagrams (see
//! [`crate::codec`]); a barrier is acknowledged only after the receive loop
//! has pushed everything it decoded into the rings (or counted it as
//! backpressure/lost), which both bounds the unacknowledged in-flight bytes
//! below the kernel's receive buffer and makes the final tallies exact:
//! every frame a client declared is, by the time its final barrier is
//! acknowledged, admitted, dropped (with a reason), or orphaned.

use std::collections::HashSet;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use smbm_obs::NetCounts;
use smbm_runtime::{IngressHandle, RuntimeBuilder, Service, ShardId};

use crate::codec::{decode, encode_fin_ack, encode_sync_ack, Datagram, WirePacket};

/// How a socket's receive loop sprays decoded packets across the shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fanout {
    /// Shard `port % shards`: every port has a home shard, so per-port
    /// switch state is never split across shards.
    ByPort,
    /// Shard `hash(port) % shards`: a multiplicative hash decorrelates the
    /// shard assignment from low port bits (striped port configurations).
    Hash,
}

impl Fanout {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            Fanout::ByPort => "port",
            Fanout::Hash => "hash",
        }
    }

    /// Parses a lowercase label.
    pub fn parse(s: &str) -> Option<Fanout> {
        match s {
            "port" => Some(Fanout::ByPort),
            "hash" => Some(Fanout::Hash),
            _ => None,
        }
    }

    /// The shard (out of `shards`) that `port` routes to.
    pub fn route(&self, port: usize, shards: usize) -> usize {
        match self {
            Fanout::ByPort => port % shards,
            Fanout::Hash => {
                ((port as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shards
            }
        }
    }
}

/// Configuration of the network ingress plane.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Addresses to bind, one receive thread each. Port `0` binds an
    /// ephemeral port (read it back via [`NetIngress::local_addrs`]).
    pub listen: Vec<SocketAddr>,
    /// Packet-to-shard routing.
    pub fanout: Fanout,
    /// Total clients expected across all sockets. Clients pick their socket
    /// round-robin by client id (`id % sockets`, the `netgen` convention),
    /// and each receive loop exits once every client assigned to it has
    /// FINed.
    pub expected_clients: usize,
    /// Receive poll timeout; bounds how quickly a loop notices idleness.
    pub read_timeout: Duration,
    /// A receive loop that hears nothing for this long gives up — a crashed
    /// client must not wedge the server forever.
    pub idle_timeout: Duration,
    /// Push decoded batches with non-blocking sends: a full ring rejects
    /// the batch as backpressure instead of stalling the receive loop.
    pub lossy: bool,
    /// Decoded packets buffered per shard before being pushed as one ring
    /// batch.
    pub batch: usize,
    /// Receive buffer size; datagrams longer than this are truncated by
    /// the kernel and surface as truncation tallies.
    pub max_datagram: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            listen: Vec::new(),
            fanout: Fanout::ByPort,
            expected_clients: 1,
            read_timeout: Duration::from_millis(20),
            idle_timeout: Duration::from_secs(10),
            lossy: false,
            batch: 256,
            max_datagram: 64 * 1024,
        }
    }
}

/// Bound-but-not-yet-serving ingress sockets.
///
/// Binding is split from serving so callers can bind ephemeral ports,
/// read the real addresses back, hand them to clients, and only then run
/// the datapath ([`NetIngress::attach`] + [`RuntimeBuilder::run`]).
#[derive(Debug)]
pub struct NetIngress {
    sockets: Vec<UdpSocket>,
    config: NetConfig,
}

impl NetIngress {
    /// Binds every address in `config.listen`.
    ///
    /// # Errors
    ///
    /// Fails if the listen list is empty, `expected_clients` or `batch` is
    /// zero, or any bind fails — nothing is served half-bound.
    pub fn bind(config: NetConfig) -> io::Result<NetIngress> {
        if config.listen.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no listen addresses",
            ));
        }
        if config.expected_clients == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "expected_clients must be positive",
            ));
        }
        if config.batch == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "batch must be positive",
            ));
        }
        let sockets = config
            .listen
            .iter()
            .map(UdpSocket::bind)
            .collect::<io::Result<Vec<_>>>()?;
        Ok(NetIngress { sockets, config })
    }

    /// The actually-bound addresses, in listen order (resolves port `0`).
    pub fn local_addrs(&self) -> io::Result<Vec<SocketAddr>> {
        self.sockets.iter().map(|s| s.local_addr()).collect()
    }

    /// Registers one fanout producer per socket on `builder`, each feeding
    /// all of `shards`. `check` is the per-frame validation the receiving
    /// switch demands at admission (known port, matching work); frames
    /// failing it are counted as `NetDecode` drops, never offered.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or contains an id foreign to `builder`
    /// (the latter via [`RuntimeBuilder::add_producer_fanout`]).
    pub fn attach<S>(
        self,
        builder: &mut RuntimeBuilder<S>,
        shards: &[ShardId],
        check: impl Fn(&S::Packet) -> bool + Clone + Send + 'static,
    ) where
        S: Service + 'static,
        S::Packet: WirePacket,
    {
        assert!(!shards.is_empty(), "net ingress needs at least one shard");
        let sockets = self.sockets.len();
        for (k, socket) in self.sockets.into_iter().enumerate() {
            // Clients pick their socket as `id % sockets`, so socket `k`
            // waits for exactly the clients that map onto it.
            let quota = (0..self.config.expected_clients)
                .filter(|id| id % sockets == k)
                .count();
            let config = self.config.clone();
            let check = check.clone();
            builder.add_producer_fanout(shards, move |handles| {
                serve_socket(&socket, handles, &config, quota, check);
            });
        }
    }
}

/// One socket's receive loop. Accounting invariant on exit: every frame
/// ever declared to this socket in a well-formed data datagram has been
/// pushed into a ring, tallied as backpressure/lost by its handle, or
/// counted as a `NetDecode` drop.
fn serve_socket<P: WirePacket>(
    socket: &UdpSocket,
    handles: &mut [IngressHandle<P>],
    config: &NetConfig,
    expected_fins: usize,
    check: impl Fn(&P) -> bool,
) {
    let shards = handles.len();
    let mut buf = vec![0u8; config.max_datagram.max(64)];
    let mut pending: Vec<Vec<P>> = (0..shards).map(|_| Vec::new()).collect();
    // Socket-level tallies accumulate locally and flush through the first
    // handle (the socket's home shard) so hot-path datagrams cost no
    // atomics; `drops` are the NetDecode frames (bad + missing).
    let mut acc = NetCounts::default();
    let mut drops = 0u64;
    let mut fins: HashSet<u16> = HashSet::new();
    let mut last_heard = Instant::now();
    if socket.set_read_timeout(Some(config.read_timeout)).is_err() {
        return;
    }

    loop {
        let (len, from) = match socket.recv_from(&mut buf) {
            Ok(x) => x,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if last_heard.elapsed() >= config.idle_timeout {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        last_heard = Instant::now();
        acc.datagrams += 1;
        match decode::<P>(&buf[..len], &check) {
            Ok(Datagram::Data {
                packets,
                bad_frames,
                missing,
                truncated,
                ..
            }) => {
                acc.frames += packets.len() as u64;
                acc.decode_errors += bad_frames + missing;
                acc.truncations += u64::from(truncated);
                drops += bad_frames + missing;
                for p in packets {
                    let shard = config.fanout.route(p.port_index(), shards);
                    pending[shard].push(p);
                    if pending[shard].len() >= config.batch {
                        push_batch(&mut handles[shard], &mut pending[shard], config.lossy);
                    }
                }
            }
            Ok(Datagram::Sync { client, seq }) => {
                // Barrier: everything received before this SYNC must be
                // fully accounted before the ACK goes out.
                flush_all(handles, &mut pending, config.lossy, &mut acc, &mut drops);
                let _ = socket.send_to(&encode_sync_ack(client, seq), from);
            }
            Ok(Datagram::Fin { client }) => {
                flush_all(handles, &mut pending, config.lossy, &mut acc, &mut drops);
                let _ = socket.send_to(&encode_fin_ack(client), from);
                fins.insert(client);
                if fins.len() >= expected_fins {
                    break;
                }
            }
            // Acks are server-to-client; one arriving here is a confused
            // peer, counted like any other undecodable datagram.
            Ok(Datagram::FinAck { .. }) | Ok(Datagram::SyncAck { .. }) | Err(_) => {
                acc.decode_errors += 1;
            }
        }
        // Keep live telemetry fresh even between barriers.
        if acc.datagrams >= 64 {
            flush_net(handles, &mut acc, &mut drops);
        }
    }
    flush_all(handles, &mut pending, config.lossy, &mut acc, &mut drops);
}

fn push_batch<P: Copy>(handle: &mut IngressHandle<P>, pending: &mut Vec<P>, lossy: bool) {
    if pending.is_empty() {
        return;
    }
    let batch = std::mem::take(pending);
    if lossy {
        handle.try_send(batch);
    } else {
        // `false` means the ring closed (shutdown or supervisor give-up);
        // the handle counted the batch as lost. Keep serving: later sends
        // are counted the same way and clients still get their acks.
        let _ = handle.send(batch);
    }
}

fn flush_all<P: Copy>(
    handles: &mut [IngressHandle<P>],
    pending: &mut [Vec<P>],
    lossy: bool,
    acc: &mut NetCounts,
    drops: &mut u64,
) {
    for (handle, batch) in handles.iter_mut().zip(pending.iter_mut()) {
        push_batch(handle, batch, lossy);
    }
    flush_net(handles, acc, drops);
}

fn flush_net<P: Copy>(handles: &[IngressHandle<P>], acc: &mut NetCounts, drops: &mut u64) {
    if *acc != NetCounts::default() || *drops != 0 {
        handles[0].record_net(*acc, *drops);
        *acc = NetCounts::default();
        *drops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_labels_round_trip() {
        for f in [Fanout::ByPort, Fanout::Hash] {
            assert_eq!(Fanout::parse(f.label()), Some(f));
        }
        assert_eq!(Fanout::parse("bogus"), None);
    }

    #[test]
    fn by_port_routing_is_modular_and_hash_covers_all_shards() {
        assert_eq!(Fanout::ByPort.route(5, 4), 1);
        assert_eq!(Fanout::ByPort.route(4, 4), 0);
        let hit: HashSet<usize> = (0..64).map(|p| Fanout::Hash.route(p, 4)).collect();
        assert_eq!(hit.len(), 4, "hash fanout reaches every shard");
        for p in 0..64 {
            assert!(Fanout::Hash.route(p, 4) < 4);
        }
    }

    #[test]
    fn bind_rejects_degenerate_configs() {
        let err = NetIngress::bind(NetConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let cfg = NetConfig {
            listen: vec!["127.0.0.1:0".parse().unwrap()],
            expected_clients: 0,
            ..NetConfig::default()
        };
        assert!(NetIngress::bind(cfg).is_err());
    }

    #[test]
    fn bind_resolves_ephemeral_ports() {
        let cfg = NetConfig {
            listen: vec![
                "127.0.0.1:0".parse().unwrap(),
                "127.0.0.1:0".parse().unwrap(),
            ],
            ..NetConfig::default()
        };
        let ingress = NetIngress::bind(cfg).unwrap();
        let addrs = ingress.local_addrs().unwrap();
        assert_eq!(addrs.len(), 2);
        assert!(addrs.iter().all(|a| a.port() != 0));
        assert_ne!(addrs[0].port(), addrs[1].port());
    }
}
