//! # smbm-runtime
//!
//! A live sharded datapath serving the buffer-management policies as a real
//! packet service, instead of replaying traces offline.
//!
//! The moving parts, bottom to top:
//!
//! * [`ring`](fn@ring) — bounded lock-free SPSC ingress rings (re-exported
//!   from `smbm-spsc`; this crate itself stays `#![forbid(unsafe_code)]`)
//!   carrying packet batches from producer threads into switch shards, with
//!   explicit backpressure ([`PushError::Full`]) and drain-on-close
//!   shutdown; the original Mutex ring survives as the [`mod@reference`]
//!   oracle for the differential suite;
//! * [`Clock`] — pacing for the shard loop: [`VirtualClock`] runs cycles
//!   back-to-back (deterministic tests, replay, throughput measurement),
//!   [`WallClock`] paces at a fixed cycles-per-second;
//! * [`Service`] — the model-erased bundle of switch operations a shard
//!   drives: a re-export of `smbm-datapath`'s `DatapathSystem`, with
//!   [`WorkService`], [`ValueService`] and [`CombinedService`] aliasing the
//!   datapath adapters over the corresponding runners;
//! * [`run_shard`] — the ring-fed driver: ingest, clock pacing and fault
//!   polling wrapped around `smbm-datapath`'s `SlotMachine`, which emits
//!   the flush/arrival/transmission/drain phases — literally the same code
//!   the offline engine drives, which is what makes lockstep replay
//!   counter-exact;
//! * [`FaultPlan`] — deterministic, seedable fault injection: panic a
//!   shard at a slot, stall its loop, saturate its ingress, skew a paced
//!   clock — the chaos harness behind `--faults`;
//! * [`RuntimeBuilder`] — spawns shard and producer threads, wires the
//!   rings, joins everything (panic-tolerant), and merges the reports.
//!   Every shard runs under a supervisor that catches panics, restarts the
//!   shard from its service factory within a [`SupervisionConfig`] budget
//!   (bounded exponential backoff), hands the orphaned ring backlog to the
//!   replacement, and accounts every packet so conservation holds across
//!   restarts;
//! * the telemetry plane — [`RuntimeConfig::telemetry`] attaches a
//!   lock-free stat cell + observer to every shard and runs a background
//!   sampler (JSONL / Prometheus sinks); [`RuntimeConfig::flight`] attaches
//!   a crash flight recorder whose event tail the supervisor dumps to a
//!   post-mortem file on every shard death;
//! * [`run_loadgen`] — feeds the datapath from pregenerated MMPP scenario
//!   traffic and reports throughput, the drop breakdown, and ingress
//!   latency percentiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod faults;
mod loadgen;
mod ring;
mod runtime;
mod service;
mod shard;

pub use clock::{AnyClock, Clock, VirtualClock, WallClock};
pub use faults::{Fault, FaultKind, FaultPlan, ShardFaults};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenError, LoadgenReport, Model};
pub use ring::{reference, ring, BulkPop, Consumer, Producer, PushError, TryPop};
pub use runtime::{
    FlightConfig, IngressHandle, ProducerReport, RuntimeBuilder, RuntimeConfig, RuntimeReport,
    SendOutcome, ShardId, SupervisionConfig,
};
pub use service::{CombinedService, Service, ValueService, WorkService};
pub use shard::{run_shard, Batch, IngestMode, ShardConfig, ShardReport};
