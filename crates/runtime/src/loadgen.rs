//! Load generation: feeds the live datapath from MMPP scenario traffic and
//! reports throughput, the drop breakdown, and ingress latency percentiles.
//!
//! Traces are pregenerated *before* the runtime starts, so the measured
//! window contains only datapath work — ring transfer, admission control,
//! transmission — never trace synthesis.

use std::fmt;

use smbm_core::{combined_policy_by_name, value_policy_by_name, work_policy_by_name};
use smbm_obs::{LogHistogram, TelemetryConfig};
use smbm_switch::{FlushPolicy, ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

use crate::clock::{AnyClock, VirtualClock, WallClock};
use crate::faults::FaultPlan;
use crate::runtime::{
    FlightConfig, RuntimeBuilder, RuntimeConfig, RuntimeReport, SupervisionConfig,
};
use crate::service::{CombinedService, Service, ValueService, WorkService};
use crate::shard::{IngestMode, ShardConfig};

/// Which packet model the datapath serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Heterogeneous processing (Section III): throughput objective.
    Work,
    /// Heterogeneous values (Section IV): value objective.
    Value,
    /// Combined model (extension): per-port work and per-packet value.
    Combined,
}

impl Model {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            Model::Work => "work",
            Model::Value => "value",
            Model::Combined => "combined",
        }
    }

    /// Parses a lowercase label.
    pub fn parse(s: &str) -> Option<Model> {
        match s {
            "work" => Some(Model::Work),
            "value" => Some(Model::Value),
            "combined" => Some(Model::Combined),
            _ => None,
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything the load generator needs to know.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Packet model.
    pub model: Model,
    /// Policy name, resolved through the model's registry
    /// (case-insensitive).
    pub policy: String,
    /// Output ports per shard (`n`; also the paper's `k` under the
    /// contiguous work configuration).
    pub ports: usize,
    /// Shared buffer capacity per shard (`B`).
    pub buffer: usize,
    /// Transmission speedup (`C`).
    pub speedup: u32,
    /// Number of switch shards, each fed by its own producer.
    pub shards: usize,
    /// MMPP trace length per shard, in slots.
    pub slots: usize,
    /// MMPP sources per shard.
    pub sources: usize,
    /// Base RNG seed; shard `s` uses `seed + s`.
    pub seed: u64,
    /// Packets per ingress batch.
    pub batch: usize,
    /// Ingress ring depth, in batches.
    pub ring_capacity: usize,
    /// Pace shard cycles at this rate; `None` runs unpaced (throughput
    /// measurement).
    pub pace_hz: Option<f64>,
    /// Largest packet value (value/combined models).
    pub max_value: u64,
    /// Periodic flushouts, keyed on ingested bursts.
    pub flush: Option<FlushPolicy>,
    /// Use non-blocking sends: a full ring rejects the batch as
    /// backpressure instead of stalling the producer.
    pub lossy: bool,
    /// Attach per-shard histogram metrics to the report.
    pub record_metrics: bool,
    /// Faults to inject during the run (chaos mode); empty injects nothing.
    pub faults: FaultPlan,
    /// Restarts allowed per shard before its supervisor gives up.
    pub restart_budget: u32,
    /// Run the live telemetry plane (per-shard stat cells + background
    /// sampler with optional JSONL/Prometheus sinks) alongside the datapath.
    pub telemetry: Option<TelemetryConfig>,
    /// Attach crash flight recorders and write post-mortem dumps here on
    /// shard deaths.
    pub flight: Option<FlightConfig>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            model: Model::Work,
            policy: "LWD".to_owned(),
            ports: 64,
            buffer: 256,
            speedup: 1,
            shards: 1,
            slots: 20_000,
            sources: 100,
            seed: 0xB0FFE2,
            batch: 256,
            ring_capacity: 64,
            pace_hz: None,
            max_value: 100,
            flush: None,
            lossy: false,
            record_metrics: false,
            faults: FaultPlan::none(),
            restart_budget: 3,
            telemetry: None,
            flight: None,
        }
    }
}

/// A rejected [`LoadgenConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadgenError {
    /// The policy name is not in the model's registry.
    UnknownPolicy {
        /// The model whose registry was consulted.
        model: Model,
        /// The offending name.
        policy: String,
    },
    /// A structural parameter was invalid (ports, buffer, MMPP settings...).
    InvalidConfig(String),
}

impl fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadgenError::UnknownPolicy { model, policy } => {
                write!(f, "unknown {model}-model policy {policy:?}")
            }
            LoadgenError::InvalidConfig(msg) => write!(f, "invalid loadgen config: {msg}"),
        }
    }
}

impl std::error::Error for LoadgenError {}

/// What a loadgen run produced.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// The model served.
    pub model: Model,
    /// Canonical policy name (registry casing).
    pub policy: String,
    /// Packets pregenerated across all shards' traces.
    pub generated_packets: u64,
    /// The underlying datapath report.
    pub runtime: RuntimeReport,
}

impl LoadgenReport {
    /// Datapath-wide counters (see [`RuntimeReport::counters`]).
    pub fn counters(&self) -> smbm_switch::Counters {
        self.runtime.counters()
    }

    /// Sum of every shard's objective.
    pub fn score(&self) -> u64 {
        self.runtime.score()
    }

    /// Packets through admission control per second of wall time.
    pub fn processed_per_sec(&self) -> f64 {
        self.runtime.processed_per_sec()
    }

    /// All shards' ingress-latency histograms merged (nanoseconds a batch
    /// waited in its ring).
    pub fn ingress_latency_ns(&self) -> LogHistogram {
        let mut merged = LogHistogram::new();
        for shard in &self.runtime.shards {
            merged.merge(&shard.ingress_latency_ns);
        }
        merged
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        let c = self.counters();
        let lat = self.ingress_latency_ns();
        let telemetry_samples = self
            .runtime
            .telemetry
            .as_ref()
            .map_or(0, |t| t.samples.len());
        format!(
            "{{\"model\":\"{}\",\"policy\":\"{}\",\"shards\":{},\"generated\":{},\
             \"arrived\":{},\"admitted\":{},\"transmitted\":{},\"score\":{},\
             \"drops\":{{\"switch\":{},\"backpressure\":{},\"shard_failure\":{}}},\
             \"lost\":{},\"restarts\":{},\"orphans\":{},\"gave_up\":{},\
             \"telemetry_samples\":{},\"flight_dumps\":{},\
             \"elapsed_ms\":{:.3},\"packets_per_sec\":{:.0},\
             \"ingress_latency_ns\":{}}}",
            self.model,
            self.policy,
            self.runtime.shards.len(),
            self.generated_packets,
            c.arrived(),
            c.admitted(),
            c.transmitted(),
            self.score(),
            c.dropped_at_switch(),
            c.dropped_backpressure(),
            c.dropped_shard_failure(),
            self.runtime.lost_packets(),
            self.runtime.restarts(),
            self.runtime.orphaned_packets(),
            self.runtime.shards_gave_up(),
            telemetry_samples,
            self.runtime.flight_dumps(),
            self.runtime.elapsed.as_secs_f64() * 1e3,
            self.processed_per_sec(),
            lat.to_json(),
        )
    }
}

impl fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.counters();
        let lat = self.ingress_latency_ns();
        writeln!(
            f,
            "loadgen {} model, policy {}, {} shard(s): {} packets in {:.1} ms \
             ({:.0} packets/sec)",
            self.model,
            self.policy,
            self.runtime.shards.len(),
            c.arrived(),
            self.runtime.elapsed.as_secs_f64() * 1e3,
            self.processed_per_sec(),
        )?;
        writeln!(
            f,
            "  admitted {} | dropped at switch {} | backpressure {} | score {}",
            c.admitted(),
            c.dropped_at_switch(),
            c.dropped_backpressure(),
            self.score(),
        )?;
        if self.runtime.shard_panics > 0 {
            writeln!(
                f,
                "  supervision: {} panic(s), {} restart(s), {} orphaned packet(s), \
                 {} shard-failure drop(s), {} shard(s) abandoned",
                self.runtime.shard_panics,
                self.runtime.restarts(),
                self.runtime.orphaned_packets(),
                c.dropped_shard_failure(),
                self.runtime.shards_gave_up(),
            )?;
            for shard in self
                .runtime
                .shards
                .iter()
                .filter(|s| s.restarts > 0 || s.gave_up)
            {
                writeln!(
                    f,
                    "    shard {}: {} restart(s), {} orphaned packet(s){}",
                    shard.shard,
                    shard.restarts,
                    shard.orphaned_packets,
                    if shard.gave_up { ", gave up" } else { "" },
                )?;
            }
        }
        if let Some(t) = &self.runtime.telemetry {
            writeln!(
                f,
                "  telemetry: {} sample(s) retained over {} tick(s)",
                t.samples.len(),
                t.ticks,
            )?;
        }
        if self.runtime.flight_dumps() > 0 {
            writeln!(
                f,
                "  flight recorder: {} post-mortem dump(s)",
                self.runtime.flight_dumps(),
            )?;
        }
        for err in &self.runtime.obs_errors {
            writeln!(f, "  observability error: {err}")?;
        }
        write!(
            f,
            "  ingress latency p50 {} ns, p99 {} ns, max {} ns",
            lat.p50(),
            lat.p99(),
            lat.max(),
        )
    }
}

fn validate(config: &LoadgenConfig) -> Result<(), LoadgenError> {
    if config.ports == 0 {
        return Err(LoadgenError::InvalidConfig("ports must be positive".into()));
    }
    if config.buffer < config.ports {
        return Err(LoadgenError::InvalidConfig(format!(
            "buffer {} smaller than ports {}",
            config.buffer, config.ports
        )));
    }
    if config.shards == 0 {
        return Err(LoadgenError::InvalidConfig(
            "at least one shard required".into(),
        ));
    }
    if config.batch == 0 {
        return Err(LoadgenError::InvalidConfig("batch must be positive".into()));
    }
    if config.speedup == 0 {
        return Err(LoadgenError::InvalidConfig(
            "speedup must be positive".into(),
        ));
    }
    if let Some(hz) = config.pace_hz {
        if !(hz.is_finite() && hz > 0.0) {
            return Err(LoadgenError::InvalidConfig(
                "pace rate must be positive".into(),
            ));
        }
    }
    Ok(())
}

fn scenario_for(config: &LoadgenConfig, shard: usize) -> MmppScenario {
    MmppScenario {
        sources: config.sources,
        slots: config.slots,
        seed: config.seed.wrapping_add(shard as u64),
        ..MmppScenario::default()
    }
}

/// Builds the datapath from per-shard service factories and pregenerated
/// batch feeds, runs it, and wraps the report.
fn drive<S: Service + 'static>(
    config: &LoadgenConfig,
    policy: String,
    factories: Vec<Box<dyn Fn() -> S + Send>>,
    feeds: Vec<Vec<Vec<S::Packet>>>,
) -> LoadgenReport {
    let generated_packets: u64 = feeds.iter().flatten().map(|batch| batch.len() as u64).sum();
    let mut builder = RuntimeBuilder::new(RuntimeConfig {
        ring_capacity: config.ring_capacity,
        shard: ShardConfig {
            mode: IngestMode::Freerun,
            flush: config.flush,
            drain_at_end: true,
        },
        record_metrics: config.record_metrics,
        faults: config.faults.clone(),
        supervision: SupervisionConfig {
            restart_budget: config.restart_budget,
            ..SupervisionConfig::default()
        },
        telemetry: config.telemetry.clone(),
        flight: config.flight.clone(),
    });
    let lossy = config.lossy;
    for (factory, batches) in factories.into_iter().zip(feeds) {
        let id = builder.add_shard(factory);
        builder.add_producer(id, move |handle| {
            for batch in batches {
                if lossy {
                    handle.try_send(batch);
                } else if !handle.send(batch) {
                    break;
                }
            }
        });
    }
    let pace_hz = config.pace_hz;
    let runtime = builder.run(|_| match pace_hz {
        Some(hz) => AnyClock::Wall(WallClock::from_hz(hz)),
        None => AnyClock::Virtual(VirtualClock::new()),
    });
    LoadgenReport {
        model: config.model,
        policy,
        generated_packets,
        runtime,
    }
}

/// Runs one load-generation experiment: per shard, pregenerate an MMPP
/// trace, then feed it through the live datapath and measure.
///
/// # Errors
///
/// Returns [`LoadgenError`] for an unknown policy or invalid parameters;
/// nothing is spawned in that case.
pub fn run_loadgen(config: &LoadgenConfig) -> Result<LoadgenReport, LoadgenError> {
    validate(config)?;
    let invalid = |e: &dyn fmt::Display| LoadgenError::InvalidConfig(e.to_string());
    match config.model {
        Model::Work => {
            let canonical = work_policy_by_name(&config.policy)
                .ok_or_else(|| LoadgenError::UnknownPolicy {
                    model: config.model,
                    policy: config.policy.clone(),
                })?
                .name()
                .to_owned();
            let switch_cfg = WorkSwitchConfig::contiguous(config.ports as u32, config.buffer)
                .map_err(|e| invalid(&e))?;
            let mut factories: Vec<Box<dyn Fn() -> _ + Send>> = Vec::new();
            let mut feeds = Vec::new();
            for shard in 0..config.shards {
                let trace = scenario_for(config, shard)
                    .work_trace(&switch_cfg, &PortMix::Uniform)
                    .map_err(|e| invalid(&e))?;
                feeds.push(trace.batches(config.batch).collect::<Vec<_>>());
                let cfg = switch_cfg.clone();
                let name = canonical.clone();
                let speedup = config.speedup;
                factories.push(Box::new(move || {
                    let policy = work_policy_by_name(&name).expect("validated above");
                    WorkService::new(smbm_core::WorkRunner::new(cfg.clone(), policy, speedup))
                }));
            }
            Ok(drive(config, canonical, factories, feeds))
        }
        Model::Value => {
            let canonical = value_policy_by_name(&config.policy)
                .ok_or_else(|| LoadgenError::UnknownPolicy {
                    model: config.model,
                    policy: config.policy.clone(),
                })?
                .name()
                .to_owned();
            let switch_cfg =
                ValueSwitchConfig::new(config.buffer, config.ports).map_err(|e| invalid(&e))?;
            let value_mix = ValueMix::Uniform {
                max: config.max_value,
            };
            let mut factories: Vec<Box<dyn Fn() -> _ + Send>> = Vec::new();
            let mut feeds = Vec::new();
            for shard in 0..config.shards {
                let trace = scenario_for(config, shard)
                    .value_trace(config.ports, &PortMix::Uniform, &value_mix)
                    .map_err(|e| invalid(&e))?;
                feeds.push(trace.batches(config.batch).collect::<Vec<_>>());
                let name = canonical.clone();
                let speedup = config.speedup;
                factories.push(Box::new(move || {
                    let policy = value_policy_by_name(&name).expect("validated above");
                    ValueService::new(smbm_core::ValueRunner::new(switch_cfg, policy, speedup))
                }));
            }
            Ok(drive(config, canonical, factories, feeds))
        }
        Model::Combined => {
            let canonical = combined_policy_by_name(&config.policy)
                .ok_or_else(|| LoadgenError::UnknownPolicy {
                    model: config.model,
                    policy: config.policy.clone(),
                })?
                .name()
                .to_owned();
            let switch_cfg = WorkSwitchConfig::contiguous(config.ports as u32, config.buffer)
                .map_err(|e| invalid(&e))?;
            let value_mix = ValueMix::Uniform {
                max: config.max_value,
            };
            let mut factories: Vec<Box<dyn Fn() -> _ + Send>> = Vec::new();
            let mut feeds = Vec::new();
            for shard in 0..config.shards {
                let trace = scenario_for(config, shard)
                    .combined_trace(&switch_cfg, &PortMix::Uniform, &value_mix)
                    .map_err(|e| invalid(&e))?;
                feeds.push(trace.batches(config.batch).collect::<Vec<_>>());
                let cfg = switch_cfg.clone();
                let name = canonical.clone();
                let speedup = config.speedup;
                factories.push(Box::new(move || {
                    let policy = combined_policy_by_name(&name).expect("validated above");
                    CombinedService::new(smbm_core::CombinedRunner::new(
                        cfg.clone(),
                        policy,
                        speedup,
                    ))
                }));
            }
            Ok(drive(config, canonical, factories, feeds))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(model: Model, policy: &str) -> LoadgenConfig {
        LoadgenConfig {
            model,
            policy: policy.to_owned(),
            ports: 4,
            buffer: 16,
            slots: 200,
            sources: 10,
            batch: 16,
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn work_loadgen_conserves_packets() {
        let report = run_loadgen(&small(Model::Work, "lwd")).unwrap();
        assert_eq!(report.policy, "LWD");
        let c = report.counters();
        assert!(c.arrived() > 0);
        assert_eq!(c.arrived(), report.generated_packets, "lossless mode");
        assert!(c.check_conservation(0).is_ok());
        assert_eq!(report.runtime.shard_panics, 0);
    }

    #[test]
    fn value_loadgen_scores_value() {
        let report = run_loadgen(&small(Model::Value, "mrd")).unwrap();
        assert!(report.score() > 0);
        assert!(report.counters().check_conservation(0).is_ok());
    }

    #[test]
    fn combined_loadgen_runs() {
        let report = run_loadgen(&small(Model::Combined, "wvd")).unwrap();
        assert!(report.score() > 0);
    }

    #[test]
    fn sharded_loadgen_partitions_traffic() {
        let mut cfg = small(Model::Work, "lwd");
        cfg.shards = 2;
        let report = run_loadgen(&cfg).unwrap();
        assert_eq!(report.runtime.shards.len(), 2);
        assert_eq!(report.counters().arrived(), report.generated_packets);
        // Different per-shard seeds: the shards should not see identical
        // traffic.
        let a = &report.runtime.shards[0];
        let b = &report.runtime.shards[1];
        assert_ne!(
            (a.counters.arrived(), a.score),
            (b.counters.arrived(), b.score)
        );
    }

    #[test]
    fn unknown_policy_is_rejected_upfront() {
        let err = run_loadgen(&small(Model::Work, "mrd")).unwrap_err();
        assert!(matches!(err, LoadgenError::UnknownPolicy { .. }));
        assert!(err.to_string().contains("mrd"));
    }

    #[test]
    fn invalid_shape_is_rejected() {
        let mut cfg = small(Model::Work, "lwd");
        cfg.buffer = 1;
        assert!(matches!(
            run_loadgen(&cfg),
            Err(LoadgenError::InvalidConfig(_))
        ));
    }

    #[test]
    fn loadgen_passes_telemetry_through_to_the_runtime() {
        let mut cfg = small(Model::Work, "lwd");
        cfg.telemetry = Some(TelemetryConfig {
            interval: std::time::Duration::from_secs(3600),
            ..TelemetryConfig::default()
        });
        let report = run_loadgen(&cfg).unwrap();
        assert!(report.runtime.obs_errors.is_empty());
        let t = report.runtime.telemetry.as_ref().expect("telemetry ran");
        let last = t.last().expect("final sample");
        assert_eq!(last.total.arrived, report.counters().arrived());
        let json = report.to_json();
        assert!(json.contains("\"telemetry_samples\":"), "{json}");
        assert!(json.contains("\"flight_dumps\":0"), "{json}");
        assert!(report.to_string().contains("telemetry:"));
    }

    #[test]
    fn report_json_has_throughput_fields() {
        let report = run_loadgen(&small(Model::Work, "lwd")).unwrap();
        let json = report.to_json();
        for key in [
            "\"model\":\"work\"",
            "\"policy\":\"LWD\"",
            "\"packets_per_sec\"",
            "\"backpressure\"",
            "\"ingress_latency_ns\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!report.to_string().is_empty());
    }
}
