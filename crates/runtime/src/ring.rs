//! Bounded SPSC ingress rings.
//!
//! One producer thread feeds one shard through each ring; items move at
//! *batch* granularity. The live implementation is `smbm-spsc`'s lock-free
//! ring (cache-padded atomic indices, bulk publishes with a single release
//! store, spin-then-park blocking) re-exported verbatim — this crate stays
//! `#![forbid(unsafe_code)]`; all of the ring's `unsafe` lives in that one
//! crate, under Miri in CI.
//!
//! Either endpoint closes the ring when dropped. A closed producer lets the
//! consumer drain everything already queued before seeing end-of-stream —
//! this is the shutdown path, and it also makes producer *panics* safe: the
//! unwinding thread drops its [`Producer`], the shard drains the remaining
//! batches, and joins normally. (Shard-side panic survival works the other
//! way around: the supervisor *owns* the consumers and incarnations only
//! borrow them, so an unwinding incarnation never drops — and thus never
//! closes — the rings; see `runtime::supervise_shard`.)
//!
//! The previous `Mutex`+`Condvar` implementation lives on as
//! [`mod@reference`]: same contract, trivially-auditable internals. The
//! differential suite in `tests/ring_suite.rs` runs both implementations
//! through one generic test body plus randomized op sequences, pinning the
//! lock-free ring's observable behavior to the oracle's.

pub use smbm_spsc::{ring, BulkPop, Consumer, Producer, PushError, TryPop};

/// The original `Mutex`+`Condvar` ring, kept as the behavioral oracle for
/// the lock-free implementation.
///
/// Same observable contract as the re-exported lock-free ring — per-item
/// [`PushError::Full`]/[`PushError::Closed`] outcomes (with `Closed`
/// winning when a ring is both), drain-on-close, prompt close observation
/// mid-blocking-push, identical bulk split points — expressed with a
/// single lock and two condvars so the implementation is trivially
/// auditable. Not used on any live path; the differential suite drives it
/// and the lock-free ring through the same operation sequences and demands
/// identical outcomes, and the bench suite keeps it around to measure what
/// removing the lock bought.
pub mod reference {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    pub use smbm_spsc::{BulkPop, PushError, TryPop};

    struct State<T> {
        queue: VecDeque<T>,
        producer_closed: bool,
        consumer_closed: bool,
    }

    struct Shared<T> {
        capacity: usize,
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        /// Locks the state, tolerating poison: a panic elsewhere must not
        /// wedge the shutdown path (counter state is plain data, always
        /// consistent).
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// The sending half of a ring, held by exactly one producer thread.
    pub struct Producer<T>(Arc<Shared<T>>);

    /// The receiving half of a ring, held by exactly one consumer thread.
    /// Dropping it closes the ring.
    pub struct Consumer<T>(Arc<Shared<T>>);

    /// Creates a bounded ring holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
        assert!(capacity > 0, "ring capacity must be positive");
        let shared = Arc::new(Shared {
            capacity,
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity),
                producer_closed: false,
                consumer_closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Producer(shared.clone()), Consumer(shared))
    }

    impl<T> Producer<T> {
        /// Enqueues `item`, blocking while the ring is full. See the
        /// lock-free [`smbm_spsc::Producer::push`] for the contract.
        ///
        /// # Errors
        ///
        /// Returns [`PushError::Closed`] (with the item) once the consumer
        /// is gone; never returns [`PushError::Full`].
        pub fn push(&self, item: T) -> Result<(), PushError<T>> {
            let mut st = self.0.lock();
            loop {
                if st.consumer_closed {
                    return Err(PushError::Closed(item));
                }
                if st.queue.len() < self.0.capacity {
                    st.queue.push_back(item);
                    drop(st);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self.0.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Enqueues `item` without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`PushError::Full`] at capacity or [`PushError::Closed`]
        /// once the consumer is gone (`Closed` wins when both hold).
        pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
            let mut st = self.0.lock();
            if st.consumer_closed {
                return Err(PushError::Closed(item));
            }
            if st.queue.len() >= self.0.capacity {
                return Err(PushError::Full(item));
            }
            st.queue.push_back(item);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Enqueues every item of `items` in order, blocking whenever the
        /// ring is full; each run that fits is published under one lock
        /// round-trip.
        ///
        /// # Errors
        ///
        /// Returns [`PushError::Closed`] with the unpushed remainder once
        /// the consumer is gone; never returns [`PushError::Full`].
        pub fn push_bulk(&self, items: Vec<T>) -> Result<(), PushError<Vec<T>>> {
            let mut iter = items.into_iter();
            // `pending` always holds the next unpushed item, so a full ring
            // with an exhausted iterator returns instead of blocking.
            let mut pending = iter.next();
            if pending.is_none() {
                return Ok(());
            }
            let mut st = self.0.lock();
            loop {
                if st.consumer_closed {
                    drop(st);
                    let mut rest: Vec<T> = pending.into_iter().collect();
                    rest.extend(iter);
                    return Err(PushError::Closed(rest));
                }
                let mut pushed = false;
                while st.queue.len() < self.0.capacity {
                    let Some(item) = pending.take() else { break };
                    st.queue.push_back(item);
                    pushed = true;
                    pending = iter.next();
                }
                if pending.is_none() {
                    drop(st);
                    if pushed {
                        self.0.not_empty.notify_one();
                    }
                    return Ok(());
                }
                if pushed {
                    self.0.not_empty.notify_one();
                }
                st = self.0.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Enqueues as many leading items of `items` as fit, without
        /// blocking, in one lock round-trip.
        ///
        /// # Errors
        ///
        /// Returns [`PushError::Full`] with the items that did not fit, or
        /// [`PushError::Closed`] with every unpushed item once the consumer
        /// is gone (`Closed` wins when both hold).
        pub fn try_push_bulk(&self, items: Vec<T>) -> Result<(), PushError<Vec<T>>> {
            if items.is_empty() {
                return Ok(());
            }
            let mut iter = items.into_iter();
            let mut st = self.0.lock();
            if st.consumer_closed {
                drop(st);
                return Err(PushError::Closed(iter.collect()));
            }
            let mut pushed = false;
            while st.queue.len() < self.0.capacity {
                let Some(item) = iter.next() else { break };
                st.queue.push_back(item);
                pushed = true;
            }
            drop(st);
            if pushed {
                self.0.not_empty.notify_one();
            }
            let rest: Vec<T> = iter.collect();
            if rest.is_empty() {
                Ok(())
            } else {
                Err(PushError::Full(rest))
            }
        }

        /// Marks the stream finished. Queued items stay poppable;
        /// afterwards the consumer sees end-of-stream. Also on drop.
        pub fn close(&self) {
            let mut st = self.0.lock();
            st.producer_closed = true;
            drop(st);
            self.0.not_empty.notify_all();
            self.0.not_full.notify_all();
        }
    }

    impl<T> Drop for Producer<T> {
        fn drop(&mut self) {
            self.close();
        }
    }

    impl<T> Consumer<T> {
        /// Dequeues the oldest item, blocking while the ring is empty.
        /// Returns `None` only when empty *and* the producer is gone.
        pub fn pop(&self) -> Option<T> {
            let mut st = self.0.lock();
            loop {
                if let Some(item) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Some(item);
                }
                if st.producer_closed {
                    return None;
                }
                st = self.0.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues the oldest item without blocking.
        pub fn try_pop(&self) -> TryPop<T> {
            let mut st = self.0.lock();
            if let Some(item) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return TryPop::Item(item);
            }
            if st.producer_closed {
                TryPop::Closed
            } else {
                TryPop::Empty
            }
        }

        /// Dequeues up to `max` items into `out` (appending, oldest first)
        /// without blocking, in one lock round-trip. End of stream is
        /// `popped == 0 && closed`.
        pub fn pop_bulk(&self, out: &mut Vec<T>, max: usize) -> BulkPop {
            let mut st = self.0.lock();
            let take = st.queue.len().min(max);
            out.reserve(take);
            for _ in 0..take {
                // `take` is bounded by the queue length read under this
                // same lock, so the pops cannot miss.
                if let Some(item) = st.queue.pop_front() {
                    out.push(item);
                }
            }
            let closed = st.producer_closed;
            drop(st);
            if take > 0 {
                self.0.not_full.notify_one();
            }
            BulkPop {
                popped: take,
                closed,
            }
        }

        /// Items currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// True when nothing is queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Visits every queued item without dequeuing, oldest first.
        pub fn peek<F: FnMut(&T)>(&self, mut f: F) {
            let st = self.0.lock();
            for item in st.queue.iter() {
                f(item);
            }
        }

        /// Blocks until the ring is non-empty, the producer has closed, or
        /// `timeout` (when given) elapses. Returns `true` when there is
        /// something to observe (data or end-of-stream), `false` on
        /// timeout.
        pub fn wait_nonempty(&self, timeout: Option<Duration>) -> bool {
            let deadline = timeout.map(|t| Instant::now() + t);
            let mut st = self.0.lock();
            loop {
                if !st.queue.is_empty() || st.producer_closed {
                    return true;
                }
                match deadline {
                    None => {
                        st = self.0.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return false;
                        }
                        st = self
                            .0
                            .not_empty
                            .wait_timeout(st, d - now)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                }
            }
        }

        /// Abandons the stream: subsequent pushes fail with
        /// [`PushError::Closed`]. Also on drop.
        pub fn close(&self) {
            let mut st = self.0.lock();
            st.consumer_closed = true;
            drop(st);
            self.0.not_empty.notify_all();
            self.0.not_full.notify_all();
        }
    }

    impl<T> Drop for Consumer<T> {
        fn drop(&mut self) {
            self.close();
        }
    }
}
