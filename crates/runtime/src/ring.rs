//! Bounded SPSC ingress rings.
//!
//! One producer thread feeds one shard through each ring; items move at
//! *batch* granularity, so the `Mutex`-and-`Condvar` implementation (kept
//! safe — the workspace forbids `unsafe`) costs one lock round-trip per
//! batch of packets, not per packet.
//!
//! Either endpoint closes the ring when dropped. A closed producer lets the
//! consumer drain everything already queued before seeing end-of-stream —
//! this is the shutdown path, and it also makes producer *panics* safe: the
//! unwinding thread drops its [`Producer`], the shard drains the remaining
//! batches, and joins normally.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

struct State<T> {
    queue: VecDeque<T>,
    producer_closed: bool,
    consumer_closed: bool,
}

struct Shared<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    /// Locks the state, tolerating poison: a panic elsewhere must not wedge
    /// the shutdown path (counter state is plain data, always consistent).
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sending half of a ring, held by exactly one producer thread.
pub struct Producer<T>(Arc<Shared<T>>);

/// The receiving half of a ring, held by exactly one shard thread.
///
/// By default dropping the consumer closes the ring (legacy shutdown
/// semantics). A supervised shard instead holds *persistent* consumers
/// (`Consumer::persistent`) whose drop leaves the ring open, so the
/// backlog survives the incarnation's panic and a replacement shard — fed
/// a `Consumer::shadow` of the same ring — can drain it.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    close_on_drop: bool,
}

/// A push that did not enqueue, returning the item to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is at capacity ([`Producer::try_push`] only).
    Full(T),
    /// The consumer is gone; the item can never be delivered.
    Closed(T),
}

/// Outcome of a non-blocking pop.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPop<T> {
    /// The oldest queued item.
    Item(T),
    /// Nothing queued right now, but the producer is still alive.
    Empty,
    /// Nothing queued and the producer is gone: end of stream.
    Closed,
}

/// Outcome of a [`Consumer::pop_bulk`]: how many items were claimed in the
/// one lock round-trip, and whether the producer has closed. End of stream
/// is `popped == 0 && closed` — a closed producer's backlog still drains
/// first, exactly as with the scalar [`Consumer::try_pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkPop {
    /// Items appended to the caller's buffer, oldest first.
    pub popped: usize,
    /// The producer is gone; nothing further will ever be queued.
    pub closed: bool,
}

/// Creates a bounded ring holding at most `capacity` items.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let shared = Arc::new(Shared {
        capacity,
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            producer_closed: false,
            consumer_closed: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Producer(shared.clone()),
        Consumer {
            shared,
            close_on_drop: true,
        },
    )
}

impl<T> Producer<T> {
    /// Enqueues `item`, blocking while the ring is full.
    ///
    /// A consumer closing mid-wait is observed *promptly*: the closed flag
    /// is re-checked first on every wakeup and [`Consumer::close`] notifies
    /// the `not_full` condvar, so a blocked producer returns
    /// [`PushError::Closed`] on the close notification itself rather than
    /// after riding out some timeout or backoff sleep. Network ingress
    /// threads rely on this to shut down as soon as their shard's rings
    /// close (see the `blocked_push_observes_close_promptly` regression
    /// test).
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] (with the item) once the consumer is
    /// gone; never returns [`PushError::Full`].
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.0.lock();
        loop {
            if st.consumer_closed {
                return Err(PushError::Closed(item));
            }
            if st.queue.len() < self.0.capacity {
                st.queue.push_back(item);
                drop(st);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            st = self.0.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] when the ring is at capacity (this is the
    /// backpressure signal) or [`PushError::Closed`] once the consumer is
    /// gone, handing the item back either way.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.0.lock();
        if st.consumer_closed {
            return Err(PushError::Closed(item));
        }
        if st.queue.len() >= self.0.capacity {
            return Err(PushError::Full(item));
        }
        st.queue.push_back(item);
        drop(st);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues every item of `items` in order, blocking whenever the ring
    /// is full. The whole slice that fits the current free window is
    /// published under a *single* lock round-trip and a single consumer
    /// notification — this is the bulk counterpart of [`Producer::push`],
    /// with identical per-item semantics: items already enqueued when the
    /// consumer closes stay queued (the shard drains or accounts them), and
    /// the unpushed remainder is handed back.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] with the items that did *not* enter
    /// the ring once the consumer is gone; never returns
    /// [`PushError::Full`].
    pub fn push_bulk(&self, items: Vec<T>) -> Result<(), PushError<Vec<T>>> {
        let mut iter = items.into_iter();
        // `pending` always holds the next unpushed item, so a full ring
        // with an exhausted iterator returns instead of blocking forever.
        let mut pending = iter.next();
        if pending.is_none() {
            return Ok(());
        }
        let mut st = self.0.lock();
        loop {
            if st.consumer_closed {
                drop(st);
                let mut rest: Vec<T> = pending.into_iter().collect();
                rest.extend(iter);
                return Err(PushError::Closed(rest));
            }
            let mut pushed = false;
            while st.queue.len() < self.0.capacity {
                let Some(item) = pending.take() else { break };
                st.queue.push_back(item);
                pushed = true;
                pending = iter.next();
            }
            if pending.is_none() {
                drop(st);
                if pushed {
                    self.0.not_empty.notify_one();
                }
                return Ok(());
            }
            if pushed {
                self.0.not_empty.notify_one();
            }
            st = self.0.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Enqueues as many leading items of `items` as fit, without blocking,
    /// in one lock round-trip. Per-item semantics match a [`Producer::try_push`]
    /// loop exactly: the first `k` items enter a ring with `k` free slots
    /// and the rest come back as [`PushError::Full`].
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] with the items that did not fit, or
    /// [`PushError::Closed`] with every unpushed item once the consumer is
    /// gone ([`PushError::Closed`] wins when the ring is both full and
    /// closed, as with the scalar op).
    pub fn try_push_bulk(&self, items: Vec<T>) -> Result<(), PushError<Vec<T>>> {
        if items.is_empty() {
            return Ok(());
        }
        let mut iter = items.into_iter();
        let mut st = self.0.lock();
        if st.consumer_closed {
            drop(st);
            return Err(PushError::Closed(iter.collect()));
        }
        let mut pushed = false;
        while st.queue.len() < self.0.capacity {
            let Some(item) = iter.next() else { break };
            st.queue.push_back(item);
            pushed = true;
        }
        drop(st);
        if pushed {
            self.0.not_empty.notify_one();
        }
        let rest: Vec<T> = iter.collect();
        if rest.is_empty() {
            Ok(())
        } else {
            Err(PushError::Full(rest))
        }
    }

    /// Marks the stream finished. Queued items stay poppable; afterwards the
    /// consumer sees end-of-stream. Also performed on drop.
    pub fn close(&self) {
        let mut st = self.0.lock();
        st.producer_closed = true;
        drop(st);
        self.0.not_empty.notify_all();
        self.0.not_full.notify_all();
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T> Consumer<T> {
    /// Dequeues the oldest item, blocking while the ring is empty. Returns
    /// `None` only when the ring is empty *and* the producer is gone.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.shared.lock();
        loop {
            if let Some(item) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if st.producer_closed {
                return None;
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues the oldest item without blocking.
    pub fn try_pop(&self) -> TryPop<T> {
        let mut st = self.shared.lock();
        if let Some(item) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return TryPop::Item(item);
        }
        if st.producer_closed {
            TryPop::Closed
        } else {
            TryPop::Empty
        }
    }

    /// Dequeues up to `max` items into `out` (appending, oldest first)
    /// without blocking — the whole backlog is claimed under a *single*
    /// lock round-trip, the bulk counterpart of a [`Consumer::try_pop`]
    /// loop. The returned [`BulkPop`] carries the count and whether the
    /// producer has closed; end of stream is `popped == 0 && closed`.
    pub fn pop_bulk(&self, out: &mut Vec<T>, max: usize) -> BulkPop {
        let mut st = self.shared.lock();
        let take = st.queue.len().min(max);
        out.reserve(take);
        for _ in 0..take {
            // `take` is bounded by the queue length read under this same
            // lock, so the pops cannot miss.
            if let Some(item) = st.queue.pop_front() {
                out.push(item);
            }
        }
        let closed = st.producer_closed;
        drop(st);
        if take > 0 {
            self.shared.not_full.notify_one();
        }
        BulkPop {
            popped: take,
            closed,
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Converts this handle into one whose drop does *not* close the ring.
    /// Supervised shards use this so an incarnation's panic (which drops
    /// its consumers mid-unwind) leaves the backlog intact for the
    /// replacement; the supervisor closes the ring explicitly when done.
    pub(crate) fn persistent(mut self) -> Self {
        self.close_on_drop = false;
        self
    }

    /// A second non-closing view of the same ring. The SPSC discipline
    /// still applies: at most one handle may pop at a time (the supervisor
    /// only shadows rings of a shard incarnation that is already dead).
    pub(crate) fn shadow(&self) -> Self {
        Consumer {
            shared: self.shared.clone(),
            close_on_drop: false,
        }
    }

    /// Visits every queued item without dequeuing, oldest first. Used by
    /// the supervisor to count a dead shard's orphaned backlog.
    pub(crate) fn peek<F: FnMut(&T)>(&self, mut f: F) {
        let st = self.shared.lock();
        for item in st.queue.iter() {
            f(item);
        }
    }

    /// Abandons the stream: subsequent pushes fail with
    /// [`PushError::Closed`]. Also performed on drop (unless the handle was
    /// made `Consumer::persistent`).
    pub fn close(&self) {
        let mut st = self.shared.lock();
        st.consumer_closed = true;
        drop(st);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        if self.close_on_drop {
            self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = ring(4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.try_pop(), TryPop::Item(2));
        assert_eq!(rx.try_pop(), TryPop::Empty);
    }

    #[test]
    fn try_push_reports_full() {
        let (tx, rx) = ring(2);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.try_push(3), Err(PushError::Full(3)));
        assert_eq!(rx.pop(), Some(1));
        tx.try_push(3).unwrap();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
    }

    #[test]
    fn closed_producer_drains_then_ends() {
        let (tx, rx) = ring(4);
        tx.push(7).unwrap();
        drop(tx);
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.pop(), None);
        assert_eq!(rx.try_pop(), TryPop::Closed);
    }

    #[test]
    fn closed_consumer_rejects_pushes() {
        let (tx, rx) = ring(4);
        drop(rx);
        assert_eq!(tx.push(1), Err(PushError::Closed(1)));
        assert_eq!(tx.try_push(2), Err(PushError::Closed(2)));
    }

    #[test]
    fn blocking_push_wakes_on_pop() {
        let (tx, rx) = ring(1);
        tx.push(1).unwrap();
        let h = thread::spawn(move || tx.push(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.pop(), Some(1));
        h.join().unwrap().unwrap();
        assert_eq!(rx.pop(), Some(2));
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        let (tx, rx) = ring::<u32>(1);
        let h = thread::spawn(move || rx.pop());
        thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn blocked_full_push_fails_when_consumer_drops() {
        let (tx, rx) = ring(1);
        tx.push(1).unwrap();
        let h = thread::spawn(move || tx.push(2));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(h.join().unwrap(), Err(PushError::Closed(2)));
    }

    #[test]
    fn blocked_push_observes_close_promptly() {
        // Regression guard for the blocking path's shutdown latency: a push
        // blocked on a full ring must return `Closed` off the close
        // notification itself, not by spinning through a full supervision
        // backoff cycle (250 ms cap) first. The bound below is generous
        // against scheduler noise but well under one backoff cycle.
        use std::time::Instant;
        let (tx, rx) = ring(1);
        tx.push(1).unwrap();
        let h = thread::spawn(move || {
            let r = tx.push(2);
            (r, Instant::now())
        });
        // Let the producer actually block on the full ring first.
        thread::sleep(Duration::from_millis(50));
        let closed_at = Instant::now();
        rx.close();
        let (r, returned_at) = h.join().unwrap();
        assert_eq!(r, Err(PushError::Closed(2)));
        let latency = returned_at.saturating_duration_since(closed_at);
        assert!(
            latency < Duration::from_millis(200),
            "blocked push took {latency:?} to observe the close"
        );
    }

    #[test]
    fn closed_wins_over_full() {
        // A full ring whose consumer is gone must report `Closed`, never
        // `Full`: shutdown rejections are not load-induced backpressure and
        // must not be tallied as such.
        let (tx, rx) = ring(1);
        tx.try_push(1).unwrap();
        assert_eq!(tx.try_push(2), Err(PushError::Full(2)));
        drop(rx);
        assert_eq!(tx.try_push(3), Err(PushError::Closed(3)));
    }

    #[test]
    fn persistent_consumer_drop_keeps_ring_open() {
        let (tx, rx) = ring(4);
        tx.push(1).unwrap();
        let shadow = rx.shadow();
        drop(rx.persistent());
        // The backlog survived and the ring still accepts pushes.
        tx.push(2).unwrap();
        assert_eq!(shadow.pop(), Some(1));
        assert_eq!(shadow.pop(), Some(2));
        // An explicit close still works from a shadow handle.
        shadow.close();
        assert_eq!(tx.try_push(3), Err(PushError::Closed(3)));
    }

    #[test]
    fn peek_counts_without_dequeuing() {
        let (tx, rx) = ring(4);
        tx.push(10).unwrap();
        tx.push(20).unwrap();
        let mut seen = Vec::new();
        rx.peek(|&v| seen.push(v));
        assert_eq!(seen, vec![10, 20]);
        assert_eq!(rx.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ring::<u32>(0);
    }

    #[test]
    fn push_bulk_publishes_whole_slice_fifo() {
        let (tx, rx) = ring(8);
        tx.push_bulk((0..5).collect()).unwrap();
        let mut out = Vec::new();
        let r = rx.pop_bulk(&mut out, 16);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(
            r,
            BulkPop {
                popped: 5,
                closed: false
            }
        );
    }

    #[test]
    fn push_bulk_empty_is_a_noop_even_when_full() {
        let (tx, _rx) = ring::<u32>(1);
        tx.push(1).unwrap();
        // Must not block despite the full ring: there is nothing to push.
        tx.push_bulk(Vec::new()).unwrap();
    }

    #[test]
    fn push_bulk_blocks_across_capacity_and_wakes_on_pops() {
        let (tx, rx) = ring(2);
        let h = thread::spawn(move || tx.push_bulk((0..10).collect()));
        let mut got = Vec::new();
        while got.len() < 10 {
            if let Some(v) = rx.pop() {
                got.push(v);
            }
        }
        h.join().unwrap().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn push_bulk_hands_back_unpushed_remainder_on_close() {
        let (tx, rx) = ring(2);
        let h = thread::spawn(move || tx.push_bulk((0..6).collect()));
        thread::sleep(Duration::from_millis(20));
        // Two items fit; close with the producer blocked on the third.
        assert_eq!(rx.pop(), Some(0));
        thread::sleep(Duration::from_millis(20));
        rx.close();
        let err = h.join().unwrap().unwrap_err();
        // Items already published stay published; only the remainder comes
        // back. The consumer freed one slot, so 3 entered before the close.
        assert_eq!(err, PushError::Closed(vec![3, 4, 5]));
    }

    #[test]
    fn try_push_bulk_matches_a_scalar_try_push_loop() {
        // Differential check: same op sequence, one ring driven bulk, one
        // scalar, identical outcomes item by item.
        let (bulk_tx, bulk_rx) = ring(4);
        let (scalar_tx, scalar_rx) = ring(4);
        let items: Vec<u32> = (0..7).collect();
        let rest = match bulk_tx.try_push_bulk(items.clone()) {
            Err(PushError::Full(rest)) => rest,
            other => panic!("expected Full, got {other:?}"),
        };
        let mut scalar_rest = Vec::new();
        for item in items {
            if let Err(PushError::Full(it)) = scalar_tx.try_push(item) {
                scalar_rest.push(it);
            }
        }
        assert_eq!(rest, scalar_rest);
        assert_eq!(rest, vec![4, 5, 6]);
        let mut bulk_out = Vec::new();
        bulk_rx.pop_bulk(&mut bulk_out, usize::MAX);
        let mut scalar_out = Vec::new();
        while let TryPop::Item(v) = scalar_rx.try_pop() {
            scalar_out.push(v);
        }
        assert_eq!(bulk_out, scalar_out);
    }

    #[test]
    fn bulk_closed_wins_over_full() {
        let (tx, rx) = ring(1);
        tx.push(0).unwrap();
        assert_eq!(tx.try_push_bulk(vec![1]), Err(PushError::Full(vec![1])));
        drop(rx);
        assert_eq!(
            tx.try_push_bulk(vec![1, 2]),
            Err(PushError::Closed(vec![1, 2]))
        );
        assert_eq!(tx.push_bulk(vec![3]), Err(PushError::Closed(vec![3])));
    }

    #[test]
    fn pop_bulk_respects_max_and_reports_close() {
        let (tx, rx) = ring(8);
        tx.push_bulk(vec![1, 2, 3]).unwrap();
        drop(tx);
        let mut out = Vec::new();
        assert_eq!(
            rx.pop_bulk(&mut out, 2),
            BulkPop {
                popped: 2,
                closed: true
            }
        );
        assert_eq!(
            rx.pop_bulk(&mut out, 2),
            BulkPop {
                popped: 1,
                closed: true
            }
        );
        assert_eq!(out, vec![1, 2, 3]);
        // Drained and closed: end of stream, same as TryPop::Closed.
        assert_eq!(
            rx.pop_bulk(&mut out, 2),
            BulkPop {
                popped: 0,
                closed: true
            }
        );
        assert_eq!(rx.try_pop(), TryPop::Closed);
    }

    #[test]
    fn pop_bulk_empty_open_ring_reports_neither() {
        let (_tx, rx) = ring::<u32>(4);
        let mut out = Vec::new();
        assert_eq!(
            rx.pop_bulk(&mut out, 8),
            BulkPop {
                popped: 0,
                closed: false
            }
        );
    }

    #[test]
    fn pop_bulk_wakes_a_blocked_producer() {
        let (tx, rx) = ring(1);
        tx.push(1).unwrap();
        let h = thread::spawn(move || tx.push_bulk(vec![2, 3]));
        thread::sleep(Duration::from_millis(20));
        let mut out = Vec::new();
        while out.len() < 3 {
            rx.pop_bulk(&mut out, 4);
        }
        h.join().unwrap().unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn bulk_ops_deliver_the_scalar_sequence_under_concurrency() {
        // Differential soak: the same item stream pushed bulk (varying
        // slice sizes) and drained bulk must arrive exactly as the scalar
        // path would deliver it — in order, nothing lost or duplicated.
        let total: u32 = 10_000;
        let (tx, rx) = ring(7);
        let h = thread::spawn(move || {
            let mut next = 0u32;
            let mut size = 1usize;
            while next < total {
                let end = (next + size as u32).min(total);
                tx.push_bulk((next..end).collect()).unwrap();
                next = end;
                size = size % 13 + 1;
            }
        });
        let mut got: Vec<u32> = Vec::new();
        let mut out = Vec::new();
        loop {
            out.clear();
            let r = rx.pop_bulk(&mut out, 5);
            got.extend(&out);
            if r.popped == 0 && r.closed {
                break;
            }
        }
        h.join().unwrap();
        assert_eq!(got, (0..total).collect::<Vec<_>>());
    }
}
