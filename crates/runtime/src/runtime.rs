//! Thread orchestration: builds shards and producers, wires them with
//! ingress rings, runs them to completion, and folds everything into one
//! [`RuntimeReport`].
//!
//! Services are constructed *inside* their shard thread from a `Send`
//! factory, so nothing policy-shaped (trait objects holding interior state)
//! ever crosses a thread boundary — only plain-data reports come back.
//! Producer panics are contained by construction: an unwinding producer
//! drops its ring handle, the shard drains what was already queued, and
//! every thread still joins.
//!
//! Shard panics are contained by *supervision*: every shard thread runs a
//! supervisor loop that catches the incarnation's unwind, counts the
//! orphaned ring backlog, rebuilds the service from the same factory, and
//! restarts within a [`SupervisionConfig`] budget (bounded exponential
//! backoff). The orphaned backlog survives in the rings because the
//! supervisor *owns* the consumers and each incarnation only borrows them
//! — the unwind never drops (and thus never closes) a ring — so the
//! replacement picks up exactly where the dead incarnation stopped; when
//! the budget is exhausted the supervisor closes the rings itself and
//! accounts every remaining packet as a [`DropReason::ShardFailure`] loss,
//! keeping packet conservation exact across restarts and give-ups alike.

use std::fs::File;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use smbm_obs::{
    FlightRecorder, HistogramRecorder, NetCounts, Observer, Phase, StatCell, TelemetryConfig,
    TelemetryObserver, TelemetryReport, TelemetrySampler,
};
use smbm_switch::{Counters, DropReason, PortId};

use crate::clock::Clock;
use crate::faults::{FaultPlan, ShardFaults};
use crate::ring::{ring, Consumer, Producer, PushError, TryPop};
use crate::service::Service;
use crate::shard::{run_shard_core, Batch, ShardConfig, ShardProgress, ShardReport};

/// Datapath-wide knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Ingress ring depth, in batches, per producer.
    pub ring_capacity: usize,
    /// Per-shard datapath configuration.
    pub shard: ShardConfig,
    /// Attach a [`HistogramRecorder`] to every shard and return it in the
    /// report.
    pub record_metrics: bool,
    /// Scripted fault injection; [`FaultPlan::none`] (the default) injects
    /// nothing.
    pub faults: FaultPlan,
    /// How shard panics are retried and when the supervisor gives up.
    pub supervision: SupervisionConfig,
    /// Attach a [`StatCell`] + [`TelemetryObserver`] to every shard, run a
    /// [`TelemetrySampler`] alongside the datapath, and return its
    /// [`TelemetryReport`]. `None` (the default) runs with the telemetry
    /// plane entirely absent.
    pub telemetry: Option<TelemetryConfig>,
    /// Attach a [`FlightRecorder`] to every shard and have the supervisor
    /// append a post-mortem dump to [`FlightConfig::path`] on each shard
    /// death. `None` (the default) records nothing.
    pub flight: Option<FlightConfig>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            ring_capacity: 64,
            shard: ShardConfig::default(),
            record_metrics: false,
            faults: FaultPlan::none(),
            supervision: SupervisionConfig::default(),
            telemetry: None,
            flight: None,
        }
    }
}

/// Where and how much the per-shard crash flight recorders capture.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Post-mortem JSONL file; every shard death appends one dump (header
    /// line plus the retained tail of events).
    pub path: PathBuf,
    /// Events retained per shard (newest win). Must be non-zero.
    pub capacity: usize,
}

impl FlightConfig {
    /// A flight-recorder config writing to `path` with the default
    /// 256-event ring per shard.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FlightConfig {
            path: path.into(),
            capacity: 256,
        }
    }
}

/// Restart policy for supervised shards.
#[derive(Debug, Clone)]
pub struct SupervisionConfig {
    /// Restarts allowed per shard before the supervisor gives up and drops
    /// the remaining ring backlog as [`DropReason::ShardFailure`] losses.
    pub restart_budget: u32,
    /// Backoff before the first restart; doubles on each further restart.
    /// A zero base skips sleeping entirely (deterministic tests).
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            restart_budget: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(250),
        }
    }
}

impl SupervisionConfig {
    /// A policy with `budget` restarts and no backoff sleeps, for
    /// deterministic tests.
    pub fn immediate(budget: u32) -> Self {
        SupervisionConfig {
            restart_budget: budget,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    /// The sleep before restart `attempt` (1-based):
    /// `backoff_base * 2^(attempt-1)`, capped at `backoff_cap`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(20);
        (self.backoff_base * factor).min(self.backoff_cap)
    }
}

/// Identifies a shard added to a [`RuntimeBuilder`], for attaching
/// producers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardId(usize);

/// Atomic tallies a producer updates as it feeds its ring; read after join
/// even if the producer panicked mid-run, so partial counts survive.
#[derive(Debug, Default)]
struct ProducerStats {
    offered_packets: AtomicU64,
    sent_packets: AtomicU64,
    backpressure_packets: AtomicU64,
    backpressure_value: AtomicU64,
    lost_packets: AtomicU64,
    lost_value: AtomicU64,
    net_datagrams: AtomicU64,
    net_frames: AtomicU64,
    net_decode_errors: AtomicU64,
    net_truncations: AtomicU64,
    net_decode_frames: AtomicU64,
}

/// What one producer did, reported after the runtime joins it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerReport {
    /// Shard this producer fed.
    pub shard: usize,
    /// Packets the producer attempted to send.
    pub offered_packets: u64,
    /// Packets that entered the ring.
    pub sent_packets: u64,
    /// Packets rejected because the ring was full ([`SendOutcome::Rejected`]
    /// with [`DropReason::Backpressure`]) — counted separately from policy
    /// drops at the switch.
    pub backpressure_packets: u64,
    /// Total value of backpressure-rejected packets.
    pub backpressure_value: u64,
    /// Packets lost because the shard disappeared mid-send.
    /// [`RuntimeReport::counters`] folds them in as
    /// [`DropReason::ShardFailure`] drops.
    pub lost_packets: u64,
    /// Total value of the lost packets.
    pub lost_value: u64,
    /// Wire-level receive tallies recorded through
    /// [`IngressHandle::record_net`]; all zero for in-process producers.
    pub net: NetCounts,
    /// Frames from well-formed datagrams that were lost to truncation or
    /// failed validation before ever reaching a ring.
    /// [`RuntimeReport::counters`] folds them in as
    /// [`DropReason::NetDecode`] drops.
    pub net_decode_frames: u64,
    /// The producer job panicked. Tallies reflect everything up to the
    /// panic; the shard drained whatever was already queued. A panicking
    /// fanout job marks every one of its per-shard rows.
    pub panicked: bool,
}

/// Outcome of a non-blocking [`IngressHandle::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The batch entered the ring.
    Sent,
    /// The batch was rejected and discarded; the reason is always
    /// [`DropReason::Backpressure`] today.
    Rejected(DropReason),
    /// The shard is gone; the batch was discarded and no further sends can
    /// succeed.
    Disconnected,
}

/// A producer job's handle to its ingress ring: lossless blocking sends for
/// replay, lossy non-blocking sends (with explicit backpressure accounting)
/// for load generation.
pub struct IngressHandle<P: Copy> {
    producer: Producer<Batch<P>>,
    stats: Arc<ProducerStats>,
    meta: fn(P) -> (PortId, u32, u64),
    cell: Option<Arc<StatCell>>,
    errors: Arc<Mutex<Vec<String>>>,
}

impl<P: Copy> IngressHandle<P> {
    /// Sends a batch, blocking while the ring is full. Returns `false` when
    /// the shard is gone (the batch is counted lost and the job should
    /// stop).
    pub fn send(&mut self, packets: Vec<P>) -> bool {
        let n = packets.len() as u64;
        self.stats.offered_packets.fetch_add(n, Ordering::Relaxed);
        match self.producer.push(Batch::new(packets)) {
            Ok(()) => {
                self.stats.sent_packets.fetch_add(n, Ordering::Relaxed);
                true
            }
            Err(PushError::Full(_)) => unreachable!("blocking push never reports full"),
            Err(PushError::Closed(batch)) => {
                let value: u64 = batch.packets.iter().map(|&p| (self.meta)(p).2).sum();
                self.stats.lost_packets.fetch_add(n, Ordering::Relaxed);
                self.stats.lost_value.fetch_add(value, Ordering::Relaxed);
                false
            }
        }
    }

    /// Sends a batch without blocking. A full ring rejects the whole batch:
    /// its packets are discarded and tallied as backpressure (with their
    /// value), which [`RuntimeReport::counters`] folds into the datapath
    /// totals as [`DropReason::Backpressure`] drops.
    pub fn try_send(&mut self, packets: Vec<P>) -> SendOutcome {
        let n = packets.len() as u64;
        self.stats.offered_packets.fetch_add(n, Ordering::Relaxed);
        match self.producer.try_push(Batch::new(packets)) {
            Ok(()) => {
                self.stats.sent_packets.fetch_add(n, Ordering::Relaxed);
                SendOutcome::Sent
            }
            Err(PushError::Full(batch)) => {
                let value: u64 = batch.packets.iter().map(|&p| (self.meta)(p).2).sum();
                self.stats
                    .backpressure_packets
                    .fetch_add(n, Ordering::Relaxed);
                self.stats
                    .backpressure_value
                    .fetch_add(value, Ordering::Relaxed);
                SendOutcome::Rejected(DropReason::Backpressure)
            }
            Err(PushError::Closed(batch)) => {
                let value: u64 = batch.packets.iter().map(|&p| (self.meta)(p).2).sum();
                self.stats.lost_packets.fetch_add(n, Ordering::Relaxed);
                self.stats.lost_value.fetch_add(value, Ordering::Relaxed);
                SendOutcome::Disconnected
            }
        }
    }

    /// Sends several batches with one bulk ring publish — a single release
    /// store and at most one consumer wake per free window — blocking
    /// while the ring is full, with accounting identical to a
    /// [`IngressHandle::send`] loop. Empty batches are skipped. Returns
    /// `false` when the shard is gone: batches already published are
    /// counted sent (the shard drains or accounts them) and the remainder
    /// is counted lost.
    pub fn send_bulk(&mut self, batches: Vec<Vec<P>>) -> bool {
        let n: u64 = batches.iter().map(|b| b.len() as u64).sum();
        if n == 0 {
            return true;
        }
        self.stats.offered_packets.fetch_add(n, Ordering::Relaxed);
        let items: Vec<Batch<P>> = batches
            .into_iter()
            .filter(|b| !b.is_empty())
            .map(Batch::new)
            .collect();
        match self.producer.push_bulk(items) {
            Ok(()) => {
                self.stats.sent_packets.fetch_add(n, Ordering::Relaxed);
                true
            }
            Err(PushError::Full(_)) => unreachable!("blocking bulk push never reports full"),
            Err(PushError::Closed(rest)) => {
                let (lost, value) = self.weigh(&rest);
                self.stats
                    .sent_packets
                    .fetch_add(n - lost, Ordering::Relaxed);
                self.stats.lost_packets.fetch_add(lost, Ordering::Relaxed);
                self.stats.lost_value.fetch_add(value, Ordering::Relaxed);
                false
            }
        }
    }

    /// Sends several batches without blocking, one bulk ring publish for
    /// the slice. Per-batch semantics match a [`IngressHandle::try_send`]
    /// loop against the same ring state: the leading batches that fit are
    /// sent, the rest are tallied as backpressure (or lost, once the shard
    /// is gone). Returns the *emptied* buffers of every batch that did not
    /// enter the ring so callers can recycle their allocations.
    pub fn try_send_bulk(&mut self, batches: Vec<Vec<P>>) -> Vec<Vec<P>> {
        let n: u64 = batches.iter().map(|b| b.len() as u64).sum();
        if n == 0 {
            return batches;
        }
        self.stats.offered_packets.fetch_add(n, Ordering::Relaxed);
        let items: Vec<Batch<P>> = batches
            .into_iter()
            .filter(|b| !b.is_empty())
            .map(Batch::new)
            .collect();
        let rest = match self.producer.try_push_bulk(items) {
            Ok(()) => {
                self.stats.sent_packets.fetch_add(n, Ordering::Relaxed);
                return Vec::new();
            }
            Err(PushError::Full(rest)) => {
                let (rejected, value) = self.weigh(&rest);
                self.stats
                    .sent_packets
                    .fetch_add(n - rejected, Ordering::Relaxed);
                self.stats
                    .backpressure_packets
                    .fetch_add(rejected, Ordering::Relaxed);
                self.stats
                    .backpressure_value
                    .fetch_add(value, Ordering::Relaxed);
                rest
            }
            Err(PushError::Closed(rest)) => {
                let (lost, value) = self.weigh(&rest);
                self.stats
                    .sent_packets
                    .fetch_add(n - lost, Ordering::Relaxed);
                self.stats.lost_packets.fetch_add(lost, Ordering::Relaxed);
                self.stats.lost_value.fetch_add(value, Ordering::Relaxed);
                rest
            }
        };
        rest.into_iter()
            .map(|b| {
                let mut buf = b.packets;
                buf.clear();
                buf
            })
            .collect()
    }

    /// Packet count and total value of a slice of batches.
    fn weigh(&self, batches: &[Batch<P>]) -> (u64, u64) {
        let mut n = 0u64;
        let mut value = 0u64;
        for b in batches {
            n += b.packets.len() as u64;
            value += b.packets.iter().map(|&p| (self.meta)(p).2).sum::<u64>();
        }
        (n, value)
    }

    /// Surfaces a producer-side observability failure (a socket option that
    /// could not be set, a receive loop that saw transient errors) on the
    /// final report's [`RuntimeReport::obs_errors`] without failing the
    /// datapath — the same degrade-don't-die contract the telemetry and
    /// flight sinks follow.
    pub fn record_error(&self, msg: impl Into<String>) {
        if let Ok(mut errors) = self.errors.lock() {
            errors.push(msg.into());
        }
    }

    /// Records wire-level receive activity from a network ingress thread:
    /// socket tallies (`counts`) plus the frames from well-formed datagrams
    /// that were lost to truncation or failed validation
    /// (`dropped_frames`). Both land in this producer's report; when the
    /// runtime has telemetry attached they also flow into the target
    /// shard's [`StatCell`], so live Prometheus/JSON dumps and flight
    /// recorder post-mortems show the wire traffic. In-process producers
    /// never call this.
    pub fn record_net(&self, counts: NetCounts, dropped_frames: u64) {
        let r = Ordering::Relaxed;
        self.stats.net_datagrams.fetch_add(counts.datagrams, r);
        self.stats.net_frames.fetch_add(counts.frames, r);
        self.stats
            .net_decode_errors
            .fetch_add(counts.decode_errors, r);
        self.stats.net_truncations.fetch_add(counts.truncations, r);
        self.stats.net_decode_frames.fetch_add(dropped_frames, r);
        if let Some(cell) = &self.cell {
            cell.record_net(counts, dropped_frames);
        }
    }
}

type ServiceFactory<S> = Box<dyn Fn() -> S + Send>;
type ProducerJob<P> = Box<dyn FnOnce(&mut IngressHandle<P>) + Send>;
type FanoutJob<P> = Box<dyn FnOnce(&mut [IngressHandle<P>]) + Send>;

struct ShardSlot<S: Service + 'static> {
    factory: ServiceFactory<S>,
    producers: Vec<ProducerJob<S::Packet>>,
}

/// Assembles a datapath: shards (each owning one buffer core) and the
/// producer jobs that feed them, then runs everything to completion.
pub struct RuntimeBuilder<S: Service + 'static> {
    config: RuntimeConfig,
    shards: Vec<ShardSlot<S>>,
    fanout: Vec<(Vec<usize>, FanoutJob<S::Packet>)>,
}

impl<S: Service + 'static> RuntimeBuilder<S> {
    /// Starts an empty datapath with the given configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        RuntimeBuilder {
            config,
            shards: Vec::new(),
            fanout: Vec::new(),
        }
    }

    /// Adds a shard whose service is built by `factory` *inside* the shard
    /// thread. Returns the id to attach producers to.
    ///
    /// The factory must be reusable (`Fn`, not `FnOnce`): the supervisor
    /// calls it again to rebuild the service when the shard panics and is
    /// restarted.
    pub fn add_shard(&mut self, factory: impl Fn() -> S + Send + 'static) -> ShardId {
        self.shards.push(ShardSlot {
            factory: Box::new(factory),
            producers: Vec::new(),
        });
        ShardId(self.shards.len() - 1)
    }

    /// Adds a producer job feeding `shard` through its own SPSC ring. The
    /// job runs on a dedicated thread and owns its [`IngressHandle`]; when
    /// it returns (or panics) the ring closes and the shard sees
    /// end-of-stream.
    ///
    /// # Panics
    ///
    /// Panics if `shard` was not returned by this builder's
    /// [`RuntimeBuilder::add_shard`].
    pub fn add_producer(
        &mut self,
        shard: ShardId,
        job: impl FnOnce(&mut IngressHandle<S::Packet>) + Send + 'static,
    ) {
        self.shards[shard.0].producers.push(Box::new(job));
    }

    /// Adds a producer job that feeds *several* shards from one thread —
    /// the shape of a network ingress socket spraying decoded packets
    /// across the datapath. The job gets one [`IngressHandle`] (and thus
    /// one SPSC ring, with its own backpressure/lost accounting) per entry
    /// in `shards`, in the given order; the final report carries one
    /// [`ProducerReport`] row per handle. When the job returns or panics
    /// all of its rings close together.
    ///
    /// # Panics
    ///
    /// Panics if any entry of `shards` was not returned by this builder's
    /// [`RuntimeBuilder::add_shard`].
    pub fn add_producer_fanout(
        &mut self,
        shards: &[ShardId],
        job: impl FnOnce(&mut [IngressHandle<S::Packet>]) + Send + 'static,
    ) {
        for id in shards {
            assert!(id.0 < self.shards.len(), "unknown shard {}", id.0);
        }
        self.fanout
            .push((shards.iter().map(|id| id.0).collect(), Box::new(job)));
    }

    /// Spawns every shard and producer thread, waits for the datapath to
    /// finish (all producers done, all rings drained, buffers emptied when
    /// configured), and collects the reports. `clock_factory` builds each
    /// shard's pacing clock from its index; the clock must be `Clone`
    /// because each restarted incarnation gets a fresh copy (a paced
    /// [`crate::WallClock`] re-arms its deadline from scratch).
    pub fn run<C: Clock + Clone + Send + 'static>(
        self,
        mut clock_factory: impl FnMut(usize) -> C,
    ) -> RuntimeReport {
        let started = Instant::now();
        let record_metrics = self.config.record_metrics;
        let shard_config = self.config.shard.clone();
        let supervision = self.config.supervision.clone();
        let mut shard_handles = Vec::new();
        let mut producer_handles = Vec::new();
        let mut obs_errors: Vec<String> = Vec::new();
        // Producer-side observability failures, reported through
        // `IngressHandle::record_error`; drained into `obs_errors` after
        // every producer has joined.
        let producer_errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

        // One stat cell per shard, shared between that shard's observer and
        // the sampler thread. Sink-open failures degrade to "telemetry off"
        // rather than failing the datapath; they surface in `obs_errors`.
        let cells: Option<Vec<Arc<StatCell>>> = self.config.telemetry.as_ref().map(|_| {
            (0..self.shards.len())
                .map(|_| Arc::new(StatCell::new()))
                .collect()
        });
        let sampler = match (&cells, self.config.telemetry.clone()) {
            (Some(cells), Some(cfg)) => match TelemetrySampler::spawn(cells.clone(), cfg) {
                Ok(s) => Some(s),
                Err(e) => {
                    obs_errors.push(format!("telemetry sampler: {e}"));
                    None
                }
            },
            _ => None,
        };
        let flight_cfg = self.config.flight.clone();
        let flight_sink: Option<Arc<Mutex<File>>> = match &flight_cfg {
            Some(cfg) => match File::create(&cfg.path) {
                Ok(f) => Some(Arc::new(Mutex::new(f))),
                Err(e) => {
                    obs_errors.push(format!("flight sink {}: {e}", cfg.path.display()));
                    None
                }
            },
            None => None,
        };

        // Wire every producer — per-shard and fanout — before spawning the
        // shards, so a fanout job sees all of its rings at once. Each
        // producer thread reports as a *group* of (shard, stats) rows: one
        // row for a plain producer, one per target shard for a fanout job.
        let nshards = self.shards.len();
        let mut consumers_per_shard: Vec<Vec<Consumer<Batch<S::Packet>>>> =
            (0..nshards).map(|_| Vec::new()).collect();
        let mut factories = Vec::with_capacity(nshards);
        for (i, slot) in self.shards.into_iter().enumerate() {
            for (j, job) in slot.producers.into_iter().enumerate() {
                let (tx, rx) = ring(self.config.ring_capacity);
                consumers_per_shard[i].push(rx);
                let stats = Arc::new(ProducerStats::default());
                let mut handle = IngressHandle {
                    producer: tx,
                    stats: Arc::clone(&stats),
                    meta: S::meta,
                    cell: cells.as_ref().map(|c| Arc::clone(&c[i])),
                    errors: Arc::clone(&producer_errors),
                };
                let join = thread::Builder::new()
                    .name(format!("smbm-prod-{i}-{j}"))
                    .spawn(move || job(&mut handle))
                    .expect("spawn producer thread");
                producer_handles.push((vec![(i, stats)], join));
            }
            factories.push(slot.factory);
        }
        for (k, (targets, job)) in self.fanout.into_iter().enumerate() {
            let mut handles = Vec::with_capacity(targets.len());
            let mut group = Vec::with_capacity(targets.len());
            for &t in &targets {
                let (tx, rx) = ring(self.config.ring_capacity);
                consumers_per_shard[t].push(rx);
                let stats = Arc::new(ProducerStats::default());
                handles.push(IngressHandle {
                    producer: tx,
                    stats: Arc::clone(&stats),
                    meta: S::meta,
                    cell: cells.as_ref().map(|c| Arc::clone(&c[t])),
                    errors: Arc::clone(&producer_errors),
                });
                group.push((t, stats));
            }
            let join = thread::Builder::new()
                .name(format!("smbm-fanout-{k}"))
                .spawn(move || job(&mut handles))
                .expect("spawn fanout producer thread");
            producer_handles.push((group, join));
        }

        for (i, (factory, consumers)) in factories.into_iter().zip(consumers_per_shard).enumerate()
        {
            let clock = clock_factory(i);
            let config = shard_config.clone();
            let supervision = supervision.clone();
            let faults = self.config.faults.for_shard(i);
            let cell = cells.as_ref().map(|c| Arc::clone(&c[i]));
            let flight = flight_sink
                .as_ref()
                .and(flight_cfg.as_ref())
                .map(|cfg| FlightRecorder::new(i, cfg.capacity));
            let sink = flight_sink.clone();
            let join = thread::Builder::new()
                .name(format!("smbm-shard-{i}"))
                .spawn(move || {
                    // Absent layers are `None`, which the Observer blanket
                    // impls erase to no-ops — one code path for every
                    // combination of telemetry/metrics/flight.
                    let super_cell = cell.clone();
                    let mut obs = (
                        cell.map(TelemetryObserver::new),
                        record_metrics.then(HistogramRecorder::new),
                    );
                    let mut report = supervise_shard(
                        i,
                        &factory,
                        consumers,
                        clock,
                        &config,
                        &supervision,
                        faults,
                        &mut obs,
                        flight,
                        sink.as_deref(),
                        super_cell,
                    );
                    report.metrics = obs.1.take();
                    report
                })
                .expect("spawn shard thread");
            shard_handles.push(join);
        }

        // Producers finish first in the happy path; join them before the
        // shards so a blocked producer (shard died) unblocks via its closed
        // ring rather than deadlocking the join order.
        let mut producers = Vec::new();
        for (group, join) in producer_handles {
            let panicked = join.join().is_err();
            for (shard, stats) in group {
                let r = Ordering::Relaxed;
                producers.push(ProducerReport {
                    shard,
                    offered_packets: stats.offered_packets.load(r),
                    sent_packets: stats.sent_packets.load(r),
                    backpressure_packets: stats.backpressure_packets.load(r),
                    backpressure_value: stats.backpressure_value.load(r),
                    lost_packets: stats.lost_packets.load(r),
                    lost_value: stats.lost_value.load(r),
                    net: NetCounts {
                        datagrams: stats.net_datagrams.load(r),
                        frames: stats.net_frames.load(r),
                        decode_errors: stats.net_decode_errors.load(r),
                        truncations: stats.net_truncations.load(r),
                    },
                    net_decode_frames: stats.net_decode_frames.load(r),
                    panicked,
                });
            }
        }

        let mut shards = Vec::with_capacity(shard_handles.len());
        let mut shard_panics = 0;
        for join in shard_handles {
            match join.join() {
                // Every incarnation that died counts: the restarts plus the
                // final unrecovered death when the supervisor gave up.
                Ok(report) => {
                    shard_panics += report.restarts as usize + usize::from(report.gave_up);
                    shards.push(report);
                }
                // The supervisor itself should never unwind; if it does,
                // count the thread as one panic and carry on.
                Err(_) => shard_panics += 1,
            }
        }

        // Every producer has joined, so nothing records errors concurrently.
        if let Ok(mut errors) = producer_errors.lock() {
            obs_errors.append(&mut errors);
        }

        // Stop the sampler only after every shard thread has joined: the
        // joins give the final tick a happens-before edge over all relaxed
        // stat-cell stores, so the last sample's totals are exact.
        let mut telemetry = sampler.map(|s| s.stop());
        if let Some(report) = &mut telemetry {
            obs_errors.extend(report.errors.iter().cloned());
        }
        if let Some(sink) = &flight_sink {
            if let Ok(mut file) = sink.lock() {
                if let Err(e) = file.flush() {
                    obs_errors.push(format!("flight sink flush: {e}"));
                }
            }
        }

        RuntimeReport {
            shards,
            producers,
            shard_panics,
            elapsed: started.elapsed(),
            telemetry,
            obs_errors,
        }
    }
}

/// Runs one shard under supervision: incarnations are built from `factory`
/// and driven by [`run_shard_core`]; a panicking incarnation is accounted
/// exactly and replaced (with backoff) until `supervision`'s restart budget
/// runs out.
///
/// Accounting at each panic, so conservation holds datapath-wide:
///
/// * counters up to the last completed slot come from the incarnation's
///   [`ShardProgress`] snapshot;
/// * packets popped from the rings but not yet reflected in that snapshot
///   (a mid-slot death) become [`DropReason::ShardFailure`] drops;
/// * packets resident in the dead buffer become push-outs — their exact
///   value is recovered from the snapshot's value law
///   (`admitted - transmitted - pushed_out`);
/// * the ring backlog is left in place for the replacement (or drained as
///   shard-failure drops on give-up).
#[allow(clippy::too_many_arguments)]
fn supervise_shard<S: Service + 'static, C: Clock + Clone, O: Observer>(
    shard_id: usize,
    factory: &ServiceFactory<S>,
    consumers: Vec<Consumer<Batch<S::Packet>>>,
    clock: C,
    config: &ShardConfig,
    supervision: &SupervisionConfig,
    mut faults: ShardFaults,
    obs: &mut O,
    mut flight: Option<FlightRecorder>,
    flight_sink: Option<&Mutex<File>>,
    cell: Option<Arc<StatCell>>,
) -> ShardReport {
    let started = Instant::now();
    // The supervisor owns the rings; incarnations only *borrow* them (see
    // `run_shard_core`), so a panicking incarnation's unwind cannot drop —
    // and thus cannot close — a ring. The backlog survives in place for
    // the replacement, and the supervisor peeks, drains, and finally
    // closes through the same owned handles. This is also what keeps the
    // lock-free ring's SPSC discipline intact across restarts: there is
    // exactly one consumer handle per ring, ever.
    let mut rings: Vec<Consumer<Batch<S::Packet>>> = consumers;

    let mut acc = ShardProgress::new();
    let mut restarts: u32 = 0;
    let mut orphaned: u64 = 0;
    let mut gave_up = false;
    let mut flight_dumps: u32 = 0;

    loop {
        let mut progress = ShardProgress::new();
        let incarnation_clock = clock.clone();
        // AssertUnwindSafe: everything the closure can leave half-updated
        // is plain data (tallies in `progress`, fire-once flags in
        // `faults`, histogram buckets in `obs`, the event ring in
        // `flight`, pruned-but-consistent ring handles in `rings`), read
        // afterwards only in ways that tolerate a torn last write — the
        // snapshot fields are whole-struct copies taken at slot
        // boundaries.
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Built inside the guarded scope: a panicking factory counts as
            // an incarnation failure like any other. The flight recorder
            // rides along as the head of the observer stack so its ring
            // holds the event tail when the incarnation unwinds.
            let service = factory();
            let mut stack = (flight.as_mut(), &mut *obs);
            run_shard_core(
                service,
                &mut rings,
                incarnation_clock,
                config,
                &mut faults,
                &mut progress,
                &mut stack,
            );
        }));

        match result {
            Ok(()) => {
                acc.absorb(&progress);
                break;
            }
            Err(_) => {
                obs.phase_start(Phase::Recovery);
                let mut backlog = 0u64;
                for r in rings.iter() {
                    r.peek(|b| backlog += b.packets.len() as u64);
                }
                orphaned += backlog;
                obs.shard_panicked(progress.stats.slots, backlog);
                if let Some(f) = flight.as_mut() {
                    f.shard_panicked(progress.stats.slots, backlog);
                }
                flight_dumps += write_flight_dump(
                    flight_sink,
                    flight.as_ref(),
                    "panic",
                    progress.stats.slots,
                    restarts as u64,
                    backlog,
                    cell.as_ref().map(|c| c.net_counts()),
                );

                // Packets the dead incarnation popped but never accounted
                // (it died mid-slot) are shard-failure drops; packets still
                // resident in its buffer died with it and are recorded as
                // push-outs, with their value recovered from the snapshot's
                // value law. After this the incarnation's books balance.
                let gap_p = progress
                    .ingested_packets
                    .saturating_sub(progress.counters.arrived());
                let gap_v = progress
                    .ingested_value
                    .saturating_sub(progress.counters.arrived_value());
                progress.counters.record_shard_failure_bulk(gap_p, gap_v);
                let resident_v = progress
                    .counters
                    .admitted_value()
                    .saturating_sub(progress.counters.transmitted_value())
                    .saturating_sub(progress.counters.pushed_out_value());
                progress
                    .counters
                    .record_flush(progress.occupancy as u64, resident_v);
                progress.occupancy = 0;
                acc.absorb(&progress);

                if restarts >= supervision.restart_budget {
                    gave_up = true;
                    obs.shard_failed(progress.stats.slots, backlog);
                    if let Some(f) = flight.as_mut() {
                        f.shard_failed(progress.stats.slots, backlog);
                    }
                    flight_dumps += write_flight_dump(
                        flight_sink,
                        flight.as_ref(),
                        "gave_up",
                        progress.stats.slots,
                        restarts as u64,
                        backlog,
                        cell.as_ref().map(|c| c.net_counts()),
                    );
                    obs.phase_end(Phase::Recovery);
                    break;
                }
                restarts += 1;
                let backoff = supervision.backoff(restarts);
                if !backoff.is_zero() {
                    thread::sleep(backoff);
                }
                // The replacement borrows the same `rings` on the next
                // iteration — nothing to rewire.
                obs.shard_restarted(progress.stats.slots, restarts as u64);
                if let Some(f) = flight.as_mut() {
                    f.shard_restarted(progress.stats.slots, restarts as u64);
                }
                obs.phase_end(Phase::Recovery);
            }
        }
    }

    // Close the surviving rings explicitly: blocked producers unblock with
    // `Closed`, and whatever is still queued — the give-up backlog, or
    // leftovers after an admission-error abort — is drained and accounted
    // as shard-failure drops. A normal completion pruned (and thereby
    // closed) every ring already, so this is a no-op there.
    for r in rings.iter() {
        r.close();
    }
    let mut drained_p = 0u64;
    let mut drained_v = 0u64;
    for r in rings.iter() {
        while let TryPop::Item(b) = r.try_pop() {
            drained_p += b.packets.len() as u64;
            drained_v += b.packets.iter().map(|&p| S::meta(p).2).sum::<u64>();
        }
    }
    if drained_p > 0 {
        acc.counters.record_shard_failure_bulk(drained_p, drained_v);
    }

    let mut report = acc.into_report(shard_id, started.elapsed());
    report.restarts = restarts;
    report.orphaned_packets = orphaned;
    report.gave_up = gave_up;
    report.flight_dumps = flight_dumps;
    report
}

/// Appends one flight-recorder dump to the shared post-mortem sink,
/// returning 1 if a dump was written (0 when no recorder/sink is configured
/// or the write failed — deaths must never cascade into the supervisor).
/// `net`, when present, is the dead shard's wire-ingress tallies from its
/// stat cell; the dump header carries them so a post-mortem of a
/// network-fed shard shows the traffic that preceded the death.
#[allow(clippy::too_many_arguments)]
fn write_flight_dump(
    sink: Option<&Mutex<File>>,
    flight: Option<&FlightRecorder>,
    reason: &str,
    slot: u64,
    attempt: u64,
    orphans: u64,
    net: Option<NetCounts>,
) -> u32 {
    let (Some(sink), Some(flight)) = (sink, flight) else {
        return 0;
    };
    let dump = flight.render_dump_with_net(reason, slot, attempt, orphans, net.as_ref());
    let Ok(mut file) = sink.lock() else {
        return 0;
    };
    // Flush immediately: the dump must hit disk even if the process dies
    // right after the supervisor gives up.
    match file.write_all(dump.as_bytes()).and_then(|()| file.flush()) {
        Ok(()) => 1,
        Err(_) => 0,
    }
}

/// Everything the datapath did, shard by shard and producer by producer.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Per-shard reports, in shard order. Supervision means every shard
    /// reports, even one whose incarnations all panicked: the supervisor
    /// synthesizes the report from the accounting it recovered
    /// ([`ShardReport::gave_up`] marks an abandoned shard).
    pub shards: Vec<ShardReport>,
    /// Per-producer reports, grouped by shard in spawn order.
    pub producers: Vec<ProducerReport>,
    /// Shard incarnations that panicked, whether restarted or not.
    pub shard_panics: usize,
    /// Wall-clock time from first spawn to last join.
    pub elapsed: Duration,
    /// The telemetry sampler's report, when [`RuntimeConfig::telemetry`]
    /// was set. Its final sample is exact: the sampler is stopped only
    /// after every shard thread has joined.
    pub telemetry: Option<TelemetryReport>,
    /// Non-fatal observability failures (sink-open or write errors). The
    /// datapath itself ran to completion regardless.
    pub obs_errors: Vec<String>,
}

impl RuntimeReport {
    /// Datapath-wide counters: every shard's switch counters merged, plus
    /// producer-side backpressure rejections folded in as
    /// [`DropReason::Backpressure`] drops and producer-side losses (sends
    /// into a dead shard's closed ring) as [`DropReason::ShardFailure`]
    /// drops — so the conservation laws hold over the whole datapath, not
    /// just inside each switch, even across shard panics and restarts.
    pub fn counters(&self) -> Counters {
        let mut total = Counters::new();
        for shard in &self.shards {
            total.merge(&shard.counters);
        }
        let bp_packets: u64 = self.producers.iter().map(|p| p.backpressure_packets).sum();
        let bp_value: u64 = self.producers.iter().map(|p| p.backpressure_value).sum();
        total.record_backpressure_bulk(bp_packets, bp_value);
        total.record_shard_failure_bulk(self.lost_packets(), self.lost_value());
        // Frames lost at the wire never carried a decodable value, so the
        // value leg of the fold is zero by construction.
        total.record_net_decode_bulk(self.net_decode_drops(), 0);
        total
    }

    /// Sum of every shard's objective.
    pub fn score(&self) -> u64 {
        self.shards.iter().map(|s| s.score).sum()
    }

    /// Producer jobs that panicked.
    pub fn producer_panics(&self) -> usize {
        self.producers.iter().filter(|p| p.panicked).count()
    }

    /// Packets lost to mid-send shard disappearance, across all producers.
    pub fn lost_packets(&self) -> u64 {
        self.producers.iter().map(|p| p.lost_packets).sum()
    }

    /// Total value of the packets in [`RuntimeReport::lost_packets`].
    pub fn lost_value(&self) -> u64 {
        self.producers.iter().map(|p| p.lost_value).sum()
    }

    /// Wire-level receive tallies merged across every producer; all zero
    /// when nothing called [`IngressHandle::record_net`].
    pub fn net_counts(&self) -> NetCounts {
        let mut total = NetCounts::default();
        for p in &self.producers {
            total.merge(&p.net);
        }
        total
    }

    /// Frames dropped at the wire ([`DropReason::NetDecode`]), across all
    /// producers.
    pub fn net_decode_drops(&self) -> u64 {
        self.producers.iter().map(|p| p.net_decode_frames).sum()
    }

    /// Supervised restarts across all shards.
    pub fn restarts(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.restarts)).sum()
    }

    /// Packets found orphaned in dead incarnations' rings, across all
    /// shards and panics.
    pub fn orphaned_packets(&self) -> u64 {
        self.shards.iter().map(|s| s.orphaned_packets).sum()
    }

    /// Shards the supervisor abandoned after exhausting the restart budget.
    pub fn shards_gave_up(&self) -> usize {
        self.shards.iter().filter(|s| s.gave_up).count()
    }

    /// Flight-recorder post-mortem dumps written, across all shards.
    pub fn flight_dumps(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.flight_dumps)).sum()
    }

    /// Packets through admission control per second of datapath wall time.
    pub fn processed_per_sec(&self) -> f64 {
        let arrived: u64 = self.shards.iter().map(|s| s.counters.arrived()).sum();
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            arrived as f64 / secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::service::WorkService;
    use smbm_core::{Lwd, WorkRunner};
    use smbm_switch::{PortId, Work, WorkPacket, WorkSwitchConfig};

    fn builder(shards: usize) -> (RuntimeBuilder<WorkService<Lwd>>, Vec<ShardId>) {
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 4,
            shard: ShardConfig::lockstep(),
            ..RuntimeConfig::default()
        });
        let ids = (0..shards)
            .map(|_| {
                b.add_shard(|| {
                    let cfg = WorkSwitchConfig::contiguous(2, 8).unwrap();
                    WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
                })
            })
            .collect();
        (b, ids)
    }

    fn wp(port: usize, w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(port), Work::new(w))
    }

    #[test]
    fn single_shard_single_producer_round_trip() {
        let (mut b, ids) = builder(1);
        b.add_producer(ids[0], |h| {
            for _ in 0..10 {
                assert!(h.send(vec![wp(0, 1), wp(1, 2)]));
            }
        });
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shard_panics, 0);
        assert_eq!(report.producer_panics(), 0);
        assert_eq!(report.counters().arrived(), 20);
        assert_eq!(report.counters().transmitted(), 20, "drain flushes all");
        assert_eq!(report.producers[0].sent_packets, 20);
        assert!(report.counters().check_conservation(0).is_ok());
    }

    #[test]
    fn two_shards_partition_the_load() {
        let (mut b, ids) = builder(2);
        for &id in &ids {
            b.add_producer(id, |h| {
                for _ in 0..5 {
                    h.send(vec![wp(0, 1)]);
                }
            });
        }
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.score(), 10);
        for shard in &report.shards {
            assert_eq!(shard.counters.transmitted(), 5);
        }
    }

    #[test]
    fn producer_panic_drains_and_joins() {
        let (mut b, ids) = builder(1);
        b.add_producer(ids[0], |h| {
            h.send(vec![wp(0, 1), wp(0, 1)]);
            panic!("producer died mid-run");
        });
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.producer_panics(), 1);
        assert!(report.producers[0].panicked);
        assert_eq!(report.producers[0].sent_packets, 2);
        assert_eq!(report.shard_panics, 0);
        // The shard drained the in-flight batch before joining.
        assert_eq!(report.counters().transmitted(), 2);
        assert!(report.counters().check_conservation(0).is_ok());
    }

    #[test]
    fn fanout_producer_feeds_every_shard_and_reports_net() {
        let (mut b, ids) = builder(2);
        b.add_producer_fanout(&ids, |handles| {
            assert_eq!(handles.len(), 2, "one handle per target shard");
            for h in handles.iter_mut() {
                assert!(h.send(vec![wp(0, 1), wp(1, 2)]));
            }
            // The shape a socket thread uses: one datagram carried the two
            // frames for shard 0, a third frame failed validation.
            handles[0].record_net(
                NetCounts {
                    datagrams: 1,
                    frames: 2,
                    decode_errors: 1,
                    truncations: 0,
                },
                1,
            );
        });
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.producers.len(), 2, "one report row per fed shard");
        assert_eq!(report.producers[0].shard, 0);
        assert_eq!(report.producers[1].shard, 1);
        for p in &report.producers {
            assert_eq!(p.sent_packets, 2);
            assert!(!p.panicked);
        }
        assert_eq!(report.net_counts().datagrams, 1);
        assert_eq!(report.net_counts().decode_errors, 1);
        assert_eq!(report.net_decode_drops(), 1);
        let c = report.counters();
        assert_eq!(c.arrived(), 5, "4 delivered + 1 net-decode drop");
        assert_eq!(c.transmitted(), 4);
        assert_eq!(c.dropped_net_decode(), 1);
        assert!(c.check_conservation(0).is_ok());
        assert!(c.check_value_conservation(0).is_ok());
    }

    #[test]
    fn send_bulk_matches_scalar_sends_counter_for_counter() {
        // Differential check for the bulk publish path: the same feed,
        // lockstep pacing, one run sending batch by batch and one
        // publishing the whole slice bulk, must produce bit-identical
        // counters and producer tallies.
        let feed = || -> Vec<Vec<WorkPacket>> {
            (0..12)
                .map(|i| {
                    let p = i % 2;
                    vec![wp(p, p as u32 + 1); i % 3 + 1]
                })
                .collect()
        };
        let scalar = {
            let (mut b, ids) = builder(1);
            b.add_producer(ids[0], move |h| {
                for batch in feed() {
                    assert!(h.send(batch));
                }
            });
            b.run(|_| VirtualClock::new())
        };
        let bulk = {
            let (mut b, ids) = builder(1);
            b.add_producer(ids[0], move |h| {
                assert!(h.send_bulk(feed()));
            });
            b.run(|_| VirtualClock::new())
        };
        assert_eq!(scalar.counters(), bulk.counters());
        assert_eq!(
            scalar.producers[0].sent_packets,
            bulk.producers[0].sent_packets
        );
        assert_eq!(
            scalar.producers[0].offered_packets,
            bulk.producers[0].offered_packets
        );
        assert_eq!(bulk.producers[0].sent_packets, 24);
    }

    #[test]
    fn try_send_bulk_accounts_backpressure_and_returns_buffers() {
        let (mut b, ids) = builder(1);
        b.add_producer(ids[0], |h| {
            // Park a batch so the depth-4 ring can absorb at most 4 more;
            // offer 6 batches bulk, of which the trailing 2 must bounce.
            // (The shard has not started pulling yet only probabilistically,
            // so assert on totals the accounting guarantees regardless.)
            let batches: Vec<Vec<WorkPacket>> = (0..6).map(|_| vec![wp(0, 1), wp(1, 2)]).collect();
            let returned = h.try_send_bulk(batches);
            for buf in &returned {
                assert!(buf.is_empty(), "returned buffers are cleared");
                assert!(buf.capacity() >= 2, "returned buffers keep capacity");
            }
        });
        let report = b.run(|_| VirtualClock::new());
        let p = &report.producers[0];
        assert_eq!(p.offered_packets, 12);
        assert_eq!(
            p.sent_packets + p.backpressure_packets,
            12,
            "every offered packet is sent or tallied as backpressure"
        );
        assert!(report.counters().check_conservation(0).is_ok());
        assert!(report.counters().check_value_conservation(0).is_ok());
    }

    #[test]
    fn send_bulk_counts_remainder_lost_when_rings_close() {
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 4,
            shard: ShardConfig::lockstep(),
            faults: FaultPlan::parse("panic@0").unwrap(),
            supervision: SupervisionConfig::immediate(0),
            ..RuntimeConfig::default()
        });
        let id = b.add_shard(|| {
            let cfg = WorkSwitchConfig::contiguous(2, 8).unwrap();
            WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
        });
        b.add_producer(id, |h| {
            // Keep publishing until the supervisor gives up and the ring
            // closes; the remainder of the failing bulk send is lost.
            loop {
                let batches: Vec<Vec<WorkPacket>> = (0..4).map(|_| vec![wp(0, 1)]).collect();
                if !h.send_bulk(batches) {
                    break;
                }
            }
        });
        let report = b.run(|_| VirtualClock::new());
        assert!(report.lost_packets() > 0, "the closed ring loses the tail");
        let p = &report.producers[0];
        assert_eq!(p.offered_packets, p.sent_packets + p.lost_packets);
        let c = report.counters();
        assert!(c.check_conservation(0).is_ok());
        assert!(c.check_value_conservation(0).is_ok());
    }

    #[test]
    fn producer_errors_surface_in_obs_errors() {
        let (mut b, ids) = builder(1);
        b.add_producer(ids[0], |h| {
            h.record_error("net ingress: set_read_timeout failed");
            h.send(vec![wp(0, 1)]);
        });
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.obs_errors.len(), 1);
        assert!(report.obs_errors[0].contains("set_read_timeout"));
        assert_eq!(report.counters().transmitted(), 1, "the run still served");
    }

    #[test]
    fn metrics_recording_attaches_histograms() {
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 4,
            shard: ShardConfig::lockstep(),
            record_metrics: true,
            ..RuntimeConfig::default()
        });
        let id = b.add_shard(|| {
            let cfg = WorkSwitchConfig::contiguous(2, 8).unwrap();
            WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
        });
        b.add_producer(id, |h| {
            h.send(vec![wp(0, 1)]);
        });
        let report = b.run(|_| VirtualClock::new());
        let metrics = report.shards[0].metrics.as_ref().expect("metrics recorded");
        assert_eq!(metrics.arrivals(), 1);
        assert_eq!(metrics.transmitted_packets(), 1);
    }

    #[test]
    fn panic_fault_restarts_and_conserves_packets() {
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 4,
            shard: ShardConfig::lockstep(),
            faults: FaultPlan::parse("panic@2").unwrap(),
            supervision: SupervisionConfig::immediate(3),
            ..RuntimeConfig::default()
        });
        let id = b.add_shard(|| {
            let cfg = WorkSwitchConfig::contiguous(2, 8).unwrap();
            WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
        });
        b.add_producer(id, |h| {
            for _ in 0..10 {
                assert!(h.send(vec![wp(0, 1), wp(1, 2)]), "ring reopens on restart");
            }
        });
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.shard_panics, 1);
        assert_eq!(report.restarts(), 1);
        assert_eq!(report.shards[0].shard, 0);
        assert!(!report.shards[0].gave_up);
        assert_eq!(report.lost_packets(), 0, "no send hit a closed ring");
        let c = report.counters();
        assert_eq!(c.arrived(), 20, "every offered packet is accounted");
        assert!(c.check_conservation(0).is_ok());
        assert!(c.check_value_conservation(0).is_ok());
    }

    #[test]
    fn exhausted_budget_gives_up_and_accounts_the_backlog() {
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 4,
            shard: ShardConfig::lockstep(),
            faults: FaultPlan::parse("panic@0").unwrap(),
            supervision: SupervisionConfig::immediate(0),
            ..RuntimeConfig::default()
        });
        let id = b.add_shard(|| {
            let cfg = WorkSwitchConfig::contiguous(2, 8).unwrap();
            WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
        });
        b.add_producer(id, |h| {
            for _ in 0..10 {
                // Sends start failing once the supervisor closes the ring;
                // both outcomes are legitimate and must be accounted.
                h.send(vec![wp(0, 1), wp(1, 2)]);
            }
        });
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.shard_panics, 1);
        assert_eq!(report.restarts(), 0);
        assert_eq!(report.shards_gave_up(), 1);
        assert!(report.shards[0].gave_up);
        assert!(report.shards[0].error.is_none(), "give-up is not an error");
        let c = report.counters();
        assert_eq!(c.transmitted(), 0, "the shard died before its first slot");
        assert_eq!(c.arrived(), 20, "backlog + lost sends are all accounted");
        assert_eq!(c.dropped_shard_failure(), 20);
        assert!(c.check_conservation(0).is_ok());
        assert!(c.check_value_conservation(0).is_ok());
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("smbm-runtime-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn telemetry_final_sample_matches_the_report() {
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 4,
            shard: ShardConfig::lockstep(),
            telemetry: Some(TelemetryConfig {
                // One initial and one final tick; nothing in between.
                interval: Duration::from_secs(3600),
                ..TelemetryConfig::default()
            }),
            ..RuntimeConfig::default()
        });
        let id = b.add_shard(|| {
            let cfg = WorkSwitchConfig::contiguous(2, 8).unwrap();
            WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
        });
        b.add_producer(id, |h| {
            for _ in 0..10 {
                assert!(h.send(vec![wp(0, 1), wp(1, 2)]));
            }
        });
        let report = b.run(|_| VirtualClock::new());
        assert!(report.obs_errors.is_empty(), "{:?}", report.obs_errors);
        let telemetry = report.telemetry.as_ref().expect("telemetry configured");
        assert!(telemetry.ticks >= 2, "initial + final tick at minimum");
        let last = telemetry.last().expect("at least the final sample");
        // The sampler stops after the shard joins, so the final sample is
        // exact, not merely eventually-consistent.
        assert_eq!(last.total.arrived, report.counters().arrived());
        assert_eq!(last.total.transmitted, report.counters().transmitted());
        assert_eq!(last.total.arrived_value, report.counters().arrived_value());
        assert_eq!(last.shards.len(), 1);
        assert_eq!(last.total.buffer_limit, 8);
        assert_eq!(last.total.ports, 2);
    }

    #[test]
    fn flight_dump_is_written_per_shard_death() {
        let path = temp_path("flight-panic.jsonl");
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 4,
            shard: ShardConfig::lockstep(),
            faults: FaultPlan::parse("panic@2").unwrap(),
            supervision: SupervisionConfig::immediate(3),
            flight: Some(FlightConfig::new(&path)),
            ..RuntimeConfig::default()
        });
        let id = b.add_shard(|| {
            let cfg = WorkSwitchConfig::contiguous(2, 8).unwrap();
            WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
        });
        b.add_producer(id, |h| {
            for _ in 0..10 {
                assert!(h.send(vec![wp(0, 1), wp(1, 2)]));
            }
        });
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.shard_panics, 1);
        assert_eq!(report.flight_dumps(), 1);
        assert_eq!(report.shards[0].flight_dumps, 1);
        let dump = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let header = dump.lines().next().expect("dump has a header");
        assert!(header.contains("\"type\":\"flight_dump\""), "{header}");
        assert!(header.contains("\"shard\":0"), "{header}");
        assert!(header.contains("\"reason\":\"panic\""), "{header}");
        assert!(
            dump.contains("\"type\":\"shard_panic\""),
            "the panic event itself is retained"
        );
        assert!(report.counters().check_conservation(0).is_ok());
    }

    #[test]
    fn exhausted_budget_writes_a_gave_up_dump() {
        let path = temp_path("flight-gave-up.jsonl");
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 4,
            shard: ShardConfig::lockstep(),
            faults: FaultPlan::parse("panic@0").unwrap(),
            supervision: SupervisionConfig::immediate(0),
            flight: Some(FlightConfig::new(&path)),
            ..RuntimeConfig::default()
        });
        let id = b.add_shard(|| {
            let cfg = WorkSwitchConfig::contiguous(2, 8).unwrap();
            WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
        });
        b.add_producer(id, |h| {
            h.send(vec![wp(0, 1)]);
        });
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.shards_gave_up(), 1);
        // One dump for the panic, one for the give-up.
        assert_eq!(report.flight_dumps(), 2);
        let dump = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(dump.contains("\"reason\":\"panic\""));
        assert!(dump.contains("\"reason\":\"gave_up\""));
        assert!(dump.contains("\"type\":\"shard_failed\""));
    }

    #[test]
    fn unwritable_flight_sink_degrades_to_an_error_not_a_crash() {
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 4,
            shard: ShardConfig::lockstep(),
            flight: Some(FlightConfig::new("/nonexistent-dir/flight.jsonl")),
            ..RuntimeConfig::default()
        });
        let id = b.add_shard(|| {
            let cfg = WorkSwitchConfig::contiguous(2, 8).unwrap();
            WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
        });
        b.add_producer(id, |h| {
            h.send(vec![wp(0, 1)]);
        });
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.counters().transmitted(), 1);
        assert_eq!(report.obs_errors.len(), 1);
        assert!(report.obs_errors[0].contains("flight sink"));
    }

    #[test]
    fn try_send_backpressure_is_counted_not_lost() {
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 1,
            shard: ShardConfig::freerun(),
            ..RuntimeConfig::default()
        });
        let id = b.add_shard(|| {
            let cfg = WorkSwitchConfig::contiguous(1, 2).unwrap();
            WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
        });
        // Stuff the ring faster than a 1-deep ring can possibly accept:
        // with only one slot, at least one try_send must bounce.
        b.add_producer(id, |h| {
            let mut rejected = 0;
            for _ in 0..5_000 {
                match h.try_send(vec![wp(0, 1)]) {
                    SendOutcome::Rejected(reason) => {
                        assert_eq!(reason, DropReason::Backpressure);
                        rejected += 1;
                    }
                    SendOutcome::Sent => {}
                    SendOutcome::Disconnected => panic!("shard vanished"),
                }
            }
            assert!(rejected > 0, "a 1-deep ring must bounce at least once");
        });
        let report = b.run(|_| VirtualClock::new());
        let c = report.counters();
        assert_eq!(c.arrived(), 5_000, "offered = through + backpressure");
        assert!(c.dropped_backpressure() > 0);
        assert_eq!(
            c.dropped_backpressure(),
            report.producers[0].backpressure_packets
        );
        assert!(c.check_conservation(0).is_ok());
    }
}
