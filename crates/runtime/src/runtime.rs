//! Thread orchestration: builds shards and producers, wires them with
//! ingress rings, runs them to completion, and folds everything into one
//! [`RuntimeReport`].
//!
//! Services are constructed *inside* their shard thread from a `Send`
//! factory, so nothing policy-shaped (trait objects holding interior state)
//! ever crosses a thread boundary — only plain-data reports come back.
//! Producer panics are contained by construction: an unwinding producer
//! drops its ring handle, the shard drains what was already queued, and
//! every thread still joins.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use smbm_obs::{HistogramRecorder, NullObserver};
use smbm_switch::{Counters, DropReason, PortId};

use crate::clock::Clock;
use crate::ring::{ring, Producer, PushError};
use crate::service::Service;
use crate::shard::{run_shard, Batch, ShardConfig, ShardReport};

/// Datapath-wide knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Ingress ring depth, in batches, per producer.
    pub ring_capacity: usize,
    /// Per-shard datapath configuration.
    pub shard: ShardConfig,
    /// Attach a [`HistogramRecorder`] to every shard and return it in the
    /// report.
    pub record_metrics: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            ring_capacity: 64,
            shard: ShardConfig::default(),
            record_metrics: false,
        }
    }
}

/// Identifies a shard added to a [`RuntimeBuilder`], for attaching
/// producers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardId(usize);

/// Atomic tallies a producer updates as it feeds its ring; read after join
/// even if the producer panicked mid-run, so partial counts survive.
#[derive(Debug, Default)]
struct ProducerStats {
    offered_packets: AtomicU64,
    sent_packets: AtomicU64,
    backpressure_packets: AtomicU64,
    backpressure_value: AtomicU64,
    lost_packets: AtomicU64,
}

/// What one producer did, reported after the runtime joins it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerReport {
    /// Shard this producer fed.
    pub shard: usize,
    /// Packets the producer attempted to send.
    pub offered_packets: u64,
    /// Packets that entered the ring.
    pub sent_packets: u64,
    /// Packets rejected because the ring was full ([`SendOutcome::Rejected`]
    /// with [`DropReason::Backpressure`]) — counted separately from policy
    /// drops at the switch.
    pub backpressure_packets: u64,
    /// Total value of backpressure-rejected packets.
    pub backpressure_value: u64,
    /// Packets lost because the shard disappeared mid-send.
    pub lost_packets: u64,
    /// The producer job panicked. Tallies reflect everything up to the
    /// panic; the shard drained whatever was already queued.
    pub panicked: bool,
}

/// Outcome of a non-blocking [`IngressHandle::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The batch entered the ring.
    Sent,
    /// The batch was rejected and discarded; the reason is always
    /// [`DropReason::Backpressure`] today.
    Rejected(DropReason),
    /// The shard is gone; the batch was discarded and no further sends can
    /// succeed.
    Disconnected,
}

/// A producer job's handle to its ingress ring: lossless blocking sends for
/// replay, lossy non-blocking sends (with explicit backpressure accounting)
/// for load generation.
pub struct IngressHandle<P: Copy> {
    producer: Producer<Batch<P>>,
    stats: Arc<ProducerStats>,
    meta: fn(P) -> (PortId, u32, u64),
}

impl<P: Copy> IngressHandle<P> {
    /// Sends a batch, blocking while the ring is full. Returns `false` when
    /// the shard is gone (the batch is counted lost and the job should
    /// stop).
    pub fn send(&mut self, packets: Vec<P>) -> bool {
        let n = packets.len() as u64;
        self.stats.offered_packets.fetch_add(n, Ordering::Relaxed);
        match self.producer.push(Batch::new(packets)) {
            Ok(()) => {
                self.stats.sent_packets.fetch_add(n, Ordering::Relaxed);
                true
            }
            Err(PushError::Full(_)) => unreachable!("blocking push never reports full"),
            Err(PushError::Closed(_)) => {
                self.stats.lost_packets.fetch_add(n, Ordering::Relaxed);
                false
            }
        }
    }

    /// Sends a batch without blocking. A full ring rejects the whole batch:
    /// its packets are discarded and tallied as backpressure (with their
    /// value), which [`RuntimeReport::counters`] folds into the datapath
    /// totals as [`DropReason::Backpressure`] drops.
    pub fn try_send(&mut self, packets: Vec<P>) -> SendOutcome {
        let n = packets.len() as u64;
        self.stats.offered_packets.fetch_add(n, Ordering::Relaxed);
        match self.producer.try_push(Batch::new(packets)) {
            Ok(()) => {
                self.stats.sent_packets.fetch_add(n, Ordering::Relaxed);
                SendOutcome::Sent
            }
            Err(PushError::Full(batch)) => {
                let value: u64 = batch.packets.iter().map(|&p| (self.meta)(p).2).sum();
                self.stats
                    .backpressure_packets
                    .fetch_add(n, Ordering::Relaxed);
                self.stats
                    .backpressure_value
                    .fetch_add(value, Ordering::Relaxed);
                SendOutcome::Rejected(DropReason::Backpressure)
            }
            Err(PushError::Closed(_)) => {
                self.stats.lost_packets.fetch_add(n, Ordering::Relaxed);
                SendOutcome::Disconnected
            }
        }
    }
}

type ServiceFactory<S> = Box<dyn FnOnce() -> S + Send>;
type ProducerJob<P> = Box<dyn FnOnce(&mut IngressHandle<P>) + Send>;

struct ShardSlot<S: Service> {
    factory: ServiceFactory<S>,
    producers: Vec<ProducerJob<S::Packet>>,
}

/// Assembles a datapath: shards (each owning one buffer core) and the
/// producer jobs that feed them, then runs everything to completion.
pub struct RuntimeBuilder<S: Service> {
    config: RuntimeConfig,
    shards: Vec<ShardSlot<S>>,
}

impl<S: Service> RuntimeBuilder<S> {
    /// Starts an empty datapath with the given configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        RuntimeBuilder {
            config,
            shards: Vec::new(),
        }
    }

    /// Adds a shard whose service is built by `factory` *inside* the shard
    /// thread. Returns the id to attach producers to.
    pub fn add_shard(&mut self, factory: impl FnOnce() -> S + Send + 'static) -> ShardId {
        self.shards.push(ShardSlot {
            factory: Box::new(factory),
            producers: Vec::new(),
        });
        ShardId(self.shards.len() - 1)
    }

    /// Adds a producer job feeding `shard` through its own SPSC ring. The
    /// job runs on a dedicated thread and owns its [`IngressHandle`]; when
    /// it returns (or panics) the ring closes and the shard sees
    /// end-of-stream.
    ///
    /// # Panics
    ///
    /// Panics if `shard` was not returned by this builder's
    /// [`RuntimeBuilder::add_shard`].
    pub fn add_producer(
        &mut self,
        shard: ShardId,
        job: impl FnOnce(&mut IngressHandle<S::Packet>) + Send + 'static,
    ) {
        self.shards[shard.0].producers.push(Box::new(job));
    }

    /// Spawns every shard and producer thread, waits for the datapath to
    /// finish (all producers done, all rings drained, buffers emptied when
    /// configured), and collects the reports. `clock_factory` builds each
    /// shard's pacing clock from its index.
    pub fn run<C: Clock + Send + 'static>(
        self,
        mut clock_factory: impl FnMut(usize) -> C,
    ) -> RuntimeReport {
        let started = Instant::now();
        let record_metrics = self.config.record_metrics;
        let shard_config = self.config.shard.clone();
        let mut shard_handles = Vec::new();
        let mut producer_handles = Vec::new();

        for (i, slot) in self.shards.into_iter().enumerate() {
            let mut consumers = Vec::with_capacity(slot.producers.len());
            for (j, job) in slot.producers.into_iter().enumerate() {
                let (tx, rx) = ring(self.config.ring_capacity);
                consumers.push(rx);
                let stats = Arc::new(ProducerStats::default());
                let mut handle = IngressHandle {
                    producer: tx,
                    stats: Arc::clone(&stats),
                    meta: S::meta,
                };
                let join = thread::Builder::new()
                    .name(format!("smbm-prod-{i}-{j}"))
                    .spawn(move || job(&mut handle))
                    .expect("spawn producer thread");
                producer_handles.push((i, stats, join));
            }

            let factory = slot.factory;
            let clock = clock_factory(i);
            let config = shard_config.clone();
            let join = thread::Builder::new()
                .name(format!("smbm-shard-{i}"))
                .spawn(move || {
                    let service = factory();
                    if record_metrics {
                        let mut metrics = HistogramRecorder::new();
                        let mut report =
                            run_shard(service, consumers, clock, &config, &mut metrics);
                        report.metrics = Some(metrics);
                        report
                    } else {
                        run_shard(service, consumers, clock, &config, &mut NullObserver)
                    }
                })
                .expect("spawn shard thread");
            shard_handles.push(join);
        }

        // Producers finish first in the happy path; join them before the
        // shards so a blocked producer (shard died) unblocks via its closed
        // ring rather than deadlocking the join order.
        let mut producers = Vec::with_capacity(producer_handles.len());
        for (shard, stats, join) in producer_handles {
            let panicked = join.join().is_err();
            producers.push(ProducerReport {
                shard,
                offered_packets: stats.offered_packets.load(Ordering::Relaxed),
                sent_packets: stats.sent_packets.load(Ordering::Relaxed),
                backpressure_packets: stats.backpressure_packets.load(Ordering::Relaxed),
                backpressure_value: stats.backpressure_value.load(Ordering::Relaxed),
                lost_packets: stats.lost_packets.load(Ordering::Relaxed),
                panicked,
            });
        }

        let mut shards = Vec::with_capacity(shard_handles.len());
        let mut shard_panics = 0;
        for join in shard_handles {
            match join.join() {
                Ok(report) => shards.push(report),
                Err(_) => shard_panics += 1,
            }
        }

        RuntimeReport {
            shards,
            producers,
            shard_panics,
            elapsed: started.elapsed(),
        }
    }
}

/// Everything the datapath did, shard by shard and producer by producer.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Per-shard reports, in shard order (panicked shards are absent).
    pub shards: Vec<ShardReport>,
    /// Per-producer reports, grouped by shard in spawn order.
    pub producers: Vec<ProducerReport>,
    /// Shard threads that panicked instead of reporting.
    pub shard_panics: usize,
    /// Wall-clock time from first spawn to last join.
    pub elapsed: Duration,
}

impl RuntimeReport {
    /// Datapath-wide counters: every shard's switch counters merged, plus
    /// producer-side backpressure rejections folded in as arrivals dropped
    /// with [`DropReason::Backpressure`] — so the conservation laws hold
    /// over the whole datapath, not just inside each switch.
    pub fn counters(&self) -> Counters {
        let mut total = Counters::new();
        for shard in &self.shards {
            total.merge(&shard.counters);
        }
        let bp_packets: u64 = self.producers.iter().map(|p| p.backpressure_packets).sum();
        let bp_value: u64 = self.producers.iter().map(|p| p.backpressure_value).sum();
        total.record_backpressure_bulk(bp_packets, bp_value);
        total
    }

    /// Sum of every shard's objective.
    pub fn score(&self) -> u64 {
        self.shards.iter().map(|s| s.score).sum()
    }

    /// Producer jobs that panicked.
    pub fn producer_panics(&self) -> usize {
        self.producers.iter().filter(|p| p.panicked).count()
    }

    /// Packets lost to mid-send shard disappearance, across all producers.
    pub fn lost_packets(&self) -> u64 {
        self.producers.iter().map(|p| p.lost_packets).sum()
    }

    /// Packets through admission control per second of datapath wall time.
    pub fn processed_per_sec(&self) -> f64 {
        let arrived: u64 = self.shards.iter().map(|s| s.counters.arrived()).sum();
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            arrived as f64 / secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::service::WorkService;
    use smbm_core::{Lwd, WorkRunner};
    use smbm_switch::{PortId, Work, WorkPacket, WorkSwitchConfig};

    fn builder(shards: usize) -> (RuntimeBuilder<WorkService<Lwd>>, Vec<ShardId>) {
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 4,
            shard: ShardConfig::lockstep(),
            record_metrics: false,
        });
        let ids = (0..shards)
            .map(|_| {
                b.add_shard(|| {
                    let cfg = WorkSwitchConfig::contiguous(2, 8).unwrap();
                    WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
                })
            })
            .collect();
        (b, ids)
    }

    fn wp(port: usize, w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(port), Work::new(w))
    }

    #[test]
    fn single_shard_single_producer_round_trip() {
        let (mut b, ids) = builder(1);
        b.add_producer(ids[0], |h| {
            for _ in 0..10 {
                assert!(h.send(vec![wp(0, 1), wp(1, 2)]));
            }
        });
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shard_panics, 0);
        assert_eq!(report.producer_panics(), 0);
        assert_eq!(report.counters().arrived(), 20);
        assert_eq!(report.counters().transmitted(), 20, "drain flushes all");
        assert_eq!(report.producers[0].sent_packets, 20);
        assert!(report.counters().check_conservation(0).is_ok());
    }

    #[test]
    fn two_shards_partition_the_load() {
        let (mut b, ids) = builder(2);
        for &id in &ids {
            b.add_producer(id, |h| {
                for _ in 0..5 {
                    h.send(vec![wp(0, 1)]);
                }
            });
        }
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.score(), 10);
        for shard in &report.shards {
            assert_eq!(shard.counters.transmitted(), 5);
        }
    }

    #[test]
    fn producer_panic_drains_and_joins() {
        let (mut b, ids) = builder(1);
        b.add_producer(ids[0], |h| {
            h.send(vec![wp(0, 1), wp(0, 1)]);
            panic!("producer died mid-run");
        });
        let report = b.run(|_| VirtualClock::new());
        assert_eq!(report.producer_panics(), 1);
        assert!(report.producers[0].panicked);
        assert_eq!(report.producers[0].sent_packets, 2);
        assert_eq!(report.shard_panics, 0);
        // The shard drained the in-flight batch before joining.
        assert_eq!(report.counters().transmitted(), 2);
        assert!(report.counters().check_conservation(0).is_ok());
    }

    #[test]
    fn metrics_recording_attaches_histograms() {
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 4,
            shard: ShardConfig::lockstep(),
            record_metrics: true,
        });
        let id = b.add_shard(|| {
            let cfg = WorkSwitchConfig::contiguous(2, 8).unwrap();
            WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
        });
        b.add_producer(id, |h| {
            h.send(vec![wp(0, 1)]);
        });
        let report = b.run(|_| VirtualClock::new());
        let metrics = report.shards[0].metrics.as_ref().expect("metrics recorded");
        assert_eq!(metrics.arrivals(), 1);
        assert_eq!(metrics.transmitted_packets(), 1);
    }

    #[test]
    fn try_send_backpressure_is_counted_not_lost() {
        let mut b = RuntimeBuilder::new(RuntimeConfig {
            ring_capacity: 1,
            shard: ShardConfig::freerun(),
            record_metrics: false,
        });
        let id = b.add_shard(|| {
            let cfg = WorkSwitchConfig::contiguous(1, 2).unwrap();
            WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
        });
        // Stuff the ring faster than a 1-deep ring can possibly accept:
        // with only one slot, at least one try_send must bounce.
        b.add_producer(id, |h| {
            let mut rejected = 0;
            for _ in 0..5_000 {
                match h.try_send(vec![wp(0, 1)]) {
                    SendOutcome::Rejected(reason) => {
                        assert_eq!(reason, DropReason::Backpressure);
                        rejected += 1;
                    }
                    SendOutcome::Sent => {}
                    SendOutcome::Disconnected => panic!("shard vanished"),
                }
            }
            assert!(rejected > 0, "a 1-deep ring must bounce at least once");
        });
        let report = b.run(|_| VirtualClock::new());
        let c = report.counters();
        assert_eq!(c.arrived(), 5_000, "offered = through + backpressure");
        assert!(c.dropped_backpressure() > 0);
        assert_eq!(
            c.dropped_backpressure(),
            report.producers[0].backpressure_packets
        );
        assert!(c.check_conservation(0).is_ok());
    }
}
