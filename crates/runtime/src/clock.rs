//! Cycle pacing for the transmission loop.
//!
//! A shard calls [`Clock::tick`] once at the top of every cycle. The
//! [`VirtualClock`] returns immediately — cycles run back-to-back, which is
//! what deterministic tests, replay, and throughput measurement want. The
//! [`WallClock`] sleeps until the next deadline of a fixed cycle rate, so
//! `smbm serve` can pace a trace at a configured cycles-per-second.

use std::time::{Duration, Instant};

/// Something that paces the shard loop, one call per cycle.
pub trait Clock {
    /// Blocks until the next cycle may start; returns that cycle's index
    /// (starting at 0).
    fn tick(&mut self) -> u64;

    /// Shifts the next pacing deadline by `nanos` (negative = earlier).
    /// Pacing-free clocks ignore it; the fault-injection harness uses it to
    /// skew a [`WallClock`] deadline and exercise catch-up behaviour.
    fn skew(&mut self, nanos: i64) {
        let _ = nanos;
    }

    /// How long a batch enqueued at `enqueued` waited in its ring, as this
    /// clock measures time. Wall clocks read the real elapsed time; the
    /// [`VirtualClock`] reports zero, so deterministic runs produce
    /// bit-identical reports instead of ones salted with scheduler noise.
    fn batch_wait(&self, enqueued: Instant) -> Duration {
        enqueued.elapsed()
    }
}

/// A clock that never waits: every cycle starts immediately. Deterministic
/// runs (the differential tests) and throughput measurement use this.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock {
    cycle: u64,
}

impl VirtualClock {
    /// Creates a clock at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for VirtualClock {
    fn tick(&mut self) -> u64 {
        let c = self.cycle;
        self.cycle += 1;
        c
    }

    fn batch_wait(&self, _enqueued: Instant) -> Duration {
        // Virtual time: no cycle ever waits, so neither does a batch.
        Duration::ZERO
    }
}

/// A fixed-rate wall clock: cycle `i` may not start before `start + i/hz`.
/// A loop that falls behind does not sleep until it has caught back up
/// (deadlines are fixed, not rescheduled), so the long-run rate converges to
/// the configured one.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    period: Duration,
    next_deadline: Option<Instant>,
    cycle: u64,
}

impl WallClock {
    /// Creates a clock running at `hz` cycles per second.
    ///
    /// # Panics
    ///
    /// Panics unless `hz` is finite and positive.
    pub fn from_hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "cycle rate must be positive");
        WallClock {
            period: Duration::from_secs_f64(1.0 / hz),
            next_deadline: None,
            cycle: 0,
        }
    }
}

impl Clock for WallClock {
    fn tick(&mut self) -> u64 {
        match self.next_deadline {
            None => self.next_deadline = Some(Instant::now() + self.period),
            Some(deadline) => {
                let now = Instant::now();
                if deadline > now {
                    std::thread::sleep(deadline - now);
                }
                self.next_deadline = Some(deadline + self.period);
            }
        }
        let c = self.cycle;
        self.cycle += 1;
        c
    }

    fn skew(&mut self, nanos: i64) {
        if let Some(deadline) = self.next_deadline {
            let shift = Duration::from_nanos(nanos.unsigned_abs());
            self.next_deadline = Some(if nanos >= 0 {
                deadline + shift
            } else {
                // Deadlines before "now" are fine: tick() just returns
                // immediately until the fixed schedule catches back up.
                deadline.checked_sub(shift).unwrap_or(deadline)
            });
        }
    }
}

/// A runtime-selected clock, for callers (the CLI) that choose pacing from
/// a flag without monomorphizing the whole runtime twice.
#[derive(Debug, Clone, Copy)]
pub enum AnyClock {
    /// Unpaced.
    Virtual(VirtualClock),
    /// Paced at a fixed rate.
    Wall(WallClock),
}

impl Clock for AnyClock {
    fn tick(&mut self) -> u64 {
        match self {
            AnyClock::Virtual(c) => c.tick(),
            AnyClock::Wall(c) => c.tick(),
        }
    }

    fn skew(&mut self, nanos: i64) {
        match self {
            AnyClock::Virtual(c) => c.skew(nanos),
            AnyClock::Wall(c) => c.skew(nanos),
        }
    }

    fn batch_wait(&self, enqueued: Instant) -> Duration {
        match self {
            AnyClock::Virtual(c) => c.batch_wait(enqueued),
            AnyClock::Wall(c) => c.batch_wait(enqueued),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_counts_cycles() {
        let mut c = VirtualClock::new();
        assert_eq!(c.tick(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
    }

    #[test]
    fn wall_clock_paces_cycles() {
        // 1 kHz: 10 cycles should take at least ~9 periods (the first tick
        // only arms the deadline).
        let mut c = WallClock::from_hz(1000.0);
        let start = Instant::now();
        for i in 0..10 {
            assert_eq!(c.tick(), i);
        }
        assert!(start.elapsed() >= Duration::from_millis(8));
    }

    #[test]
    fn any_clock_dispatches() {
        let mut c = AnyClock::Virtual(VirtualClock::new());
        assert_eq!(c.tick(), 0);
        let mut w = AnyClock::Wall(WallClock::from_hz(1_000_000.0));
        assert_eq!(w.tick(), 0);
        assert_eq!(w.tick(), 1);
    }

    #[test]
    fn batch_wait_is_zero_under_virtual_time() {
        let enqueued = Instant::now() - Duration::from_millis(5);
        assert_eq!(VirtualClock::new().batch_wait(enqueued), Duration::ZERO);
        assert!(WallClock::from_hz(1000.0).batch_wait(enqueued) >= Duration::from_millis(5));
        let any = AnyClock::Virtual(VirtualClock::new());
        assert_eq!(any.batch_wait(enqueued), Duration::ZERO);
    }

    #[test]
    fn skew_is_a_noop_on_virtual_clocks() {
        let mut c = VirtualClock::new();
        c.skew(1_000_000_000);
        c.skew(-1_000_000_000);
        assert_eq!(c.tick(), 0);
        assert_eq!(c.tick(), 1);
    }

    #[test]
    fn negative_skew_pulls_the_deadline_earlier() {
        // 10 Hz: the second tick would normally wait ~100 ms; pulling the
        // deadline back by a full second makes it (and the fixed schedule
        // behind it) immediately due.
        let mut c = WallClock::from_hz(10.0);
        c.tick(); // arms the deadline
        c.skew(-1_000_000_000);
        let start = Instant::now();
        c.tick();
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn positive_skew_pushes_the_deadline_later() {
        let mut c = WallClock::from_hz(1_000_000.0);
        c.tick();
        c.skew(40_000_000); // +40 ms
        let start = Instant::now();
        c.tick();
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn skew_before_first_tick_is_ignored() {
        let mut c = WallClock::from_hz(1_000_000.0);
        c.skew(5_000_000_000); // no deadline armed yet
        let start = Instant::now();
        c.tick();
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "cycle rate must be positive")]
    fn zero_rate_rejected() {
        let _ = WallClock::from_hz(0.0);
    }
}
