//! The switch shard: one thread owning one buffer core, consuming arrival
//! batches from its ingress rings and running the paper's two-phase slot
//! loop live.
//!
//! In [`IngestMode::Lockstep`] the shard blocks for exactly one batch per
//! open ring per cycle, so with a single producer sending one batch per
//! trace slot the shard executes the *exact* admission/transmission/flush
//! sequence of the offline simulation engine — the differential test pins
//! counter-for-counter equality. In [`IngestMode::Freerun`] the shard never
//! waits: it grabs whatever is queued and keeps transmitting, which is the
//! high-throughput loadgen configuration where full rings push back on
//! producers.

use std::time::{Duration, Instant};

use smbm_obs::{LogHistogram, Observer, Phase};
use smbm_switch::{ArrivalOutcome, Counters, FlushMode, FlushPolicy, Transmitted};

use crate::clock::Clock;
use crate::ring::{Consumer, TryPop};
use crate::service::Service;

/// Hard cap on drain cycles. The offline engine panics here; a live shard
/// must join, so it sets [`ShardReport::drain_stalled`] and exits instead.
const MAX_DRAIN_CYCLES: u64 = 100_000_000;

/// One unit of ingress: a burst of packets plus the instant it entered the
/// ring, so the shard can histogram queueing delay.
#[derive(Debug)]
pub struct Batch<P> {
    /// The packets, in arrival order.
    pub packets: Vec<P>,
    /// When the producer enqueued the batch.
    pub enqueued: Instant,
}

impl<P> Batch<P> {
    /// Creates a batch stamped with the current instant.
    pub fn new(packets: Vec<P>) -> Self {
        Batch {
            packets,
            enqueued: Instant::now(),
        }
    }
}

/// How the shard pulls from its ingress rings each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Block for one batch per open ring per cycle. Deterministic: the cycle
    /// sequence is a function of what producers send, independent of thread
    /// scheduling — this is the replay/differential configuration.
    Lockstep,
    /// Take whatever is queued without waiting. Throughput configuration:
    /// ring-full producers see explicit backpressure, and the shard keeps
    /// transmitting even through arrival gaps.
    Freerun,
}

/// Per-shard datapath knobs.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Ingest discipline per cycle.
    pub mode: IngestMode,
    /// Periodic flushouts, keyed on the number of ingested bursts (the live
    /// analogue of the engine's trace-slot index). `None` disables.
    pub flush: Option<FlushPolicy>,
    /// Whether to keep running arrival-free cycles after every ring closes
    /// until the buffer empties, so every admitted packet is counted.
    pub drain_at_end: bool,
}

impl ShardConfig {
    /// Lockstep ingest, no flushouts, final drain: the replica of the
    /// engine's `EngineConfig::draining()`.
    pub fn lockstep() -> Self {
        ShardConfig {
            mode: IngestMode::Lockstep,
            flush: None,
            drain_at_end: true,
        }
    }

    /// Freerun ingest, no flushouts, final drain: the loadgen default.
    pub fn freerun() -> Self {
        ShardConfig {
            mode: IngestMode::Freerun,
            flush: None,
            drain_at_end: true,
        }
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self::freerun()
    }
}

/// Everything a shard thread reports back when it joins: plain data only,
/// so nothing policy-shaped ever crosses threads.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The service's label (policy name).
    pub label: String,
    /// Lifetime switch counters (admissions, drops by class, push-outs,
    /// transmissions, latency). Backpressure rejections happen upstream in
    /// producers and are *not* included here; [`crate::RuntimeReport`]
    /// folds them in.
    pub counters: Counters,
    /// Final objective value (packets or value transmitted).
    pub score: u64,
    /// Slots executed, including drain slots (matches the engine's
    /// `RunSummary::slots` semantics under lockstep replay).
    pub slots: u64,
    /// Clock cycles consumed, including idle freerun cycles that ran no
    /// slot.
    pub cycles: u64,
    /// Arrival bursts ingested from the rings.
    pub bursts: u64,
    /// Mean buffer occupancy sampled at the end of every slot.
    pub mean_occupancy: f64,
    /// Peak buffer occupancy sampled at the end of any slot.
    pub max_occupancy: usize,
    /// Ring queueing delay of every ingested batch, in nanoseconds.
    pub ingress_latency_ns: LogHistogram,
    /// Wall-clock time from shard start to join.
    pub elapsed: Duration,
    /// The final drain hit [`MAX_DRAIN_CYCLES`] without emptying the buffer
    /// (a non-work-conserving service); the shard gave up so it could join.
    pub drain_stalled: bool,
    /// An admission error that aborted the loop (an inconsistent policy
    /// decision). Counters reflect everything up to the failure.
    pub error: Option<String>,
    /// Per-shard histogram metrics, when the runtime was asked to record
    /// them.
    pub metrics: Option<smbm_obs::HistogramRecorder>,
}

/// Runs one transmission phase, forwarding completions to the observer —
/// the exact analogue of the engine's `transmission` helper.
fn transmission<S: Service, O: Observer>(
    service: &mut S,
    slot: u64,
    scratch: &mut Vec<Transmitted>,
    obs: &mut O,
) {
    scratch.clear();
    service.transmission_into(scratch);
    for t in scratch.iter() {
        obs.transmitted(slot, t.port, t.latency(), t.value.get());
    }
}

/// Runs arrival-free slots until the buffer empties, mirroring the engine's
/// drain loop. Returns `false` if the guard tripped.
fn drain<S: Service, O: Observer>(
    service: &mut S,
    slots: &mut u64,
    scratch: &mut Vec<Transmitted>,
    obs: &mut O,
    occ_sum: Option<&mut u64>,
) -> bool {
    if service.occupancy() == 0 {
        return true;
    }
    obs.drain_start(*slots);
    let mut sum_acc = 0u64;
    let mut guard = 0u64;
    while service.occupancy() > 0 {
        let slot = *slots;
        obs.slot_start(slot);
        obs.phase_start(Phase::Drain);
        transmission(service, slot, scratch, obs);
        service.end_slot();
        obs.phase_end(Phase::Drain);
        *slots += 1;
        sum_acc += service.occupancy() as u64;
        obs.slot_end(slot, service.occupancy());
        guard += 1;
        if guard >= MAX_DRAIN_CYCLES {
            obs.drain_end(*slots);
            return false;
        }
    }
    if let Some(occ_sum) = occ_sum {
        *occ_sum += sum_acc;
    }
    obs.drain_end(*slots);
    true
}

/// Drives `service` from `rings` until every ring closes (and, when
/// configured, the buffer drains), reporting progress to `obs`.
///
/// The loop per cycle: tick the clock, ingest (per [`IngestMode`]), check
/// the flush schedule against the burst counter, then run the engine's slot
/// phases — arrival (when a burst was ingested), transmission, end-of-slot.
/// Closed rings are pruned; the loop exits when none remain.
pub fn run_shard<S: Service, C: Clock, O: Observer>(
    mut service: S,
    mut rings: Vec<Consumer<Batch<S::Packet>>>,
    mut clock: C,
    config: &ShardConfig,
    obs: &mut O,
) -> ShardReport {
    let started = Instant::now();
    let label = service.label();
    let mut slots = 0u64;
    let mut cycles = 0u64;
    let mut bursts = 0u64;
    let mut occ_sum = 0u64;
    let mut occ_max = 0usize;
    let mut ingress_latency_ns = LogHistogram::new();
    let mut scratch: Vec<Transmitted> = Vec::new();
    let mut burst: Vec<S::Packet> = Vec::new();
    let mut outcomes: Vec<ArrivalOutcome> = Vec::new();
    let mut drain_stalled = false;
    let mut error: Option<String> = None;

    'datapath: while !rings.is_empty() {
        clock.tick();
        cycles += 1;

        // Ingress phase: pull batches. Iterate by index so closed rings can
        // be pruned in place (order among survivors is preserved, keeping
        // lockstep replay deterministic).
        obs.phase_start(Phase::Ingress);
        burst.clear();
        let mut popped = false;
        let mut i = 0;
        while i < rings.len() {
            let item = match config.mode {
                IngestMode::Lockstep => match rings[i].pop() {
                    Some(b) => Some(b),
                    None => {
                        rings.remove(i);
                        continue;
                    }
                },
                IngestMode::Freerun => match rings[i].try_pop() {
                    TryPop::Item(b) => Some(b),
                    TryPop::Empty => None,
                    TryPop::Closed => {
                        rings.remove(i);
                        continue;
                    }
                },
            };
            if let Some(b) = item {
                let waited = b.enqueued.elapsed();
                ingress_latency_ns.record(waited.as_nanos().min(u64::MAX as u128) as u64);
                burst.extend_from_slice(&b.packets);
                popped = true;
            }
            i += 1;
        }
        obs.phase_end(Phase::Ingress);

        if !popped {
            if rings.is_empty() {
                break;
            }
            // Freerun idle cycle: nothing arrived and nothing is buffered —
            // yield so producers get the core (this box may have one).
            if service.occupancy() == 0 {
                std::thread::yield_now();
                continue;
            }
        }

        // Flush schedule, checked before this burst's arrivals — exactly
        // where the engine checks it, with the burst counter standing in
        // for the trace-slot index.
        if popped {
            if let Some(flush) = &config.flush {
                if flush.due(bursts) {
                    match flush.mode {
                        FlushMode::Drop => {
                            obs.phase_start(Phase::Flush);
                            let discarded = service.flush();
                            obs.flush(slots, discarded);
                            obs.phase_end(Phase::Flush);
                        }
                        FlushMode::Drain => {
                            // Mid-stream drain slots are excluded from the
                            // occupancy statistics, as in the engine.
                            if !drain(&mut service, &mut slots, &mut scratch, obs, None) {
                                drain_stalled = true;
                                break 'datapath;
                            }
                        }
                    }
                }
            }
        }

        let slot = slots;
        obs.slot_start(slot);
        if popped {
            obs.phase_start(Phase::Arrival);
            outcomes.clear();
            let result = service.offer_burst(&burst, &mut outcomes);
            // Emit arrival events for every packet that got an outcome, in
            // the engine's order: arrival, then its outcome.
            for (&pkt, outcome) in burst.iter().zip(outcomes.iter()) {
                let (port, work, value) = S::meta(pkt);
                obs.arrival(slot, port, work, value);
                match outcome {
                    ArrivalOutcome::Admitted => obs.admitted(slot, port),
                    ArrivalOutcome::PushedOut(victim) => {
                        obs.pushed_out(slot, *victim);
                        obs.admitted(slot, port);
                    }
                    ArrivalOutcome::Dropped(reason) => obs.dropped(slot, port, *reason),
                }
            }
            obs.phase_end(Phase::Arrival);
            bursts += 1;
            if let Err(e) = result {
                error = Some(e.to_string());
                obs.slot_end(slot, service.occupancy());
                break;
            }
        }
        obs.phase_start(Phase::Transmission);
        transmission(&mut service, slot, &mut scratch, obs);
        obs.phase_end(Phase::Transmission);
        service.end_slot();
        slots += 1;
        occ_sum += service.occupancy() as u64;
        occ_max = occ_max.max(service.occupancy());
        obs.slot_end(slot, service.occupancy());
    }

    if config.drain_at_end && error.is_none() && !drain_stalled {
        // The final drain contributes to the occupancy mean but not the
        // maximum (occupancy only falls while draining).
        if !drain(
            &mut service,
            &mut slots,
            &mut scratch,
            obs,
            Some(&mut occ_sum),
        ) {
            drain_stalled = true;
        }
    }

    ShardReport {
        label,
        counters: service.counters(),
        score: service.score(),
        slots,
        cycles,
        bursts,
        mean_occupancy: if slots == 0 {
            0.0
        } else {
            occ_sum as f64 / slots as f64
        },
        max_occupancy: occ_max,
        ingress_latency_ns,
        elapsed: started.elapsed(),
        drain_stalled,
        error,
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::ring::ring;
    use crate::service::WorkService;
    use smbm_core::{Lwd, WorkRunner};
    use smbm_obs::NullObserver;
    use smbm_switch::{PortId, Work, WorkPacket, WorkSwitchConfig};

    fn service(ports: u32, buffer: usize) -> WorkService<Lwd> {
        let cfg = WorkSwitchConfig::contiguous(ports, buffer).unwrap();
        WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
    }

    fn wp(port: usize, w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(port), Work::new(w))
    }

    #[test]
    fn lockstep_processes_queued_batches_then_drains() {
        let (tx, rx) = ring(8);
        tx.push(Batch::new(vec![wp(0, 1), wp(1, 2)])).unwrap();
        tx.push(Batch::new(vec![])).unwrap();
        drop(tx);
        let report = run_shard(
            service(2, 4),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut NullObserver,
        );
        assert_eq!(report.bursts, 2);
        assert_eq!(report.score, 2, "both packets transmit after draining");
        assert_eq!(report.counters.transmitted(), 2);
        assert!(report.error.is_none());
        assert!(!report.drain_stalled);
        assert_eq!(report.ingress_latency_ns.count(), 2);
        assert_eq!(report.label, "LWD");
    }

    #[test]
    fn freerun_survives_empty_polls() {
        let (tx, rx) = ring(8);
        tx.push(Batch::new(vec![wp(0, 1)])).unwrap();
        drop(tx);
        let report = run_shard(
            service(1, 2),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::freerun(),
            &mut NullObserver,
        );
        assert_eq!(report.score, 1);
        assert!(report.cycles >= report.slots);
    }

    #[test]
    fn flush_drop_discards_between_bursts() {
        let (tx, rx) = ring(8);
        // Burst 0 fills the buffer; the flush fires before burst 2's
        // arrivals (period 2), discarding what remains.
        tx.push(Batch::new(vec![wp(0, 1); 6])).unwrap();
        tx.push(Batch::new(vec![])).unwrap();
        tx.push(Batch::new(vec![wp(0, 1)])).unwrap();
        drop(tx);
        let config = ShardConfig {
            mode: IngestMode::Lockstep,
            flush: Some(FlushPolicy::every(2).dropping()),
            drain_at_end: false,
        };
        let report = run_shard(
            service(1, 8),
            vec![rx],
            VirtualClock::new(),
            &config,
            &mut NullObserver,
        );
        // Slots 0-1 transmit 2 of the 6; flush drops the other 4; the last
        // arrival transmits in slot 2.
        assert_eq!(report.score, 3);
        assert_eq!(report.counters.pushed_out(), 4, "flush counts as push-out");
    }

    #[test]
    fn multiple_rings_merge_in_ring_order() {
        let (tx_a, rx_a) = ring(4);
        let (tx_b, rx_b) = ring(4);
        tx_a.push(Batch::new(vec![wp(0, 1)])).unwrap();
        tx_b.push(Batch::new(vec![wp(1, 2)])).unwrap();
        drop(tx_a);
        drop(tx_b);
        let report = run_shard(
            service(2, 4),
            vec![rx_a, rx_b],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut NullObserver,
        );
        assert_eq!(report.counters.admitted(), 2);
        assert_eq!(report.score, 2);
    }

    #[test]
    fn empty_rings_produce_empty_report() {
        let (tx, rx) = ring::<Batch<WorkPacket>>(4);
        drop(tx);
        let report = run_shard(
            service(1, 2),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut NullObserver,
        );
        assert_eq!(report.slots, 0);
        assert_eq!(report.score, 0);
        assert_eq!(report.counters.arrived(), 0);
    }
}
