//! The switch shard: one thread owning one buffer core, consuming arrival
//! batches from its ingress rings and running the paper's two-phase slot
//! loop live.
//!
//! The slot phases themselves — flush, arrival, transmission, drain — live
//! in `smbm-datapath`'s [`SlotMachine`]; this module owns everything around
//! it: ring ingest, fault injection, clock pacing, and the crash-safe
//! progress record the supervisor reads after a panic (written through a
//! [`SlotHook`] at every slot boundary).
//!
//! In [`IngestMode::Lockstep`] the shard blocks for exactly one batch per
//! open ring per cycle, so with a single producer sending one batch per
//! trace slot the shard executes the *exact* admission/transmission/flush
//! sequence of the offline simulation engine — the differential test pins
//! counter-for-counter equality. In [`IngestMode::Freerun`] the shard never
//! waits: it grabs whatever is queued and keeps transmitting, which is the
//! high-throughput loadgen configuration where full rings push back on
//! producers.

use std::time::{Duration, Instant};

use smbm_datapath::{SlotHook, SlotMachine, SlotStats, MAX_BURST_BATCHES};
use smbm_obs::{LogHistogram, Observer, Phase};
use smbm_switch::{Counters, FlushPolicy};

use crate::clock::Clock;
use crate::faults::{FaultKind, ShardFaults};
use crate::ring::Consumer;
use crate::service::Service;

/// One unit of ingress: a burst of packets plus the instant it entered the
/// ring, so the shard can histogram queueing delay.
#[derive(Debug)]
pub struct Batch<P> {
    /// The packets, in arrival order.
    pub packets: Vec<P>,
    /// When the producer enqueued the batch.
    pub enqueued: Instant,
}

impl<P> Batch<P> {
    /// Creates a batch stamped with the current instant.
    pub fn new(packets: Vec<P>) -> Self {
        Batch {
            packets,
            enqueued: Instant::now(),
        }
    }
}

/// How the shard pulls from its ingress rings each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Block for one batch per open ring per cycle. Deterministic: the cycle
    /// sequence is a function of what producers send, independent of thread
    /// scheduling — this is the replay/differential configuration.
    Lockstep,
    /// Take whatever is queued without waiting. Throughput configuration:
    /// ring-full producers see explicit backpressure, and the shard keeps
    /// transmitting even through arrival gaps.
    Freerun,
}

/// Per-shard datapath knobs.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Ingest discipline per cycle.
    pub mode: IngestMode,
    /// Periodic flushouts, keyed on the number of ingested bursts (the live
    /// analogue of the engine's trace-slot index). `None` disables.
    pub flush: Option<FlushPolicy>,
    /// Whether to keep running arrival-free cycles after every ring closes
    /// until the buffer empties, so every admitted packet is counted.
    pub drain_at_end: bool,
}

impl ShardConfig {
    /// Lockstep ingest, no flushouts, final drain: the replica of the
    /// engine's `EngineConfig::draining()`.
    pub fn lockstep() -> Self {
        ShardConfig {
            mode: IngestMode::Lockstep,
            flush: None,
            drain_at_end: true,
        }
    }

    /// Freerun ingest, no flushouts, final drain: the loadgen default.
    pub fn freerun() -> Self {
        ShardConfig {
            mode: IngestMode::Freerun,
            flush: None,
            drain_at_end: true,
        }
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self::freerun()
    }
}

/// Everything a shard thread reports back when it joins: plain data only,
/// so nothing policy-shaped ever crosses threads.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Index of the shard in spawn order, so failure reports name the
    /// shard that died rather than a bare aggregate count.
    pub shard: usize,
    /// The service's label (policy name).
    pub label: String,
    /// Lifetime switch counters (admissions, drops by class, push-outs,
    /// transmissions, latency). Backpressure rejections happen upstream in
    /// producers and are *not* included here; [`crate::RuntimeReport`]
    /// folds them in.
    pub counters: Counters,
    /// Final objective value (packets or value transmitted).
    pub score: u64,
    /// Slots executed, including drain slots (matches the engine's
    /// `RunSummary::slots` semantics under lockstep replay).
    pub slots: u64,
    /// Clock cycles consumed, including idle freerun cycles that ran no
    /// slot.
    pub cycles: u64,
    /// Arrival bursts ingested from the rings.
    pub bursts: u64,
    /// Mean buffer occupancy sampled at the end of every slot.
    pub mean_occupancy: f64,
    /// Peak buffer occupancy sampled at the end of any slot.
    pub max_occupancy: usize,
    /// Ring queueing delay of every ingested batch, in nanoseconds, as
    /// measured by the shard's [`Clock`] (zero under virtual time, so
    /// deterministic runs stay bit-identical).
    pub ingress_latency_ns: LogHistogram,
    /// Wall-clock time from shard start to join.
    pub elapsed: Duration,
    /// The final drain hit [`smbm_datapath::MAX_DRAIN_SLOTS`] without
    /// emptying the buffer (a non-work-conserving service); the shard gave
    /// up so it could join.
    pub drain_stalled: bool,
    /// An admission error that aborted the loop (an inconsistent policy
    /// decision). Counters reflect everything up to the failure.
    pub error: Option<String>,
    /// Per-shard histogram metrics, when the runtime was asked to record
    /// them.
    pub metrics: Option<smbm_obs::HistogramRecorder>,
    /// Supervised restarts after panics (0 = the shard never died).
    pub restarts: u32,
    /// Packets found queued in the shard's ingress rings at panic instants:
    /// drained into the replacement incarnation, or dropped as
    /// shard-failure losses when the supervisor gave up.
    pub orphaned_packets: u64,
    /// The supervisor exhausted its restart budget and abandoned the
    /// shard; its remaining ring backlog was dropped as shard-failure.
    pub gave_up: bool,
    /// Flight-recorder post-mortem dumps written for this shard (one per
    /// death when a flight sink is configured).
    pub flight_dumps: u32,
}

/// Live accounting for one shard incarnation, written through as the loop
/// runs (not at exit) so that a panicking incarnation leaves an exact
/// record behind: the supervisor reads the last completed slot's counter
/// snapshot plus the ingest tallies to account every packet the dead shard
/// ever held. The slot machine writes it via [`SlotHook`] at every slot
/// boundary.
#[derive(Debug, Clone)]
pub(crate) struct ShardProgress {
    pub(crate) label: String,
    /// Machine slot accounting (slots, bursts, occupancy sum/max) at the
    /// last completed slot boundary.
    pub(crate) stats: SlotStats,
    pub(crate) cycles: u64,
    pub(crate) ingress_latency_ns: LogHistogram,
    /// Packets popped from the rings, including any not yet reflected in
    /// the counter snapshot (a mid-slot death leaves a gap).
    pub(crate) ingested_packets: u64,
    /// Total intrinsic value of the ingested packets.
    pub(crate) ingested_value: u64,
    /// Switch counters at the last completed slot boundary.
    pub(crate) counters: Counters,
    /// Objective at the last completed slot boundary.
    pub(crate) score: u64,
    /// Buffer occupancy at the last completed slot boundary.
    pub(crate) occupancy: usize,
    pub(crate) drain_stalled: bool,
    pub(crate) error: Option<String>,
}

impl ShardProgress {
    pub(crate) fn new() -> Self {
        ShardProgress {
            label: String::new(),
            stats: SlotStats::new(),
            cycles: 0,
            ingress_latency_ns: LogHistogram::new(),
            ingested_packets: 0,
            ingested_value: 0,
            counters: Counters::new(),
            score: 0,
            occupancy: 0,
            drain_stalled: false,
            error: None,
        }
    }

    /// Copies the machine's accounting and the service's state snapshot.
    fn record<S: Service>(&mut self, service: &S, stats: &SlotStats) {
        self.stats = *stats;
        self.counters = service.counters();
        self.score = service.score();
        self.occupancy = service.occupancy();
    }

    /// Folds another incarnation's progress into this accumulator: additive
    /// tallies sum, extrema take the max, and last-writer fields (label,
    /// occupancy, error) take `other`'s when present.
    pub(crate) fn absorb(&mut self, other: &ShardProgress) {
        if !other.label.is_empty() {
            self.label = other.label.clone();
        }
        self.stats.absorb(&other.stats);
        self.cycles += other.cycles;
        self.ingress_latency_ns.merge(&other.ingress_latency_ns);
        self.ingested_packets += other.ingested_packets;
        self.ingested_value += other.ingested_value;
        self.counters.merge(&other.counters);
        self.score += other.score;
        self.occupancy = other.occupancy;
        self.drain_stalled |= other.drain_stalled;
        if other.error.is_some() {
            self.error = other.error.clone();
        }
    }

    pub(crate) fn into_report(self, shard: usize, elapsed: Duration) -> ShardReport {
        ShardReport {
            shard,
            label: self.label,
            counters: self.counters,
            score: self.score,
            slots: self.stats.slots,
            cycles: self.cycles,
            bursts: self.stats.bursts,
            mean_occupancy: self.stats.mean_occupancy(),
            max_occupancy: self.stats.occ_max,
            ingress_latency_ns: self.ingress_latency_ns,
            elapsed,
            drain_stalled: self.drain_stalled,
            error: self.error,
            metrics: None,
            restarts: 0,
            orphaned_packets: 0,
            gave_up: false,
            flight_dumps: 0,
        }
    }
}

/// The machine calls this after every completed slot (arrival, idle, and
/// drain slots alike), keeping the crash-safe record exact to the last slot
/// boundary.
impl<S: Service> SlotHook<S> for ShardProgress {
    fn slot_done(&mut self, sys: &S, stats: &SlotStats) {
        self.record(sys, stats);
    }
}

/// Drives `service` from `rings` until every ring closes (and, when
/// configured, the buffer drains), reporting progress to `obs`.
///
/// The loop per cycle: tick the clock, ingest (per [`IngestMode`]), check
/// the flush schedule against the burst counter, then run the shared
/// [`SlotMachine`] slot phases — arrival (when a burst was ingested),
/// transmission, end-of-slot. Closed rings are pruned; the loop exits when
/// none remain.
pub fn run_shard<S: Service, C: Clock, O: Observer>(
    service: S,
    mut rings: Vec<Consumer<Batch<S::Packet>>>,
    clock: C,
    config: &ShardConfig,
    obs: &mut O,
) -> ShardReport {
    let started = Instant::now();
    let mut progress = ShardProgress::new();
    run_shard_core(
        service,
        &mut rings,
        clock,
        config,
        &mut ShardFaults::none(),
        &mut progress,
        obs,
    );
    progress.into_report(0, started.elapsed())
}

/// The ring-fed driver around the shared [`SlotMachine`], writing all
/// accounting through `progress` so the supervisor can recover an exact
/// record when an incarnation panics. `faults` is polled at the top of
/// every cycle (before ingest, so an injected panic leaves a zero mid-slot
/// gap and deterministic counters).
///
/// `rings` is borrowed, not owned: the supervisor keeps the consumers, so
/// a panicking incarnation's unwind never drops (and thus never closes)
/// them — the backlog survives in place for the replacement. Rings this
/// loop observes to be finished are pruned from the vector (and only then
/// dropped/closed).
pub(crate) fn run_shard_core<S: Service, C: Clock, O: Observer>(
    service: S,
    rings: &mut Vec<Consumer<Batch<S::Packet>>>,
    mut clock: C,
    config: &ShardConfig,
    faults: &mut ShardFaults,
    progress: &mut ShardProgress,
    obs: &mut O,
) {
    progress.label = service.label();
    obs.shard_started(service.buffer_limit(), service.ports());
    let mut machine = SlotMachine::new(service, config.flush).emit_queue_depth(true);
    let mut burst: Vec<S::Packet> = Vec::new();
    // Batches claimed from one ring this cycle; freerun drains the backlog
    // bulk (one ring claim — a single index advance — per ring, up to
    // `MAX_BURST_BATCHES`), lockstep stays at exactly one blocking pop per
    // ring for determinism.
    let mut claimed: Vec<Batch<S::Packet>> = Vec::new();

    'datapath: while !rings.is_empty() {
        clock.tick();
        progress.cycles += 1;

        for kind in faults.due(progress.stats.slots) {
            match kind {
                FaultKind::Panic => {
                    panic!(
                        "injected fault: shard panic at slot {}",
                        progress.stats.slots
                    )
                }
                FaultKind::Stall { cycles } => {
                    // The whole loop stops: burn the cycles without
                    // ingesting or transmitting anything.
                    for _ in 0..cycles {
                        clock.tick();
                        progress.cycles += 1;
                    }
                }
                FaultKind::SaturateIngress { cycles } => faults.pause_ingest(cycles),
                FaultKind::ClockSkew { nanos } => clock.skew(nanos),
            }
        }

        // Ingress phase: pull batches. Iterate by index so closed rings can
        // be pruned in place (order among survivors is preserved, keeping
        // lockstep replay deterministic). A saturate-ingress fault skips
        // the pulls entirely while transmission keeps running, so bounded
        // rings fill and push back on producers.
        obs.phase_start(Phase::Ingress);
        burst.clear();
        let mut popped = false;
        // `ingest_paused` burns one pause cycle per call; latch it so the
        // idle branch below sees this cycle's verdict without burning two.
        let paused = faults.ingest_paused();
        if !paused {
            let mut i = 0;
            while i < rings.len() {
                match config.mode {
                    IngestMode::Lockstep => match rings[i].pop() {
                        Some(b) => claimed.push(b),
                        None => {
                            rings.remove(i);
                            continue;
                        }
                    },
                    IngestMode::Freerun => {
                        // Claim the whole backlog (bounded) with one bulk
                        // index advance instead of one `try_pop` per batch.
                        let r = rings[i].pop_bulk(&mut claimed, MAX_BURST_BATCHES);
                        if r.popped == 0 && r.closed {
                            rings.remove(i);
                            continue;
                        }
                    }
                }
                for b in claimed.drain(..) {
                    let waited = clock.batch_wait(b.enqueued);
                    progress
                        .ingress_latency_ns
                        .record(waited.as_nanos().min(u64::MAX as u128) as u64);
                    progress.ingested_packets += b.packets.len() as u64;
                    // One pass over the batch: tally value and append to
                    // the burst together, instead of iterating the slice
                    // for the tally and copying it again afterwards.
                    burst.reserve(b.packets.len());
                    for &pkt in &b.packets {
                        progress.ingested_value += S::meta(pkt).2;
                        burst.push(pkt);
                    }
                    popped = true;
                }
                i += 1;
            }
        }
        obs.phase_end(Phase::Ingress);

        if !popped {
            if rings.is_empty() {
                break;
            }
            if machine.occupancy() == 0 {
                // Freerun idle cycle: nothing arrived and nothing is
                // buffered — park on the ring instead of burning the core
                // with empty polls. With one ring the shard sleeps until
                // data or close (the producer's publish unparks it); with
                // several it parks on ring 0 with a short timeout and
                // re-polls the rest. Under a saturate-ingress fault only
                // yield: the pause cycles must keep burning (that is the
                // fault being injected), not sleep through the ring.
                if paused {
                    std::thread::yield_now();
                } else if rings.len() == 1 {
                    rings[0].wait_nonempty(None);
                } else {
                    rings[0].wait_nonempty(Some(Duration::from_micros(200)));
                }
                continue;
            }
            // Freerun cycle with backlog: transmit without arrivals.
            machine.idle_slot(obs, progress);
            continue;
        }

        // Flush schedule, checked before this burst's arrivals — exactly
        // where the engine checks it, with the burst counter standing in
        // for the trace-slot index.
        if !machine.flush_check(obs, progress) {
            progress.drain_stalled = true;
            break 'datapath;
        }

        let slot = machine.stats().slots;
        if let Err(e) = machine.step(&burst, obs, progress) {
            // The slot is left incomplete: emit the end-of-slot events the
            // machine skipped, record the failure, and join.
            progress.error = Some(e.to_string());
            obs.slot_end(slot, machine.occupancy());
            obs.queue_depth(slot, machine.system().max_queue_depth() as u64);
            let stats = *machine.stats();
            progress.record(machine.system(), &stats);
            break;
        }
    }

    if config.drain_at_end && progress.error.is_none() && !progress.drain_stalled {
        // The final drain contributes to the occupancy mean but not the
        // maximum (occupancy only falls while draining).
        if !machine.drain(obs, progress, true) {
            progress.drain_stalled = true;
        }
    }

    let stats = *machine.stats();
    progress.record(machine.system(), &stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::ring::ring;
    use crate::service::WorkService;
    use smbm_core::{Lwd, WorkRunner};
    use smbm_obs::NullObserver;
    use smbm_switch::{PortId, Work, WorkPacket, WorkSwitchConfig};

    fn service(ports: u32, buffer: usize) -> WorkService<Lwd> {
        let cfg = WorkSwitchConfig::contiguous(ports, buffer).unwrap();
        WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
    }

    fn wp(port: usize, w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(port), Work::new(w))
    }

    #[test]
    fn lockstep_processes_queued_batches_then_drains() {
        let (tx, rx) = ring(8);
        tx.push(Batch::new(vec![wp(0, 1), wp(1, 2)])).unwrap();
        tx.push(Batch::new(vec![])).unwrap();
        drop(tx);
        let report = run_shard(
            service(2, 4),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut NullObserver,
        );
        assert_eq!(report.bursts, 2);
        assert_eq!(report.score, 2, "both packets transmit after draining");
        assert_eq!(report.counters.transmitted(), 2);
        assert!(report.error.is_none());
        assert!(!report.drain_stalled);
        assert_eq!(report.ingress_latency_ns.count(), 2);
        assert_eq!(report.label, "LWD");
    }

    #[test]
    fn freerun_survives_empty_polls() {
        let (tx, rx) = ring(8);
        tx.push(Batch::new(vec![wp(0, 1)])).unwrap();
        drop(tx);
        let report = run_shard(
            service(1, 2),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::freerun(),
            &mut NullObserver,
        );
        assert_eq!(report.score, 1);
        assert!(report.cycles >= report.slots);
    }

    #[test]
    fn freerun_claims_the_backlog_as_one_burst() {
        // Five batches already queued when the shard starts: the bulk drain
        // must claim them in a single cycle and fold them into one arrival
        // burst (the scalar path would have run five one-batch bursts).
        let (tx, rx) = ring(8);
        for _ in 0..5 {
            tx.push(Batch::new(vec![wp(0, 1)])).unwrap();
        }
        drop(tx);
        let report = run_shard(
            service(1, 8),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::freerun(),
            &mut NullObserver,
        );
        assert_eq!(report.bursts, 1, "backlog coalesced into one burst");
        assert_eq!(report.ingress_latency_ns.count(), 5, "latency per batch");
        assert_eq!(report.counters.arrived(), 5);
        assert_eq!(report.score, 5);
        assert!(report.error.is_none());
    }

    #[test]
    fn freerun_burst_is_bounded_by_max_burst_batches() {
        // More batches than MAX_BURST_BATCHES queued: one cycle must not
        // swallow them all, the bound splits them across several bursts.
        let n = MAX_BURST_BATCHES + 3;
        let (tx, rx) = ring(n);
        for _ in 0..n {
            tx.push(Batch::new(vec![wp(0, 1)])).unwrap();
        }
        drop(tx);
        let report = run_shard(
            service(1, n),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::freerun(),
            &mut NullObserver,
        );
        assert_eq!(report.bursts, 2, "bounded drain takes two cycles");
        assert_eq!(report.counters.arrived(), n as u64);
        assert_eq!(report.score, n as u64);
    }

    #[test]
    fn flush_drop_discards_between_bursts() {
        let (tx, rx) = ring(8);
        // Burst 0 fills the buffer; the flush fires before burst 2's
        // arrivals (period 2), discarding what remains.
        tx.push(Batch::new(vec![wp(0, 1); 6])).unwrap();
        tx.push(Batch::new(vec![])).unwrap();
        tx.push(Batch::new(vec![wp(0, 1)])).unwrap();
        drop(tx);
        let config = ShardConfig {
            mode: IngestMode::Lockstep,
            flush: Some(FlushPolicy::every(2).dropping()),
            drain_at_end: false,
        };
        let report = run_shard(
            service(1, 8),
            vec![rx],
            VirtualClock::new(),
            &config,
            &mut NullObserver,
        );
        // Slots 0-1 transmit 2 of the 6; flush drops the other 4; the last
        // arrival transmits in slot 2.
        assert_eq!(report.score, 3);
        assert_eq!(report.counters.pushed_out(), 4, "flush counts as push-out");
    }

    #[test]
    fn multiple_rings_merge_in_ring_order() {
        let (tx_a, rx_a) = ring(4);
        let (tx_b, rx_b) = ring(4);
        tx_a.push(Batch::new(vec![wp(0, 1)])).unwrap();
        tx_b.push(Batch::new(vec![wp(1, 2)])).unwrap();
        drop(tx_a);
        drop(tx_b);
        let report = run_shard(
            service(2, 4),
            vec![rx_a, rx_b],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut NullObserver,
        );
        assert_eq!(report.counters.admitted(), 2);
        assert_eq!(report.score, 2);
    }

    #[test]
    fn stall_fault_burns_cycles_without_losing_packets() {
        use crate::faults::FaultPlan;
        let (tx, rx) = ring(8);
        tx.push(Batch::new(vec![wp(0, 1)])).unwrap();
        drop(tx);
        let mut faults = FaultPlan::parse("stall@0*50").unwrap().for_shard(0);
        let mut progress = ShardProgress::new();
        run_shard_core(
            service(1, 2),
            &mut vec![rx],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut faults,
            &mut progress,
            &mut NullObserver,
        );
        assert!(
            progress.cycles >= 51,
            "stall burned {} cycles",
            progress.cycles
        );
        assert_eq!(progress.counters.transmitted(), 1);
        assert_eq!(faults.unfired(), 0);
    }

    #[test]
    fn saturate_ingress_defers_popping_without_losing_packets() {
        use crate::faults::FaultPlan;
        let (tx, rx) = ring(8);
        tx.push(Batch::new(vec![wp(0, 1), wp(0, 1)])).unwrap();
        drop(tx);
        let mut faults = FaultPlan::parse("sat@0*4").unwrap().for_shard(0);
        let mut progress = ShardProgress::new();
        run_shard_core(
            service(1, 4),
            &mut vec![rx],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut faults,
            &mut progress,
            &mut NullObserver,
        );
        assert!(progress.cycles >= 5, "pause cycles burn before the pop");
        assert_eq!(progress.ingested_packets, 2);
        assert_eq!(progress.counters.arrived(), 2);
        assert_eq!(progress.counters.transmitted(), 2);
    }

    #[test]
    fn empty_rings_produce_empty_report() {
        let (tx, rx) = ring::<Batch<WorkPacket>>(4);
        drop(tx);
        let report = run_shard(
            service(1, 2),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut NullObserver,
        );
        assert_eq!(report.slots, 0);
        assert_eq!(report.score, 0);
        assert_eq!(report.counters.arrived(), 0);
    }

    #[test]
    fn virtual_clock_reports_zero_ingress_latency() {
        let (tx, rx) = ring(8);
        tx.push(Batch {
            packets: vec![wp(0, 1)],
            // Enqueued "long ago": wall clocks would record ~1h of wait.
            enqueued: Instant::now() - Duration::from_secs(3600),
        })
        .unwrap();
        drop(tx);
        let report = run_shard(
            service(1, 2),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut NullObserver,
        );
        assert_eq!(report.ingress_latency_ns.count(), 1);
        assert_eq!(
            report.ingress_latency_ns.max(),
            0,
            "virtual time never waits, so lockstep reports are reproducible"
        );
    }
}
