//! The switch shard: one thread owning one buffer core, consuming arrival
//! batches from its ingress rings and running the paper's two-phase slot
//! loop live.
//!
//! In [`IngestMode::Lockstep`] the shard blocks for exactly one batch per
//! open ring per cycle, so with a single producer sending one batch per
//! trace slot the shard executes the *exact* admission/transmission/flush
//! sequence of the offline simulation engine — the differential test pins
//! counter-for-counter equality. In [`IngestMode::Freerun`] the shard never
//! waits: it grabs whatever is queued and keeps transmitting, which is the
//! high-throughput loadgen configuration where full rings push back on
//! producers.

use std::time::{Duration, Instant};

use smbm_obs::{LogHistogram, Observer, Phase};
use smbm_switch::{ArrivalOutcome, Counters, FlushMode, FlushPolicy, Transmitted};

use crate::clock::Clock;
use crate::faults::{FaultKind, ShardFaults};
use crate::ring::{Consumer, TryPop};
use crate::service::Service;

/// Hard cap on drain cycles. The offline engine panics here; a live shard
/// must join, so it sets [`ShardReport::drain_stalled`] and exits instead.
const MAX_DRAIN_CYCLES: u64 = 100_000_000;

/// One unit of ingress: a burst of packets plus the instant it entered the
/// ring, so the shard can histogram queueing delay.
#[derive(Debug)]
pub struct Batch<P> {
    /// The packets, in arrival order.
    pub packets: Vec<P>,
    /// When the producer enqueued the batch.
    pub enqueued: Instant,
}

impl<P> Batch<P> {
    /// Creates a batch stamped with the current instant.
    pub fn new(packets: Vec<P>) -> Self {
        Batch {
            packets,
            enqueued: Instant::now(),
        }
    }
}

/// How the shard pulls from its ingress rings each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Block for one batch per open ring per cycle. Deterministic: the cycle
    /// sequence is a function of what producers send, independent of thread
    /// scheduling — this is the replay/differential configuration.
    Lockstep,
    /// Take whatever is queued without waiting. Throughput configuration:
    /// ring-full producers see explicit backpressure, and the shard keeps
    /// transmitting even through arrival gaps.
    Freerun,
}

/// Per-shard datapath knobs.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Ingest discipline per cycle.
    pub mode: IngestMode,
    /// Periodic flushouts, keyed on the number of ingested bursts (the live
    /// analogue of the engine's trace-slot index). `None` disables.
    pub flush: Option<FlushPolicy>,
    /// Whether to keep running arrival-free cycles after every ring closes
    /// until the buffer empties, so every admitted packet is counted.
    pub drain_at_end: bool,
}

impl ShardConfig {
    /// Lockstep ingest, no flushouts, final drain: the replica of the
    /// engine's `EngineConfig::draining()`.
    pub fn lockstep() -> Self {
        ShardConfig {
            mode: IngestMode::Lockstep,
            flush: None,
            drain_at_end: true,
        }
    }

    /// Freerun ingest, no flushouts, final drain: the loadgen default.
    pub fn freerun() -> Self {
        ShardConfig {
            mode: IngestMode::Freerun,
            flush: None,
            drain_at_end: true,
        }
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self::freerun()
    }
}

/// Everything a shard thread reports back when it joins: plain data only,
/// so nothing policy-shaped ever crosses threads.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Index of the shard in spawn order, so failure reports name the
    /// shard that died rather than a bare aggregate count.
    pub shard: usize,
    /// The service's label (policy name).
    pub label: String,
    /// Lifetime switch counters (admissions, drops by class, push-outs,
    /// transmissions, latency). Backpressure rejections happen upstream in
    /// producers and are *not* included here; [`crate::RuntimeReport`]
    /// folds them in.
    pub counters: Counters,
    /// Final objective value (packets or value transmitted).
    pub score: u64,
    /// Slots executed, including drain slots (matches the engine's
    /// `RunSummary::slots` semantics under lockstep replay).
    pub slots: u64,
    /// Clock cycles consumed, including idle freerun cycles that ran no
    /// slot.
    pub cycles: u64,
    /// Arrival bursts ingested from the rings.
    pub bursts: u64,
    /// Mean buffer occupancy sampled at the end of every slot.
    pub mean_occupancy: f64,
    /// Peak buffer occupancy sampled at the end of any slot.
    pub max_occupancy: usize,
    /// Ring queueing delay of every ingested batch, in nanoseconds.
    pub ingress_latency_ns: LogHistogram,
    /// Wall-clock time from shard start to join.
    pub elapsed: Duration,
    /// The final drain hit [`MAX_DRAIN_CYCLES`] without emptying the buffer
    /// (a non-work-conserving service); the shard gave up so it could join.
    pub drain_stalled: bool,
    /// An admission error that aborted the loop (an inconsistent policy
    /// decision). Counters reflect everything up to the failure.
    pub error: Option<String>,
    /// Per-shard histogram metrics, when the runtime was asked to record
    /// them.
    pub metrics: Option<smbm_obs::HistogramRecorder>,
    /// Supervised restarts after panics (0 = the shard never died).
    pub restarts: u32,
    /// Packets found queued in the shard's ingress rings at panic instants:
    /// drained into the replacement incarnation, or dropped as
    /// shard-failure losses when the supervisor gave up.
    pub orphaned_packets: u64,
    /// The supervisor exhausted its restart budget and abandoned the
    /// shard; its remaining ring backlog was dropped as shard-failure.
    pub gave_up: bool,
    /// Flight-recorder post-mortem dumps written for this shard (one per
    /// death when a flight sink is configured).
    pub flight_dumps: u32,
}

/// Live accounting for one shard incarnation, written through as the loop
/// runs (not at exit) so that a panicking incarnation leaves an exact
/// record behind: the supervisor reads the last completed slot's counter
/// snapshot plus the ingest tallies to account every packet the dead shard
/// ever held.
#[derive(Debug, Clone)]
pub(crate) struct ShardProgress {
    pub(crate) label: String,
    pub(crate) slots: u64,
    pub(crate) cycles: u64,
    pub(crate) bursts: u64,
    pub(crate) occ_sum: u64,
    pub(crate) occ_max: usize,
    pub(crate) ingress_latency_ns: LogHistogram,
    /// Packets popped from the rings, including any not yet reflected in
    /// the counter snapshot (a mid-slot death leaves a gap).
    pub(crate) ingested_packets: u64,
    /// Total intrinsic value of the ingested packets.
    pub(crate) ingested_value: u64,
    /// Switch counters at the last completed slot boundary.
    pub(crate) counters: Counters,
    /// Objective at the last completed slot boundary.
    pub(crate) score: u64,
    /// Buffer occupancy at the last completed slot boundary.
    pub(crate) occupancy: usize,
    pub(crate) drain_stalled: bool,
    pub(crate) error: Option<String>,
}

impl ShardProgress {
    pub(crate) fn new() -> Self {
        ShardProgress {
            label: String::new(),
            slots: 0,
            cycles: 0,
            bursts: 0,
            occ_sum: 0,
            occ_max: 0,
            ingress_latency_ns: LogHistogram::new(),
            ingested_packets: 0,
            ingested_value: 0,
            counters: Counters::new(),
            score: 0,
            occupancy: 0,
            drain_stalled: false,
            error: None,
        }
    }

    fn snapshot<S: Service>(&mut self, service: &S) {
        self.counters = service.counters();
        self.score = service.score();
        self.occupancy = service.occupancy();
    }

    /// Folds another incarnation's progress into this accumulator: additive
    /// tallies sum, extrema take the max, and last-writer fields (label,
    /// occupancy, error) take `other`'s when present.
    pub(crate) fn absorb(&mut self, other: &ShardProgress) {
        if !other.label.is_empty() {
            self.label = other.label.clone();
        }
        self.slots += other.slots;
        self.cycles += other.cycles;
        self.bursts += other.bursts;
        self.occ_sum += other.occ_sum;
        self.occ_max = self.occ_max.max(other.occ_max);
        self.ingress_latency_ns.merge(&other.ingress_latency_ns);
        self.ingested_packets += other.ingested_packets;
        self.ingested_value += other.ingested_value;
        self.counters.merge(&other.counters);
        self.score += other.score;
        self.occupancy = other.occupancy;
        self.drain_stalled |= other.drain_stalled;
        if other.error.is_some() {
            self.error = other.error.clone();
        }
    }

    pub(crate) fn into_report(self, shard: usize, elapsed: Duration) -> ShardReport {
        ShardReport {
            shard,
            label: self.label,
            counters: self.counters,
            score: self.score,
            slots: self.slots,
            cycles: self.cycles,
            bursts: self.bursts,
            mean_occupancy: if self.slots == 0 {
                0.0
            } else {
                self.occ_sum as f64 / self.slots as f64
            },
            max_occupancy: self.occ_max,
            ingress_latency_ns: self.ingress_latency_ns,
            elapsed,
            drain_stalled: self.drain_stalled,
            error: self.error,
            metrics: None,
            restarts: 0,
            orphaned_packets: 0,
            gave_up: false,
            flight_dumps: 0,
        }
    }
}

/// Runs one transmission phase, forwarding completions to the observer —
/// the exact analogue of the engine's `transmission` helper.
fn transmission<S: Service, O: Observer>(
    service: &mut S,
    slot: u64,
    scratch: &mut Vec<Transmitted>,
    obs: &mut O,
) {
    scratch.clear();
    service.transmission_into(scratch);
    for t in scratch.iter() {
        obs.transmitted(slot, t.port, t.latency(), t.value.get());
    }
}

/// Runs arrival-free slots until the buffer empties, mirroring the engine's
/// drain loop. Returns `false` if the guard tripped.
fn drain<S: Service, O: Observer>(
    service: &mut S,
    progress: &mut ShardProgress,
    scratch: &mut Vec<Transmitted>,
    obs: &mut O,
    count_occupancy: bool,
) -> bool {
    if service.occupancy() == 0 {
        return true;
    }
    obs.drain_start(progress.slots);
    let mut sum_acc = 0u64;
    let mut guard = 0u64;
    while service.occupancy() > 0 {
        let slot = progress.slots;
        obs.slot_start(slot);
        obs.phase_start(Phase::Drain);
        transmission(service, slot, scratch, obs);
        service.end_slot();
        obs.phase_end(Phase::Drain);
        progress.slots += 1;
        sum_acc += service.occupancy() as u64;
        obs.slot_end(slot, service.occupancy());
        obs.queue_depth(slot, service.max_queue_depth() as u64);
        progress.snapshot(service);
        guard += 1;
        if guard >= MAX_DRAIN_CYCLES {
            obs.drain_end(progress.slots);
            return false;
        }
    }
    if count_occupancy {
        progress.occ_sum += sum_acc;
    }
    obs.drain_end(progress.slots);
    true
}

/// Drives `service` from `rings` until every ring closes (and, when
/// configured, the buffer drains), reporting progress to `obs`.
///
/// The loop per cycle: tick the clock, ingest (per [`IngestMode`]), check
/// the flush schedule against the burst counter, then run the engine's slot
/// phases — arrival (when a burst was ingested), transmission, end-of-slot.
/// Closed rings are pruned; the loop exits when none remain.
pub fn run_shard<S: Service, C: Clock, O: Observer>(
    service: S,
    rings: Vec<Consumer<Batch<S::Packet>>>,
    clock: C,
    config: &ShardConfig,
    obs: &mut O,
) -> ShardReport {
    let started = Instant::now();
    let mut progress = ShardProgress::new();
    run_shard_core(
        service,
        rings,
        clock,
        config,
        &mut ShardFaults::none(),
        &mut progress,
        obs,
    );
    progress.into_report(0, started.elapsed())
}

/// The shard loop proper, writing all accounting through `progress` so the
/// supervisor can recover an exact record when an incarnation panics.
/// `faults` is polled at the top of every cycle (before ingest, so an
/// injected panic leaves a zero mid-slot gap and deterministic counters).
pub(crate) fn run_shard_core<S: Service, C: Clock, O: Observer>(
    mut service: S,
    mut rings: Vec<Consumer<Batch<S::Packet>>>,
    mut clock: C,
    config: &ShardConfig,
    faults: &mut ShardFaults,
    progress: &mut ShardProgress,
    obs: &mut O,
) {
    progress.label = service.label();
    obs.shard_started(service.buffer_limit(), service.ports());
    let mut scratch: Vec<Transmitted> = Vec::new();
    let mut burst: Vec<S::Packet> = Vec::new();
    let mut outcomes: Vec<ArrivalOutcome> = Vec::new();

    'datapath: while !rings.is_empty() {
        clock.tick();
        progress.cycles += 1;

        for kind in faults.due(progress.slots) {
            match kind {
                FaultKind::Panic => {
                    panic!("injected fault: shard panic at slot {}", progress.slots)
                }
                FaultKind::Stall { cycles } => {
                    // The whole loop stops: burn the cycles without
                    // ingesting or transmitting anything.
                    for _ in 0..cycles {
                        clock.tick();
                        progress.cycles += 1;
                    }
                }
                FaultKind::SaturateIngress { cycles } => faults.pause_ingest(cycles),
                FaultKind::ClockSkew { nanos } => clock.skew(nanos),
            }
        }

        // Ingress phase: pull batches. Iterate by index so closed rings can
        // be pruned in place (order among survivors is preserved, keeping
        // lockstep replay deterministic). A saturate-ingress fault skips
        // the pulls entirely while transmission keeps running, so bounded
        // rings fill and push back on producers.
        obs.phase_start(Phase::Ingress);
        burst.clear();
        let mut popped = false;
        if !faults.ingest_paused() {
            let mut i = 0;
            while i < rings.len() {
                let item = match config.mode {
                    IngestMode::Lockstep => match rings[i].pop() {
                        Some(b) => Some(b),
                        None => {
                            rings.remove(i);
                            continue;
                        }
                    },
                    IngestMode::Freerun => match rings[i].try_pop() {
                        TryPop::Item(b) => Some(b),
                        TryPop::Empty => None,
                        TryPop::Closed => {
                            rings.remove(i);
                            continue;
                        }
                    },
                };
                if let Some(b) = item {
                    let waited = b.enqueued.elapsed();
                    progress
                        .ingress_latency_ns
                        .record(waited.as_nanos().min(u64::MAX as u128) as u64);
                    progress.ingested_packets += b.packets.len() as u64;
                    for &pkt in &b.packets {
                        progress.ingested_value += S::meta(pkt).2;
                    }
                    burst.extend_from_slice(&b.packets);
                    popped = true;
                }
                i += 1;
            }
        }
        obs.phase_end(Phase::Ingress);

        if !popped {
            if rings.is_empty() {
                break;
            }
            // Freerun idle cycle: nothing arrived and nothing is buffered —
            // yield so producers get the core (this box may have one).
            if service.occupancy() == 0 {
                std::thread::yield_now();
                continue;
            }
        }

        // Flush schedule, checked before this burst's arrivals — exactly
        // where the engine checks it, with the burst counter standing in
        // for the trace-slot index.
        if popped {
            if let Some(flush) = &config.flush {
                if flush.due(progress.bursts) {
                    match flush.mode {
                        FlushMode::Drop => {
                            obs.phase_start(Phase::Flush);
                            let discarded = service.flush();
                            obs.flush(progress.slots, discarded);
                            obs.phase_end(Phase::Flush);
                        }
                        FlushMode::Drain => {
                            // Mid-stream drain slots are excluded from the
                            // occupancy statistics, as in the engine.
                            if !drain(&mut service, progress, &mut scratch, obs, false) {
                                progress.drain_stalled = true;
                                break 'datapath;
                            }
                        }
                    }
                }
            }
        }

        let slot = progress.slots;
        obs.slot_start(slot);
        if popped {
            obs.phase_start(Phase::Arrival);
            outcomes.clear();
            let result = service.offer_burst(&burst, &mut outcomes);
            // Emit arrival events for every packet that got an outcome, in
            // the engine's order: arrival, then its outcome.
            for (&pkt, outcome) in burst.iter().zip(outcomes.iter()) {
                let (port, work, value) = S::meta(pkt);
                obs.arrival(slot, port, work, value);
                match outcome {
                    ArrivalOutcome::Admitted => obs.admitted(slot, port),
                    ArrivalOutcome::PushedOut(victim) => {
                        obs.pushed_out(slot, *victim);
                        obs.admitted(slot, port);
                    }
                    ArrivalOutcome::Dropped(reason) => obs.dropped(slot, port, *reason),
                }
            }
            obs.phase_end(Phase::Arrival);
            progress.bursts += 1;
            if let Err(e) = result {
                progress.error = Some(e.to_string());
                obs.slot_end(slot, service.occupancy());
                obs.queue_depth(slot, service.max_queue_depth() as u64);
                progress.snapshot(&service);
                break;
            }
        }
        obs.phase_start(Phase::Transmission);
        transmission(&mut service, slot, &mut scratch, obs);
        obs.phase_end(Phase::Transmission);
        service.end_slot();
        progress.slots += 1;
        progress.occ_sum += service.occupancy() as u64;
        progress.occ_max = progress.occ_max.max(service.occupancy());
        obs.slot_end(slot, service.occupancy());
        obs.queue_depth(slot, service.max_queue_depth() as u64);
        progress.snapshot(&service);
    }

    if config.drain_at_end && progress.error.is_none() && !progress.drain_stalled {
        // The final drain contributes to the occupancy mean but not the
        // maximum (occupancy only falls while draining).
        if !drain(&mut service, progress, &mut scratch, obs, true) {
            progress.drain_stalled = true;
        }
    }

    progress.snapshot(&service);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::ring::ring;
    use crate::service::WorkService;
    use smbm_core::{Lwd, WorkRunner};
    use smbm_obs::NullObserver;
    use smbm_switch::{PortId, Work, WorkPacket, WorkSwitchConfig};

    fn service(ports: u32, buffer: usize) -> WorkService<Lwd> {
        let cfg = WorkSwitchConfig::contiguous(ports, buffer).unwrap();
        WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
    }

    fn wp(port: usize, w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(port), Work::new(w))
    }

    #[test]
    fn lockstep_processes_queued_batches_then_drains() {
        let (tx, rx) = ring(8);
        tx.push(Batch::new(vec![wp(0, 1), wp(1, 2)])).unwrap();
        tx.push(Batch::new(vec![])).unwrap();
        drop(tx);
        let report = run_shard(
            service(2, 4),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut NullObserver,
        );
        assert_eq!(report.bursts, 2);
        assert_eq!(report.score, 2, "both packets transmit after draining");
        assert_eq!(report.counters.transmitted(), 2);
        assert!(report.error.is_none());
        assert!(!report.drain_stalled);
        assert_eq!(report.ingress_latency_ns.count(), 2);
        assert_eq!(report.label, "LWD");
    }

    #[test]
    fn freerun_survives_empty_polls() {
        let (tx, rx) = ring(8);
        tx.push(Batch::new(vec![wp(0, 1)])).unwrap();
        drop(tx);
        let report = run_shard(
            service(1, 2),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::freerun(),
            &mut NullObserver,
        );
        assert_eq!(report.score, 1);
        assert!(report.cycles >= report.slots);
    }

    #[test]
    fn flush_drop_discards_between_bursts() {
        let (tx, rx) = ring(8);
        // Burst 0 fills the buffer; the flush fires before burst 2's
        // arrivals (period 2), discarding what remains.
        tx.push(Batch::new(vec![wp(0, 1); 6])).unwrap();
        tx.push(Batch::new(vec![])).unwrap();
        tx.push(Batch::new(vec![wp(0, 1)])).unwrap();
        drop(tx);
        let config = ShardConfig {
            mode: IngestMode::Lockstep,
            flush: Some(FlushPolicy::every(2).dropping()),
            drain_at_end: false,
        };
        let report = run_shard(
            service(1, 8),
            vec![rx],
            VirtualClock::new(),
            &config,
            &mut NullObserver,
        );
        // Slots 0-1 transmit 2 of the 6; flush drops the other 4; the last
        // arrival transmits in slot 2.
        assert_eq!(report.score, 3);
        assert_eq!(report.counters.pushed_out(), 4, "flush counts as push-out");
    }

    #[test]
    fn multiple_rings_merge_in_ring_order() {
        let (tx_a, rx_a) = ring(4);
        let (tx_b, rx_b) = ring(4);
        tx_a.push(Batch::new(vec![wp(0, 1)])).unwrap();
        tx_b.push(Batch::new(vec![wp(1, 2)])).unwrap();
        drop(tx_a);
        drop(tx_b);
        let report = run_shard(
            service(2, 4),
            vec![rx_a, rx_b],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut NullObserver,
        );
        assert_eq!(report.counters.admitted(), 2);
        assert_eq!(report.score, 2);
    }

    #[test]
    fn stall_fault_burns_cycles_without_losing_packets() {
        use crate::faults::FaultPlan;
        let (tx, rx) = ring(8);
        tx.push(Batch::new(vec![wp(0, 1)])).unwrap();
        drop(tx);
        let mut faults = FaultPlan::parse("stall@0*50").unwrap().for_shard(0);
        let mut progress = ShardProgress::new();
        run_shard_core(
            service(1, 2),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut faults,
            &mut progress,
            &mut NullObserver,
        );
        assert!(
            progress.cycles >= 51,
            "stall burned {} cycles",
            progress.cycles
        );
        assert_eq!(progress.counters.transmitted(), 1);
        assert_eq!(faults.unfired(), 0);
    }

    #[test]
    fn saturate_ingress_defers_popping_without_losing_packets() {
        use crate::faults::FaultPlan;
        let (tx, rx) = ring(8);
        tx.push(Batch::new(vec![wp(0, 1), wp(0, 1)])).unwrap();
        drop(tx);
        let mut faults = FaultPlan::parse("sat@0*4").unwrap().for_shard(0);
        let mut progress = ShardProgress::new();
        run_shard_core(
            service(1, 4),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut faults,
            &mut progress,
            &mut NullObserver,
        );
        assert!(progress.cycles >= 5, "pause cycles burn before the pop");
        assert_eq!(progress.ingested_packets, 2);
        assert_eq!(progress.counters.arrived(), 2);
        assert_eq!(progress.counters.transmitted(), 2);
    }

    #[test]
    fn empty_rings_produce_empty_report() {
        let (tx, rx) = ring::<Batch<WorkPacket>>(4);
        drop(tx);
        let report = run_shard(
            service(1, 2),
            vec![rx],
            VirtualClock::new(),
            &ShardConfig::lockstep(),
            &mut NullObserver,
        );
        assert_eq!(report.slots, 0);
        assert_eq!(report.score, 0);
        assert_eq!(report.counters.arrived(), 0);
    }
}
