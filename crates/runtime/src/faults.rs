//! Deterministic fault injection for the runtime datapath.
//!
//! A [`FaultPlan`] scripts failures against specific shards at specific
//! slots: panic the shard thread, stall its whole loop, saturate its
//! ingress (stop popping while transmission continues, so bounded rings
//! fill and push back on producers), or skew a paced clock's deadline.
//! Plans are either scripted explicitly ([`FaultPlan::parse`] accepts the
//! CLI `--faults` grammar) or generated from a seed
//! ([`FaultPlan::random`]) — both are fully deterministic, so a chaos run
//! under a `VirtualClock` is exactly repeatable.
//!
//! Each fault fires at most once per *run*: the per-shard state
//! ([`ShardFaults`]) lives with the supervisor, outside the shard
//! incarnation, so a panic fault does not re-fire in the replacement shard
//! (whose slot counter restarts at zero).

use std::fmt;

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the shard thread at the top of the trigger slot, before
    /// ingest — exercises supervised restart with exact accounting.
    Panic,
    /// Stall the whole shard loop for `cycles` clock cycles: nothing is
    /// ingested or transmitted while the stall burns.
    Stall {
        /// Cycles to burn.
        cycles: u64,
    },
    /// Pause ingest for `cycles` cycles while transmission continues, so
    /// bounded ingress rings fill up and reject producer pushes.
    SaturateIngress {
        /// Cycles during which no ring is popped.
        cycles: u64,
    },
    /// Shift the pacing clock's next deadline by `nanos`
    /// (negative = earlier). A no-op under a `VirtualClock`.
    ClockSkew {
        /// Nanoseconds of skew.
        nanos: i64,
    },
}

/// One scripted fault: a [`FaultKind`] aimed at a shard and a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Index of the shard the fault targets (spawn order).
    pub shard: usize,
    /// Trigger: the fault fires at the first slot whose index reaches this
    /// value (so it still fires if the slot counter jumps past it).
    pub at_slot: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults across every shard of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan: no faults ever fire.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan running exactly the given scripted faults.
    pub fn scripted(faults: Vec<Fault>) -> Self {
        FaultPlan { faults }
    }

    /// Adds one fault to the plan.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// True when the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// All scripted faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Generates one pseudo-random fault per shard from `seed`, triggered
    /// somewhere in the first `horizon` slots. Uses a self-contained
    /// xorshift generator, so the same seed always yields the same plan.
    pub fn random(seed: u64, shards: usize, horizon: u64) -> Self {
        let mut state = seed | 1; // xorshift must not start at zero
        let mut next = move || -> u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let horizon = horizon.max(1);
        let faults = (0..shards)
            .map(|shard| {
                let at_slot = next() % horizon;
                let kind = match next() % 4 {
                    0 => FaultKind::Panic,
                    1 => FaultKind::Stall {
                        cycles: 1 + next() % 1_000,
                    },
                    2 => FaultKind::SaturateIngress {
                        cycles: 1 + next() % 1_000,
                    },
                    _ => {
                        let magnitude = (next() % 1_000_000) as i64;
                        let nanos = if next() % 2 == 0 {
                            magnitude
                        } else {
                            -magnitude
                        };
                        FaultKind::ClockSkew { nanos }
                    }
                };
                Fault {
                    shard,
                    at_slot,
                    kind,
                }
            })
            .collect();
        FaultPlan { faults }
    }

    /// Parses the CLI fault grammar: comma-separated entries of the form
    /// `KIND@SLOT[*PARAM][#SHARD]`, where `KIND` is one of `panic`,
    /// `stall` (PARAM = cycles), `sat` (PARAM = cycles) or `skew`
    /// (PARAM = signed nanoseconds). `#SHARD` defaults to shard 0.
    ///
    /// ```
    /// use smbm_runtime::{Fault, FaultKind, FaultPlan};
    /// let plan = FaultPlan::parse("panic@100,stall@50*200#1").unwrap();
    /// assert_eq!(
    ///     plan.faults()[0],
    ///     Fault { shard: 0, at_slot: 100, kind: FaultKind::Panic }
    /// );
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the malformed entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            faults.push(Self::parse_entry(entry)?);
        }
        Ok(FaultPlan { faults })
    }

    fn parse_entry(entry: &str) -> Result<Fault, String> {
        let (spec, shard) = match entry.split_once('#') {
            Some((spec, shard)) => {
                let shard: usize = shard
                    .parse()
                    .map_err(|_| format!("fault `{entry}`: bad shard index `{shard}`"))?;
                (spec, shard)
            }
            None => (entry, 0),
        };
        let (kind, trigger) = spec
            .split_once('@')
            .ok_or_else(|| format!("fault `{entry}`: expected KIND@SLOT"))?;
        let (slot, param) = match trigger.split_once('*') {
            Some((slot, param)) => (slot, Some(param)),
            None => (trigger, None),
        };
        let at_slot: u64 = slot
            .parse()
            .map_err(|_| format!("fault `{entry}`: bad slot `{slot}`"))?;
        let cycles = |what: &str| -> Result<u64, String> {
            param
                .ok_or_else(|| format!("fault `{entry}`: `{kind}` needs *{what}"))?
                .parse()
                .map_err(|_| format!("fault `{entry}`: bad {what}"))
        };
        let kind = match kind {
            "panic" => {
                if param.is_some() {
                    return Err(format!("fault `{entry}`: `panic` takes no parameter"));
                }
                FaultKind::Panic
            }
            "stall" => FaultKind::Stall {
                cycles: cycles("CYCLES")?,
            },
            "sat" => FaultKind::SaturateIngress {
                cycles: cycles("CYCLES")?,
            },
            "skew" => {
                let nanos: i64 = param
                    .ok_or_else(|| format!("fault `{entry}`: `skew` needs *NANOS"))?
                    .parse()
                    .map_err(|_| format!("fault `{entry}`: bad NANOS"))?;
                FaultKind::ClockSkew { nanos }
            }
            other => {
                return Err(format!(
                    "fault `{entry}`: unknown kind `{other}` (expected panic, stall, sat or skew)"
                ))
            }
        };
        Ok(Fault {
            shard,
            at_slot,
            kind,
        })
    }

    /// Extracts the fire-once state for one shard's faults. The supervisor
    /// owns the result across incarnations, so fired faults stay fired
    /// after a restart.
    pub fn for_shard(&self, shard: usize) -> ShardFaults {
        let armed: Vec<Fault> = self
            .faults
            .iter()
            .copied()
            .filter(|f| f.shard == shard)
            .collect();
        let unfired = armed.len();
        ShardFaults {
            fired: vec![false; armed.len()],
            armed,
            unfired,
            ingest_pause: 0,
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            match fault.kind {
                FaultKind::Panic => write!(f, "panic@{}", fault.at_slot)?,
                FaultKind::Stall { cycles } => write!(f, "stall@{}*{}", fault.at_slot, cycles)?,
                FaultKind::SaturateIngress { cycles } => {
                    write!(f, "sat@{}*{}", fault.at_slot, cycles)?
                }
                FaultKind::ClockSkew { nanos } => write!(f, "skew@{}*{}", fault.at_slot, nanos)?,
            }
            if fault.shard != 0 {
                write!(f, "#{}", fault.shard)?;
            }
        }
        Ok(())
    }
}

/// One shard's live fault state: which faults have fired plus the
/// remaining ingest-pause budget. Owned by the supervisor so it survives
/// shard restarts.
#[derive(Debug, Clone, Default)]
pub struct ShardFaults {
    armed: Vec<Fault>,
    fired: Vec<bool>,
    unfired: usize,
    ingest_pause: u64,
}

impl ShardFaults {
    /// Fault state with nothing armed: every poll is a cheap no-op.
    pub fn none() -> Self {
        Self::default()
    }

    /// Faults due at `slot` that have not fired yet, marking them fired.
    /// Returned in plan order.
    pub fn due(&mut self, slot: u64) -> Vec<FaultKind> {
        if self.unfired == 0 {
            return Vec::new();
        }
        let mut due = Vec::new();
        for (fault, fired) in self.armed.iter().zip(self.fired.iter_mut()) {
            if !*fired && slot >= fault.at_slot {
                *fired = true;
                self.unfired -= 1;
                due.push(fault.kind);
            }
        }
        due
    }

    /// Extends the ingest pause to at least `cycles` more cycles.
    pub(crate) fn pause_ingest(&mut self, cycles: u64) {
        self.ingest_pause = self.ingest_pause.max(cycles);
    }

    /// Burns one cycle of the ingest pause; true while ingest must skip
    /// popping the rings.
    pub(crate) fn ingest_paused(&mut self) -> bool {
        if self.ingest_pause > 0 {
            self.ingest_pause -= 1;
            true
        } else {
            false
        }
    }

    /// Faults that have not fired yet.
    pub fn unfired(&self) -> usize {
        self.unfired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse("panic@100, stall@50*200#1, sat@0*32, skew@7*-2500#3").unwrap();
        assert_eq!(
            plan.faults(),
            &[
                Fault {
                    shard: 0,
                    at_slot: 100,
                    kind: FaultKind::Panic
                },
                Fault {
                    shard: 1,
                    at_slot: 50,
                    kind: FaultKind::Stall { cycles: 200 }
                },
                Fault {
                    shard: 0,
                    at_slot: 0,
                    kind: FaultKind::SaturateIngress { cycles: 32 }
                },
                Fault {
                    shard: 3,
                    at_slot: 7,
                    kind: FaultKind::ClockSkew { nanos: -2500 }
                },
            ]
        );
        // Display round-trips through parse.
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "panic",
            "panic@x",
            "panic@5*3",
            "stall@5",
            "sat@5*x",
            "skew@5",
            "boom@5",
            "panic@5#x",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains(bad), "error `{err}` should name `{bad}`");
        }
    }

    #[test]
    fn empty_spec_is_an_empty_plan() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
        assert_eq!(FaultPlan::none().len(), 0);
    }

    #[test]
    fn random_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::random(0xB0FFE2, 4, 500);
        let b = FaultPlan::random(0xB0FFE2, 4, 500);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        for (shard, fault) in a.faults().iter().enumerate() {
            assert_eq!(fault.shard, shard);
            assert!(fault.at_slot < 500);
        }
        // A different seed yields a different plan (overwhelmingly likely).
        assert_ne!(a, FaultPlan::random(0xDEAD, 4, 500));
        // Seed 0 must not wedge the xorshift state.
        assert_eq!(FaultPlan::random(0, 2, 10).len(), 2);
    }

    #[test]
    fn faults_fire_once_even_across_restarts() {
        let plan = FaultPlan::parse("panic@5,stall@8*10").unwrap();
        let mut sf = plan.for_shard(0);
        assert_eq!(sf.unfired(), 2);
        assert!(sf.due(4).is_empty());
        assert_eq!(sf.due(5), vec![FaultKind::Panic]);
        // The replacement incarnation restarts its slot counter at 0; the
        // panic fault must not re-fire, but the stall (slot >= 8) must.
        assert!(sf.due(0).is_empty());
        assert_eq!(sf.due(9), vec![FaultKind::Stall { cycles: 10 }]);
        assert_eq!(sf.unfired(), 0);
        assert!(sf.due(100).is_empty());
    }

    #[test]
    fn late_trigger_fires_on_first_slot_past_it() {
        let plan = FaultPlan::parse("sat@10*3").unwrap();
        let mut sf = plan.for_shard(0);
        assert_eq!(sf.due(25), vec![FaultKind::SaturateIngress { cycles: 3 }]);
    }

    #[test]
    fn for_shard_filters_by_target() {
        let plan = FaultPlan::parse("panic@1#0,panic@2#1,stall@3*4#1").unwrap();
        assert_eq!(plan.for_shard(0).unfired(), 1);
        assert_eq!(plan.for_shard(1).unfired(), 2);
        assert_eq!(plan.for_shard(2).unfired(), 0);
    }

    #[test]
    fn ingest_pause_burns_down() {
        let mut sf = ShardFaults::none();
        sf.pause_ingest(2);
        assert!(sf.ingest_paused());
        assert!(sf.ingest_paused());
        assert!(!sf.ingest_paused());
        // A longer pause extends, a shorter one never shortens.
        sf.pause_ingest(3);
        sf.pause_ingest(1);
        assert!(sf.ingest_paused());
        assert!(sf.ingest_paused());
        assert!(sf.ingest_paused());
        assert!(!sf.ingest_paused());
    }
}
