//! The shard's view of a policy-driven switch: a [`Service`] is the
//! model-erased bundle of operations the datapath loop drives, with one
//! implementation per packet model wrapping the corresponding policy runner.
//!
//! This mirrors the simulation engine's internal `EngineSystem` adapter, but
//! lives in public API space because shard threads construct their service
//! from a caller-supplied factory (the service itself never crosses threads;
//! only its plain-data [`Counters`] snapshot comes back). Factories are
//! `Fn`, not `FnOnce`: the supervisor reinvokes the same factory to rebuild
//! a shard's service after a panic, so a factory must yield a fresh,
//! equivalently-configured service every time it is called.

use smbm_core::{
    CombinedPolicy, CombinedRunner, CombinedSystem, ValuePolicy, ValueRunner, ValueSystem,
    WorkPolicy, WorkRunner, WorkSystem,
};
use smbm_switch::{
    AdmitError, ArrivalOutcome, CombinedPacket, Counters, PortId, Transmitted, ValuePacket,
    WorkPacket,
};

/// What a switch shard needs from the system it serves: burst admission,
/// transmission, slot bookkeeping, and counter snapshots.
///
/// `meta` is an associated function (not a method) so producers can carry it
/// as a plain `fn` pointer and attribute value to backpressure-rejected
/// packets without ever touching the service.
pub trait Service: 'static {
    /// The packet type flowing through the shard's ingress rings.
    type Packet: Copy + Send + 'static;

    /// Human-readable label (the policy name) for reports.
    fn label(&self) -> String;

    /// Destination port, work cycles, and value of a packet (1 wherever the
    /// model lacks the dimension), matching the engine's arrival events.
    fn meta(pkt: Self::Packet) -> (PortId, u32, u64);

    /// Offers a whole burst to admission control, appending one outcome per
    /// packet in offer order.
    ///
    /// # Errors
    ///
    /// Stops at the first [`AdmitError`] (an inconsistent policy decision);
    /// outcomes already appended stay.
    fn offer_burst(
        &mut self,
        pkts: &[Self::Packet],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError>;

    /// Runs one transmission phase, appending per-packet completion records;
    /// returns the phase's contribution to the objective (packets in the
    /// work model, value otherwise).
    fn transmission_into(&mut self, out: &mut Vec<Transmitted>) -> u64;

    /// Marks the end of the slot (advances the switch clock).
    fn end_slot(&mut self);

    /// Discards all buffered packets; returns how many were discarded.
    fn flush(&mut self) -> u64;

    /// Packets currently buffered.
    fn occupancy(&self) -> usize;

    /// The switch's configured shared buffer limit B (telemetry gauge).
    fn buffer_limit(&self) -> usize;

    /// The switch's configured output port count n (telemetry gauge).
    fn ports(&self) -> usize;

    /// Length of the longest output queue right now (telemetry gauge).
    fn max_queue_depth(&self) -> usize;

    /// The objective so far: packets transmitted (work model) or value
    /// transmitted (value/combined models).
    fn score(&self) -> u64;

    /// Snapshot of the switch's lifetime counters.
    fn counters(&self) -> Counters;
}

/// A work-model service: throughput objective, per-port work requirements.
#[derive(Debug)]
pub struct WorkService<P>(WorkRunner<P>);

impl<P: WorkPolicy + 'static> WorkService<P> {
    /// Wraps a runner.
    pub fn new(runner: WorkRunner<P>) -> Self {
        WorkService(runner)
    }
}

impl<P: WorkPolicy + 'static> Service for WorkService<P> {
    type Packet = WorkPacket;

    fn label(&self) -> String {
        WorkSystem::label(&self.0)
    }

    fn meta(pkt: WorkPacket) -> (PortId, u32, u64) {
        (pkt.port(), pkt.work().cycles(), 1)
    }

    fn offer_burst(
        &mut self,
        pkts: &[WorkPacket],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError> {
        WorkSystem::offer_burst(&mut self.0, pkts, outcomes)
    }

    fn transmission_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        WorkSystem::transmission_phase_into(&mut self.0, out)
    }

    fn end_slot(&mut self) {
        WorkSystem::end_slot(&mut self.0);
    }

    fn flush(&mut self) -> u64 {
        WorkSystem::flush(&mut self.0)
    }

    fn occupancy(&self) -> usize {
        WorkSystem::occupancy(&self.0)
    }

    fn buffer_limit(&self) -> usize {
        self.0.switch().buffer()
    }

    fn ports(&self) -> usize {
        self.0.switch().ports()
    }

    fn max_queue_depth(&self) -> usize {
        self.0.switch().max_queue_len()
    }

    fn score(&self) -> u64 {
        self.0.transmitted()
    }

    fn counters(&self) -> Counters {
        *self.0.switch().counters()
    }
}

/// A value-model service: value objective, unit work.
#[derive(Debug)]
pub struct ValueService<P>(ValueRunner<P>);

impl<P: ValuePolicy + 'static> ValueService<P> {
    /// Wraps a runner.
    pub fn new(runner: ValueRunner<P>) -> Self {
        ValueService(runner)
    }
}

impl<P: ValuePolicy + 'static> Service for ValueService<P> {
    type Packet = ValuePacket;

    fn label(&self) -> String {
        ValueSystem::label(&self.0)
    }

    fn meta(pkt: ValuePacket) -> (PortId, u32, u64) {
        (pkt.port(), 1, pkt.value().get())
    }

    fn offer_burst(
        &mut self,
        pkts: &[ValuePacket],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError> {
        ValueSystem::offer_burst(&mut self.0, pkts, outcomes)
    }

    fn transmission_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        ValueSystem::transmission_phase_into(&mut self.0, out)
    }

    fn end_slot(&mut self) {
        ValueSystem::end_slot(&mut self.0);
    }

    fn flush(&mut self) -> u64 {
        ValueSystem::flush(&mut self.0)
    }

    fn occupancy(&self) -> usize {
        ValueSystem::occupancy(&self.0)
    }

    fn buffer_limit(&self) -> usize {
        self.0.switch().buffer()
    }

    fn ports(&self) -> usize {
        self.0.switch().ports()
    }

    fn max_queue_depth(&self) -> usize {
        self.0.switch().max_queue_len()
    }

    fn score(&self) -> u64 {
        self.0.transmitted_value()
    }

    fn counters(&self) -> Counters {
        *self.0.switch().counters()
    }
}

/// A combined-model service (extension): value objective, per-port work.
#[derive(Debug)]
pub struct CombinedService<P>(CombinedRunner<P>);

impl<P: CombinedPolicy + 'static> CombinedService<P> {
    /// Wraps a runner.
    pub fn new(runner: CombinedRunner<P>) -> Self {
        CombinedService(runner)
    }
}

impl<P: CombinedPolicy + 'static> Service for CombinedService<P> {
    type Packet = CombinedPacket;

    fn label(&self) -> String {
        CombinedSystem::label(&self.0)
    }

    fn meta(pkt: CombinedPacket) -> (PortId, u32, u64) {
        (pkt.port(), pkt.work().cycles(), pkt.value().get())
    }

    fn offer_burst(
        &mut self,
        pkts: &[CombinedPacket],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError> {
        CombinedSystem::offer_burst(&mut self.0, pkts, outcomes)
    }

    fn transmission_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        CombinedSystem::transmission_phase_into(&mut self.0, out)
    }

    fn end_slot(&mut self) {
        CombinedSystem::end_slot(&mut self.0);
    }

    fn flush(&mut self) -> u64 {
        CombinedSystem::flush(&mut self.0)
    }

    fn occupancy(&self) -> usize {
        CombinedSystem::occupancy(&self.0)
    }

    fn buffer_limit(&self) -> usize {
        self.0.switch().buffer()
    }

    fn ports(&self) -> usize {
        self.0.switch().ports()
    }

    fn max_queue_depth(&self) -> usize {
        self.0.switch().max_queue_len()
    }

    fn score(&self) -> u64 {
        self.0.transmitted_value()
    }

    fn counters(&self) -> Counters {
        *self.0.switch().counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_core::Lwd;
    use smbm_switch::{Work, WorkSwitchConfig};

    #[test]
    fn work_service_round_trip() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut svc = WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1));
        assert_eq!(svc.label(), "LWD");
        let pkt = WorkPacket::new(PortId::new(0), Work::new(1));
        assert_eq!(WorkService::<Lwd>::meta(pkt), (PortId::new(0), 1, 1));
        let mut outcomes = Vec::new();
        svc.offer_burst(&[pkt, pkt], &mut outcomes).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(svc.occupancy(), 2);
        assert_eq!(svc.buffer_limit(), 4);
        assert_eq!(svc.ports(), 2);
        assert_eq!(svc.max_queue_depth(), 2);
        let mut out = Vec::new();
        assert_eq!(svc.transmission_into(&mut out), 1);
        svc.end_slot();
        assert_eq!(svc.score(), 1);
        assert_eq!(svc.counters().transmitted(), 1);
        assert_eq!(svc.flush(), 1);
        assert_eq!(svc.occupancy(), 0);
    }
}
