//! The shard's view of a policy-driven switch.
//!
//! The trait itself now lives in `smbm-datapath`: [`Service`] is a re-export
//! of [`DatapathSystem`](smbm_datapath::DatapathSystem), the same
//! model-erased bundle of operations the offline simulation engine drives —
//! the runtime's old standalone `Service` trait (and the engine's internal
//! `EngineSystem`) are superseded by it. This module keeps the runtime's
//! historical service names as aliases over the datapath adapters wrapping
//! owned policy runners.
//!
//! Shard threads construct their service from a caller-supplied factory
//! (the service itself never crosses threads; only its plain-data
//! [`Counters`](smbm_switch::Counters) snapshot comes back). Factories are
//! `Fn`, not `FnOnce`: the supervisor reinvokes the same factory to rebuild
//! a shard's service after a panic, so a factory must yield a fresh,
//! equivalently-configured service every time it is called.

use smbm_core::{CombinedRunner, ValueRunner, WorkRunner};
use smbm_datapath::{CombinedAdapter, ValueAdapter, WorkAdapter};

pub use smbm_datapath::DatapathSystem as Service;

/// A work-model service: throughput objective, per-port work requirements.
pub type WorkService<P> = WorkAdapter<WorkRunner<P>>;

/// A value-model service: value objective, unit work.
pub type ValueService<P> = ValueAdapter<ValueRunner<P>>;

/// A combined-model service (extension): value objective, per-port work.
pub type CombinedService<P> = CombinedAdapter<CombinedRunner<P>>;

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_core::Lwd;
    use smbm_switch::{PortId, Work, WorkPacket, WorkSwitchConfig};

    #[test]
    fn work_service_round_trip() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut svc = WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1));
        assert_eq!(svc.label(), "LWD");
        let pkt = WorkPacket::new(PortId::new(0), Work::new(1));
        assert_eq!(WorkService::<Lwd>::meta(pkt), (PortId::new(0), 1, 1));
        let mut outcomes = Vec::new();
        svc.offer_burst(&[pkt, pkt], &mut outcomes).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(svc.occupancy(), 2);
        assert_eq!(svc.buffer_limit(), 4);
        assert_eq!(svc.ports(), 2);
        assert_eq!(svc.max_queue_depth(), 2);
        let mut out = Vec::new();
        assert_eq!(svc.transmission_phase_into(&mut out), 1);
        svc.end_slot();
        assert_eq!(svc.score(), 1);
        assert_eq!(svc.counters().transmitted(), 1);
        assert_eq!(svc.flush(), 1);
        assert_eq!(svc.occupancy(), 0);
    }
}
