//! The paper's OPT surrogate: a single shared priority queue with `n * C`
//! cores (Section V-A).
//!
//! Computing the true clairvoyant optimum is intractable at simulation scale,
//! so the paper compares against a single priority queue that (a) shares the
//! whole buffer with no per-port structure, (b) processes smallest-work-first
//! (resp. largest-value-first), and (c) has as many cores as the whole
//! switch. This policy is optimal in the single-queue model, so under
//! congestion it can even beat the model's true OPT — exactly the stronger
//! yardstick the paper uses.

use std::collections::BTreeMap;

use smbm_switch::{ArrivalOutcome, Counters, DropReason, PortId, ValuePacket, Work, WorkPacket};

/// OPT surrogate for the heterogeneous-processing model: one priority queue
/// over the whole buffer, smallest-residual-first, with a configurable core
/// count, and push-out admission (evict the largest residual when a smaller
/// packet arrives into a full buffer).
///
/// ```
/// use smbm_core::WorkPqOpt;
/// use smbm_switch::{PortId, Work, WorkPacket};
///
/// let mut opt = WorkPqOpt::new(4, 2); // B = 4, 2 cores
/// opt.offer(WorkPacket::new(PortId::new(0), Work::new(1)));
/// opt.offer(WorkPacket::new(PortId::new(0), Work::new(3)));
/// opt.transmission();
/// assert_eq!(opt.transmitted(), 1); // the 1-cycle packet finished
/// ```
#[derive(Debug, Clone)]
pub struct WorkPqOpt {
    buffer: usize,
    cores: u32,
    /// residual cycles -> packet count.
    residuals: BTreeMap<u32, u64>,
    occupancy: usize,
    counters: Counters,
}

impl WorkPqOpt {
    /// Creates a surrogate with buffer capacity `buffer` and `cores` cores
    /// (the paper uses `n * C`).
    ///
    /// # Panics
    ///
    /// Panics if `buffer` or `cores` is zero.
    pub fn new(buffer: usize, cores: u32) -> Self {
        assert!(buffer > 0, "buffer must be positive");
        assert!(cores > 0, "core count must be positive");
        WorkPqOpt {
            buffer,
            cores,
            residuals: BTreeMap::new(),
            occupancy: 0,
            counters: Counters::new(),
        }
    }

    /// Buffer capacity.
    pub fn buffer(&self) -> usize {
        self.buffer
    }

    /// Core count.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Packets currently resident.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Lifetime accounting.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Packets transmitted so far.
    pub fn transmitted(&self) -> u64 {
        self.counters.transmitted()
    }

    /// Offers one packet; the port label is irrelevant to the single queue,
    /// only the work matters.
    pub fn offer(&mut self, pkt: WorkPacket) -> ArrivalOutcome {
        self.offer_work(pkt.work())
    }

    /// Offers one packet by its work requirement, reporting its fate. The
    /// single shared queue has no per-port structure, so push-outs name
    /// port 0.
    pub fn offer_work(&mut self, work: Work) -> ArrivalOutcome {
        self.counters.record_arrival(1);
        let w = work.cycles();
        if self.occupancy < self.buffer {
            self.counters.record_admission(1);
            *self.residuals.entry(w).or_insert(0) += 1;
            self.occupancy += 1;
            return ArrivalOutcome::Admitted;
        }
        // Full: keep the packet set with the smallest residuals.
        let (&max_residual, _) = self
            .residuals
            .last_key_value()
            .expect("full buffer is non-empty");
        if w < max_residual {
            self.remove_one(max_residual);
            self.counters.record_push_out(1);
            self.counters.record_admission(1);
            *self.residuals.entry(w).or_insert(0) += 1;
            self.occupancy += 1;
            ArrivalOutcome::PushedOut(PortId::new(0))
        } else {
            self.counters.record_drop(1);
            ArrivalOutcome::Dropped(DropReason::BufferFull)
        }
    }

    fn remove_one(&mut self, residual: u32) {
        let count = self
            .residuals
            .get_mut(&residual)
            .expect("residual class exists");
        *count -= 1;
        if *count == 0 {
            self.residuals.remove(&residual);
        }
        self.occupancy -= 1;
    }

    /// Runs one transmission phase: each of the `cores` cores gives one
    /// cycle to a distinct packet, smallest residual first. Returns packets
    /// completed this phase.
    pub fn transmission(&mut self) -> u64 {
        // Plan which residual classes receive cycles before mutating, so a
        // decremented packet is not processed twice in the same phase.
        let mut budget = self.cores as u64;
        let mut plan: Vec<(u32, u64)> = Vec::new();
        for (&r, &count) in self.residuals.iter() {
            if budget == 0 {
                break;
            }
            let take = count.min(budget);
            plan.push((r, take));
            budget -= take;
        }
        let mut completed = 0;
        for (r, take) in plan {
            let count = self.residuals.get_mut(&r).expect("planned class exists");
            *count -= take;
            if *count == 0 {
                self.residuals.remove(&r);
            }
            self.counters.record_cycles(take);
            if r == 1 {
                completed += take;
                self.occupancy -= take as usize;
                for _ in 0..take {
                    self.counters.record_transmission(1, 0);
                }
            } else {
                *self.residuals.entry(r - 1).or_insert(0) += take;
            }
        }
        completed
    }

    /// Discards every resident packet (flushout).
    pub fn flush(&mut self) -> u64 {
        let n = self.occupancy as u64;
        self.residuals.clear();
        self.occupancy = 0;
        self.counters.record_flush(n, n);
        n
    }

    /// Verifies occupancy bookkeeping and conservation; test oracle.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let sum: u64 = self.residuals.values().sum();
        if sum != self.occupancy as u64 {
            return Err(format!("occupancy {} != class sum {}", self.occupancy, sum));
        }
        if self.occupancy > self.buffer {
            return Err(format!(
                "occupancy {} exceeds buffer {}",
                self.occupancy, self.buffer
            ));
        }
        if self.residuals.contains_key(&0) {
            return Err("zero-residual packet left in buffer".into());
        }
        self.counters
            .check_conservation(self.occupancy)
            .map_err(|e| e.to_string())
    }
}

/// OPT surrogate for the heterogeneous-value model: one priority queue over
/// the whole buffer, largest-value-first, with a configurable core count and
/// push-out admission (evict the minimum value for a larger arrival).
///
/// ```
/// use smbm_core::ValuePqOpt;
/// use smbm_switch::{PortId, Value, ValuePacket};
///
/// let mut opt = ValuePqOpt::new(2, 1);
/// opt.offer(ValuePacket::new(PortId::new(0), Value::new(2)));
/// opt.offer(ValuePacket::new(PortId::new(0), Value::new(5)));
/// opt.offer(ValuePacket::new(PortId::new(1), Value::new(9))); // evicts the 2
/// assert_eq!(opt.transmission(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct ValuePqOpt {
    buffer: usize,
    cores: u32,
    /// value -> packet count.
    values: BTreeMap<u64, u64>,
    occupancy: usize,
    counters: Counters,
}

impl ValuePqOpt {
    /// Creates a surrogate with buffer capacity `buffer` and `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `buffer` or `cores` is zero.
    pub fn new(buffer: usize, cores: u32) -> Self {
        assert!(buffer > 0, "buffer must be positive");
        assert!(cores > 0, "core count must be positive");
        ValuePqOpt {
            buffer,
            cores,
            values: BTreeMap::new(),
            occupancy: 0,
            counters: Counters::new(),
        }
    }

    /// Buffer capacity.
    pub fn buffer(&self) -> usize {
        self.buffer
    }

    /// Core count.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Packets currently resident.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Lifetime accounting.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Total value transmitted so far.
    pub fn transmitted_value(&self) -> u64 {
        self.counters.transmitted_value()
    }

    /// Offers one packet, reporting its fate; only its value matters to the
    /// single queue, and push-outs name port 0.
    pub fn offer(&mut self, pkt: ValuePacket) -> ArrivalOutcome {
        let v = pkt.value().get();
        self.counters.record_arrival(v);
        if self.occupancy < self.buffer {
            self.counters.record_admission(v);
            *self.values.entry(v).or_insert(0) += 1;
            self.occupancy += 1;
            return ArrivalOutcome::Admitted;
        }
        let (&min_value, _) = self
            .values
            .first_key_value()
            .expect("full buffer is non-empty");
        if v > min_value {
            self.remove_one(min_value);
            self.counters.record_push_out(min_value);
            self.counters.record_admission(v);
            *self.values.entry(v).or_insert(0) += 1;
            self.occupancy += 1;
            ArrivalOutcome::PushedOut(PortId::new(0))
        } else {
            self.counters.record_drop(v);
            ArrivalOutcome::Dropped(DropReason::BufferFull)
        }
    }

    fn remove_one(&mut self, value: u64) {
        let count = self.values.get_mut(&value).expect("value class exists");
        *count -= 1;
        if *count == 0 {
            self.values.remove(&value);
        }
        self.occupancy -= 1;
    }

    /// Runs one transmission phase: the `cores` most valuable packets leave.
    /// Returns the value transmitted this phase.
    pub fn transmission(&mut self) -> u64 {
        let mut budget = self.cores as u64;
        let mut sent_value = 0;
        while budget > 0 {
            let Some((&v, _)) = self.values.last_key_value() else {
                break;
            };
            let count = self.values[&v];
            let take = count.min(budget);
            budget -= take;
            sent_value += v * take;
            for _ in 0..take {
                self.remove_one(v);
                self.counters.record_transmission(v, 0);
                self.counters.record_cycles(1);
            }
        }
        sent_value
    }

    /// Discards every resident packet (flushout).
    pub fn flush(&mut self) -> u64 {
        let n = self.occupancy as u64;
        let value: u64 = self.values.iter().map(|(&v, &count)| v * count).sum();
        self.values.clear();
        self.occupancy = 0;
        self.counters.record_flush(n, value);
        n
    }

    /// Verifies occupancy bookkeeping and conservation; test oracle.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let sum: u64 = self.values.values().sum();
        if sum != self.occupancy as u64 {
            return Err(format!("occupancy {} != class sum {}", self.occupancy, sum));
        }
        if self.occupancy > self.buffer {
            return Err(format!(
                "occupancy {} exceeds buffer {}",
                self.occupancy, self.buffer
            ));
        }
        self.counters
            .check_conservation(self.occupancy)
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_switch::{PortId, Value};

    fn wp(w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(0), Work::new(w))
    }

    fn vp(v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(0), Value::new(v))
    }

    #[test]
    fn work_opt_prefers_small_packets() {
        let mut opt = WorkPqOpt::new(2, 1);
        opt.offer(wp(5));
        opt.offer(wp(5));
        opt.offer(wp(1)); // evicts one 5
        assert_eq!(opt.occupancy(), 2);
        assert_eq!(opt.transmission(), 1);
        opt.check_invariants().unwrap();
    }

    #[test]
    fn work_opt_drops_when_not_smaller() {
        let mut opt = WorkPqOpt::new(1, 1);
        opt.offer(wp(2));
        opt.offer(wp(2)); // equal: dropped
        opt.offer(wp(3)); // larger: dropped
        assert_eq!(opt.counters().dropped(), 2);
        assert_eq!(opt.occupancy(), 1);
    }

    #[test]
    fn work_opt_processes_smallest_first_with_cores() {
        let mut opt = WorkPqOpt::new(8, 2);
        opt.offer(wp(1));
        opt.offer(wp(1));
        opt.offer(wp(3));
        // Two cores: both unit packets complete, the 3 waits.
        assert_eq!(opt.transmission(), 2);
        assert_eq!(opt.occupancy(), 1);
        // Next phases: 3 -> 2 -> 1 -> done; only one core finds work.
        assert_eq!(opt.transmission(), 0);
        assert_eq!(opt.transmission(), 0);
        assert_eq!(opt.transmission(), 1);
        opt.check_invariants().unwrap();
    }

    #[test]
    fn work_opt_no_double_processing_in_one_phase() {
        // A 2-cycle packet must take two phases even with many cores.
        let mut opt = WorkPqOpt::new(4, 8);
        opt.offer(wp(2));
        assert_eq!(opt.transmission(), 0);
        assert_eq!(opt.transmission(), 1);
    }

    #[test]
    fn work_opt_flush() {
        let mut opt = WorkPqOpt::new(4, 1);
        opt.offer(wp(2));
        opt.offer(wp(4));
        assert_eq!(opt.flush(), 2);
        assert_eq!(opt.occupancy(), 0);
        opt.check_invariants().unwrap();
    }

    #[test]
    fn value_opt_prefers_large_values() {
        let mut opt = ValuePqOpt::new(2, 1);
        opt.offer(vp(2));
        opt.offer(vp(5));
        opt.offer(vp(9)); // evicts the 2
        assert_eq!(opt.transmission(), 9);
        assert_eq!(opt.transmission(), 5);
        assert_eq!(opt.transmission(), 0);
        opt.check_invariants().unwrap();
    }

    #[test]
    fn value_opt_drops_minimum_or_equal() {
        let mut opt = ValuePqOpt::new(1, 1);
        opt.offer(vp(4));
        opt.offer(vp(4));
        opt.offer(vp(1));
        assert_eq!(opt.counters().dropped(), 2);
    }

    #[test]
    fn value_opt_cores_take_top_values() {
        let mut opt = ValuePqOpt::new(8, 3);
        for v in [1, 2, 3, 4, 5] {
            opt.offer(vp(v));
        }
        assert_eq!(opt.transmission(), 5 + 4 + 3);
        assert_eq!(opt.occupancy(), 2);
        opt.check_invariants().unwrap();
    }

    #[test]
    fn value_opt_flush() {
        let mut opt = ValuePqOpt::new(4, 1);
        opt.offer(vp(2));
        assert_eq!(opt.flush(), 1);
        opt.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "buffer must be positive")]
    fn zero_buffer_panics() {
        let _ = WorkPqOpt::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "core count must be positive")]
    fn zero_cores_panics() {
        let _ = ValuePqOpt::new(1, 0);
    }
}
