//! Exact clairvoyant OPT for tiny instances, by memoized search.
//!
//! The true offline optimum never needs push-out: any schedule that admits a
//! packet and later evicts it is dominated by one that never admits it. The
//! optimum is therefore a choice, for every arrival, of *admit* or *drop*,
//! subject to the shared-buffer capacity — a search over `2^(#arrivals)`
//! decision vectors, made tractable on small instances by memoizing on the
//! (arrival position, buffer state) pair.
//!
//! Both solvers evaluate the **drain objective**: the trace is followed by
//! arrival-free slots until the buffer empties, so every admitted packet is
//! eventually transmitted. This matches how competitive bounds are stated
//! (performance as `t -> ∞` for a finite adversarial prefix) and lets the
//! test-suite check, e.g., Theorem 7's `OPT <= 2 * LWD` exactly.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use smbm_switch::{PortId, ValuePacket, WorkSwitchConfig};

/// Largest number of arrivals the exact solvers accept; beyond this the
/// search space is too large to explore exhaustively.
pub const MAX_EXACT_ARRIVALS: usize = 28;

/// Error returned when an instance is too large for exhaustive search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooLargeError {
    arrivals: usize,
}

impl fmt::Display for TooLargeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exact OPT limited to {MAX_EXACT_ARRIVALS} arrivals, instance has {}",
            self.arrivals
        )
    }
}

impl Error for TooLargeError {}

// ------------------------------------------------------------------------
// Heterogeneous-processing model
// ------------------------------------------------------------------------

/// Per-queue state for the work-model search: `(length, head residual)`.
type WorkState = Vec<(u16, u16)>;

/// Computes the exact optimal number of transmitted packets for the
/// heterogeneous-processing model on a per-slot arrival trace (ports only —
/// each packet's work is dictated by its destination), including a full
/// drain after the last slot.
///
/// # Errors
///
/// Returns [`TooLargeError`] if the trace has more than
/// [`MAX_EXACT_ARRIVALS`] arrivals.
///
/// ```
/// use smbm_core::exact_work_opt;
/// use smbm_switch::{PortId, WorkSwitchConfig};
///
/// let cfg = WorkSwitchConfig::contiguous(2, 2)?;
/// // One slot: three packets toward port 0 (w = 1). B = 2 caps OPT at 2
/// // admissions; both drain out.
/// let trace = vec![vec![PortId::new(0); 3]];
/// assert_eq!(exact_work_opt(&cfg, 1, &trace)?, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn exact_work_opt(
    config: &WorkSwitchConfig,
    speedup: u32,
    trace: &[Vec<PortId>],
) -> Result<u64, TooLargeError> {
    let arrivals: usize = trace.iter().map(Vec::len).sum();
    if arrivals > MAX_EXACT_ARRIVALS {
        return Err(TooLargeError { arrivals });
    }
    // Flatten to a list of (slot, port); slot boundaries trigger
    // transmission phases.
    let mut solver = WorkSolver {
        config,
        speedup,
        trace,
        memo: HashMap::new(),
    };
    let state: WorkState = vec![(0, 0); config.ports()];
    Ok(solver.best(0, 0, state))
}

struct WorkSolver<'a> {
    config: &'a WorkSwitchConfig,
    speedup: u32,
    trace: &'a [Vec<PortId>],
    memo: HashMap<(usize, usize, WorkState), u64>,
}

impl WorkSolver<'_> {
    /// Max packets eventually transmitted from `state` onward, starting at
    /// arrival `idx` of `slot`.
    fn best(&mut self, slot: usize, idx: usize, state: WorkState) -> u64 {
        if slot == self.trace.len() {
            // Drain: every resident packet is eventually transmitted.
            return state.iter().map(|&(len, _)| len as u64).sum();
        }
        if let Some(&v) = self.memo.get(&(slot, idx, state.clone())) {
            return v;
        }
        let result = if idx == self.trace[slot].len() {
            // Transmission phase, then next slot.
            let mut next = state.clone();
            let mut completed = 0u64;
            for (i, q) in next.iter_mut().enumerate() {
                let w = self.config.work(PortId::new(i)).cycles() as u16;
                let mut cycles = self.speedup as u16;
                while cycles > 0 && q.0 > 0 {
                    let step = cycles.min(q.1);
                    q.1 -= step;
                    cycles -= step;
                    if q.1 == 0 {
                        q.0 -= 1;
                        completed += 1;
                        q.1 = if q.0 > 0 { w } else { 0 };
                    }
                }
            }
            completed + self.best(slot + 1, 0, next)
        } else {
            let port = self.trace[slot][idx];
            // Option 1: drop.
            let mut best = self.best(slot, idx + 1, state.clone());
            // Option 2: admit, if the buffer has room.
            let occupancy: u32 = state.iter().map(|&(len, _)| len as u32).sum();
            if (occupancy as usize) < self.config.buffer() {
                let mut admitted = state.clone();
                let q = &mut admitted[port.index()];
                if q.0 == 0 {
                    q.1 = self.config.work(port).cycles() as u16;
                }
                q.0 += 1;
                best = best.max(self.best(slot, idx + 1, admitted));
            }
            best
        };
        self.memo.insert((slot, idx, state), result);
        result
    }
}

// ------------------------------------------------------------------------
// Heterogeneous-value model
// ------------------------------------------------------------------------

/// Per-queue state for the value-model search: queue lengths only. Under the
/// drain objective every admitted packet is transmitted, so its value is
/// collected at admission and the buffer dynamics depend only on lengths.
type ValueState = Vec<u16>;

/// Computes the exact optimal total transmitted *value* for the
/// heterogeneous-value model on a per-slot arrival trace, including a full
/// drain after the last slot.
///
/// # Errors
///
/// Returns [`TooLargeError`] if the trace has more than
/// [`MAX_EXACT_ARRIVALS`] arrivals.
///
/// ```
/// use smbm_core::exact_value_opt;
/// use smbm_switch::{PortId, Value, ValuePacket, ValueSwitchConfig};
///
/// let cfg = ValueSwitchConfig::new(1, 1)?;
/// let p = |v| ValuePacket::new(PortId::new(0), Value::new(v));
/// // B = 1: of two same-slot arrivals only one fits; OPT takes the 9.
/// let trace = vec![vec![p(4), p(9)]];
/// assert_eq!(exact_value_opt(&cfg, 1, &trace)?, 9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn exact_value_opt(
    config: &smbm_switch::ValueSwitchConfig,
    speedup: u32,
    trace: &[Vec<ValuePacket>],
) -> Result<u64, TooLargeError> {
    let arrivals: usize = trace.iter().map(Vec::len).sum();
    if arrivals > MAX_EXACT_ARRIVALS {
        return Err(TooLargeError { arrivals });
    }
    let mut solver = ValueSolver {
        ports: config.ports(),
        buffer: config.buffer(),
        speedup,
        trace,
        memo: HashMap::new(),
    };
    let state: ValueState = vec![0; config.ports()];
    Ok(solver.best(0, 0, state))
}

struct ValueSolver<'a> {
    ports: usize,
    buffer: usize,
    speedup: u32,
    trace: &'a [Vec<ValuePacket>],
    memo: HashMap<(usize, usize, ValueState), u64>,
}

impl ValueSolver<'_> {
    fn best(&mut self, slot: usize, idx: usize, state: ValueState) -> u64 {
        if slot == self.trace.len() {
            // Drain: already-collected values all leave; nothing more to add.
            return 0;
        }
        if let Some(&v) = self.memo.get(&(slot, idx, state.clone())) {
            return v;
        }
        let result = if idx == self.trace[slot].len() {
            let mut next = state.clone();
            for q in next.iter_mut() {
                *q = q.saturating_sub(self.speedup as u16);
            }
            self.best(slot + 1, 0, next)
        } else {
            let pkt = self.trace[slot][idx];
            debug_assert!(pkt.port().index() < self.ports);
            let mut best = self.best(slot, idx + 1, state.clone());
            let occupancy: u32 = state.iter().map(|&l| l as u32).sum();
            if (occupancy as usize) < self.buffer {
                let mut admitted = state.clone();
                admitted[pkt.port().index()] += 1;
                best = best.max(pkt.value().get() + self.best(slot, idx + 1, admitted));
            }
            best
        };
        self.memo.insert((slot, idx, state), result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_switch::{Value, ValueSwitchConfig};

    fn p(port: usize) -> PortId {
        PortId::new(port)
    }

    fn vpkt(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(p(port), Value::new(v))
    }

    #[test]
    fn work_opt_empty_trace_is_zero() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        assert_eq!(exact_work_opt(&cfg, 1, &[]).unwrap(), 0);
    }

    #[test]
    fn work_opt_admits_everything_that_fits() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let trace = vec![vec![p(0), p(1), p(1)]];
        assert_eq!(exact_work_opt(&cfg, 1, &trace).unwrap(), 3);
    }

    #[test]
    fn work_opt_respects_buffer_capacity() {
        let cfg = WorkSwitchConfig::contiguous(1, 2).unwrap();
        let trace = vec![vec![p(0); 5]];
        assert_eq!(exact_work_opt(&cfg, 1, &trace).unwrap(), 2);
    }

    #[test]
    fn work_opt_exploits_freed_space_across_slots() {
        // B = 2, single port with w = 1: one slot frees one space per slot.
        let cfg = WorkSwitchConfig::contiguous(1, 2).unwrap();
        let trace = vec![vec![p(0); 3], vec![p(0); 3], vec![p(0); 3]];
        // Slot 1: admit 2 (transmit 1). Slots 2 and 3: refill one each.
        assert_eq!(exact_work_opt(&cfg, 1, &trace).unwrap(), 4);
    }

    #[test]
    fn work_opt_prefers_cheap_packets_when_space_constrained() {
        // Two ports: w = 1 and w = 3, B = 2. A long burst of both: the
        // 1-cycle queue recycles buffer space three times faster, so OPT
        // admits every cheap packet plus two expensive ones.
        let cfg = WorkSwitchConfig::new(
            2,
            vec![smbm_switch::Work::new(1), smbm_switch::Work::new(3)],
        )
        .unwrap();
        let trace: Vec<Vec<PortId>> = (0..6).map(|_| vec![p(0), p(1)]).collect();
        let opt = exact_work_opt(&cfg, 1, &trace).unwrap();
        assert_eq!(opt, 8, "6 cheap + 2 expensive");
    }

    #[test]
    fn work_opt_speedup_helps() {
        let cfg = WorkSwitchConfig::contiguous(1, 2).unwrap();
        let trace = vec![vec![p(0); 3], vec![p(0); 3]];
        let slow = exact_work_opt(&cfg, 1, &trace).unwrap();
        let fast = exact_work_opt(&cfg, 2, &trace).unwrap();
        assert!(fast >= slow);
        assert_eq!(fast, 4); // 2 per slot admitted, all drained
    }

    #[test]
    fn work_opt_rejects_oversized_instances() {
        let cfg = WorkSwitchConfig::contiguous(1, 2).unwrap();
        let trace = vec![vec![p(0); MAX_EXACT_ARRIVALS + 1]];
        let err = exact_work_opt(&cfg, 1, &trace).unwrap_err();
        assert!(err.to_string().contains("exact OPT limited"));
    }

    #[test]
    fn value_opt_empty_trace_is_zero() {
        let cfg = ValueSwitchConfig::new(2, 2).unwrap();
        assert_eq!(exact_value_opt(&cfg, 1, &[]).unwrap(), 0);
    }

    #[test]
    fn value_opt_takes_best_subset() {
        let cfg = ValueSwitchConfig::new(2, 2).unwrap();
        let trace = vec![vec![vpkt(0, 1), vpkt(0, 5), vpkt(1, 3)]];
        assert_eq!(exact_value_opt(&cfg, 1, &trace).unwrap(), 8);
    }

    #[test]
    fn value_opt_across_slots_uses_freed_space() {
        let cfg = ValueSwitchConfig::new(1, 1).unwrap();
        let trace = vec![vec![vpkt(0, 2)], vec![vpkt(0, 7)]];
        // B = 1 but one transmits per slot: both fit over time.
        assert_eq!(exact_value_opt(&cfg, 1, &trace).unwrap(), 9);
    }

    #[test]
    fn value_opt_multi_port_parallel_drain() {
        let cfg = ValueSwitchConfig::new(2, 2).unwrap();
        let trace = vec![vec![vpkt(0, 3), vpkt(1, 4)], vec![vpkt(0, 5), vpkt(1, 6)]];
        // Each port drains one per slot: everything is admitted.
        assert_eq!(exact_value_opt(&cfg, 1, &trace).unwrap(), 18);
    }

    #[test]
    fn value_opt_single_port_bottleneck() {
        // All to one port, B = 2: admissions limited by drain rate.
        let cfg = ValueSwitchConfig::new(2, 1).unwrap();
        let trace = vec![vec![vpkt(0, 9), vpkt(0, 9), vpkt(0, 9)], vec![vpkt(0, 9)]];
        // Slot 1: admit 2 (one leaves). Slot 2: admit 1. Total 3 x 9.
        assert_eq!(exact_value_opt(&cfg, 1, &trace).unwrap(), 27);
    }

    #[test]
    fn value_opt_rejects_oversized_instances() {
        let cfg = ValueSwitchConfig::new(2, 1).unwrap();
        let trace = vec![vec![vpkt(0, 1); MAX_EXACT_ARRIVALS + 1]];
        assert!(exact_value_opt(&cfg, 1, &trace).is_err());
    }
}
