//! Longest-Work-Drop (LWD) — the paper's main contribution (Section III).

use smbm_switch::{PortId, WorkPacket, WorkSwitch};

use crate::index::{apply_queue_changes, ScoreIndex, SelectMode};
use crate::Decision;

/// Tie-breaking rule used by [`Lwd`] when several queues attain the maximal
/// total work. The paper picks "maximal among those queues" (we read this as
/// the maximal processing requirement); the alternatives are exposed for the
/// ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LwdTieBreak {
    /// Prefer the queue with the largest per-packet requirement (paper).
    #[default]
    MaxWork,
    /// Prefer the queue with the most packets (LQD-flavoured).
    MaxLen,
    /// Prefer the queue with the smallest per-packet requirement.
    MinWork,
}

/// **LWD** — push-out policy that evicts from the queue with the most total
/// *work* (sum of residual processing), the quantity that actually occupies
/// the cores. Theorem 7 proves LWD is at most **2-competitive** for any
/// switch configuration; Theorem 6 gives a `4/3 − 6/B` lower bound, and the
/// `sqrt(2)` LQD lower bound applies when processing is uniform.
///
/// On arrival at port `i`, let `j* = argmax_j (W_j + [i = j] * w_i)` (total
/// work after virtually adding the arrival). Then:
///
/// 1. if the buffer is not full, accept;
/// 2. if the buffer is full and `i != j*`, push out the tail of `Q_{j*}` and
///    accept;
/// 3. otherwise drop.
///
/// With homogeneous processing `W_j = w * |Q_j|`, so LWD degenerates to LQD.
///
/// Victim selection is O(log n) by default on large switches, via a
/// [`ScoreIndex`] over `(W_j, tie_j)` maintained from the switch's
/// queue-change events; [`Lwd::scan`] keeps the original O(n) scan as the
/// differential oracle, and small switches scan regardless (the index only
/// pays off once the scan outgrows a couple of cache lines).
#[derive(Debug, Clone, Default)]
pub struct Lwd {
    tie_break: LwdTieBreak,
    index: Option<ScoreIndex<(u64, u64)>>,
    mode: SelectMode,
}

impl Lwd {
    /// Creates LWD with the paper's tie-breaking (largest requirement).
    pub fn new() -> Self {
        Self::with_tie_break(LwdTieBreak::MaxWork)
    }

    /// Creates LWD with an explicit tie-breaking rule (ablation).
    pub fn with_tie_break(tie_break: LwdTieBreak) -> Self {
        Lwd {
            tie_break,
            index: None,
            mode: SelectMode::Auto,
        }
    }

    /// Creates LWD with victim selection by full scan instead of the
    /// incremental index (differential-test oracle).
    pub fn scan() -> Self {
        Self::scan_with_tie_break(LwdTieBreak::MaxWork)
    }

    /// Scan-based LWD with an explicit tie-breaking rule.
    pub fn scan_with_tie_break(tie_break: LwdTieBreak) -> Self {
        Lwd {
            tie_break,
            index: None,
            mode: SelectMode::Scan,
        }
    }

    /// Creates LWD that always maintains the incremental index, regardless
    /// of switch size (differential tests, benches).
    pub fn indexed() -> Self {
        Self::indexed_with_tie_break(LwdTieBreak::MaxWork)
    }

    /// Always-indexed LWD with an explicit tie-breaking rule.
    pub fn indexed_with_tie_break(tie_break: LwdTieBreak) -> Self {
        Lwd {
            tie_break,
            index: None,
            mode: SelectMode::Indexed,
        }
    }

    /// The configured tie-breaking rule.
    pub fn tie_break(&self) -> LwdTieBreak {
        self.tie_break
    }

    /// The `(score, tie)` key of `port`'s resident queue under `tie_break`.
    fn key_for(switch: &WorkSwitch, port: PortId, tie_break: LwdTieBreak) -> (u64, u64) {
        let q = switch.queue(port);
        let tie = match tie_break {
            LwdTieBreak::MaxWork => q.work().as_u64(),
            LwdTieBreak::MaxLen => q.len() as u64,
            LwdTieBreak::MinWork => u64::MAX - q.work().as_u64(),
        };
        (q.total_work(), tie)
    }

    /// The `(score, tie)` key of `port`'s resident queue.
    fn port_key(&self, switch: &WorkSwitch, port: PortId) -> (u64, u64) {
        Self::key_for(switch, port, self.tie_break)
    }

    /// Indexed equivalent of [`Lwd::heaviest_queue`], rebuilding the index
    /// from scratch when absent or sized for a different switch.
    fn indexed_heaviest(&mut self, switch: &WorkSwitch, arriving: PortId) -> PortId {
        if self
            .index
            .as_ref()
            .is_none_or(|i| i.ports() != switch.ports())
        {
            let tie_break = self.tie_break;
            let mut idx = ScoreIndex::new(switch.ports());
            idx.rebuild_with(|i| Some(Self::key_for(switch, PortId::new(i), tie_break)));
            self.index = Some(idx);
        }
        let (w, tie) = self.port_key(switch, arriving);
        let virtual_key = (w + switch.queue(arriving).work().as_u64(), tie);
        self.index
            .as_ref()
            .expect("index built above")
            .max_with(arriving, virtual_key)
    }

    /// The queue with maximal total work once `arriving` is virtually added.
    pub fn heaviest_queue(&self, switch: &WorkSwitch, arriving: PortId) -> PortId {
        let mut best = PortId::new(0);
        let mut best_work = 0u64;
        let mut best_tie = 0u64;
        let mut first = true;
        for (port, q) in switch.queues() {
            let w = q.total_work()
                + if port == arriving {
                    q.work().as_u64()
                } else {
                    0
                };
            let tie = match self.tie_break {
                LwdTieBreak::MaxWork => q.work().as_u64(),
                LwdTieBreak::MaxLen => q.len() as u64,
                // Invert so that "larger tie value wins" selects min work.
                LwdTieBreak::MinWork => u64::MAX - q.work().as_u64(),
            };
            // `>=` lets later indices win exact ties, keeping selection total.
            if first || (w, tie) >= (best_work, best_tie) {
                best = port;
                best_work = w;
                best_tie = tie;
                first = false;
            }
        }
        best
    }
}

impl super::WorkPolicy for Lwd {
    fn name(&self) -> &str {
        match self.tie_break {
            LwdTieBreak::MaxWork => "LWD",
            LwdTieBreak::MaxLen => "LWD-maxlen",
            LwdTieBreak::MinWork => "LWD-minwork",
        }
    }

    fn decide(&mut self, switch: &WorkSwitch, pkt: WorkPacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        let heaviest = if self.mode.use_index(switch.ports()) {
            self.indexed_heaviest(switch, pkt.port())
        } else {
            self.heaviest_queue(switch, pkt.port())
        };
        if heaviest != pkt.port() {
            Decision::PushOut(heaviest)
        } else {
            Decision::Drop
        }
    }

    fn wants_queue_events(&self, ports: usize) -> bool {
        self.mode.use_index(ports)
    }

    fn queue_changed(&mut self, switch: &WorkSwitch, port: PortId) {
        let key = self.port_key(switch, port);
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                idx.set(port, Some(key));
            }
        }
    }

    fn queues_changed(&mut self, switch: &WorkSwitch, ports: &[PortId]) {
        let tie_break = self.tie_break;
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                apply_queue_changes(idx, ports, |i| {
                    Some(Self::key_for(switch, PortId::new(i), tie_break))
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{WorkPolicy, WorkRunner};
    use smbm_switch::WorkSwitchConfig;

    fn runner(k: u32, b: usize) -> WorkRunner<Lwd> {
        WorkRunner::new(WorkSwitchConfig::contiguous(k, b).unwrap(), Lwd::new(), 1)
    }

    #[test]
    fn greedy_while_space_remains() {
        let mut r = runner(3, 3);
        for port in 0..3 {
            assert_eq!(r.arrival_to(PortId::new(port)).unwrap(), Decision::Accept);
        }
    }

    #[test]
    fn pushes_out_most_work_not_most_packets() {
        // Queue 0 (w=1) holds 3 packets (W=3); queue 2 (w=3) holds 1 (W=3);
        // tie on work broken toward larger requirement; then make queue 2
        // strictly heavier to verify the primary key.
        let mut r = runner(3, 4);
        for _ in 0..3 {
            r.arrival_to(PortId::new(0)).unwrap();
        }
        r.arrival_to(PortId::new(2)).unwrap();
        assert!(r.switch().is_full());
        assert_eq!(r.switch().queue(PortId::new(0)).total_work(), 3);
        assert_eq!(r.switch().queue(PortId::new(2)).total_work(), 3);
        // Arrival to port 1 (w=2): works tie at 3 — tie-break on larger w
        // selects queue 2 even though queue 0 has three times the packets.
        let d = r.arrival_to(PortId::new(1)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(2)));
    }

    #[test]
    fn virtual_add_counts_own_arrival() {
        let mut r = runner(2, 4);
        // Queue 1 (w=2): 2 packets, W=4. Queue 0 (w=1): 2 packets, W=2.
        for _ in 0..2 {
            r.arrival_to(PortId::new(1)).unwrap();
            r.arrival_to(PortId::new(0)).unwrap();
        }
        assert!(r.switch().is_full());
        // Arrival to queue 1: virtually W=6, it is the heaviest => drop.
        assert_eq!(r.arrival_to(PortId::new(1)).unwrap(), Decision::Drop);
        // Arrival to queue 0: virtually W=3 < 4 => evict from queue 1.
        assert_eq!(
            r.arrival_to(PortId::new(0)).unwrap(),
            Decision::PushOut(PortId::new(1))
        );
    }

    #[test]
    fn residual_work_counts_for_victim_choice() {
        let mut r = runner(2, 2);
        r.arrival_to(PortId::new(1)).unwrap(); // w=2, W=2
        r.arrival_to(PortId::new(1)).unwrap(); // W=4
        r.transmission(); // head residual 1, W=3
        r.end_slot();
        assert_eq!(r.switch().queue(PortId::new(1)).total_work(), 3);
        // Arrival to port 0 (virtual W=1): queue 1 is heavier.
        assert_eq!(
            r.arrival_to(PortId::new(0)).unwrap(),
            Decision::PushOut(PortId::new(1))
        );
    }

    #[test]
    fn emulates_lqd_under_homogeneous_processing() {
        use crate::work::Lqd;
        let cfg = WorkSwitchConfig::homogeneous(3, 6).unwrap();
        let mut lwd = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
        let mut lqd = WorkRunner::new(cfg, Lqd::new(), 1);
        // A fixed arrival pattern: both policies must take identical actions.
        let pattern = [0, 1, 1, 2, 1, 0, 0, 1, 2, 2, 1, 0, 2, 2, 1];
        for &p in &pattern {
            let a = lwd.arrival_to(PortId::new(p)).unwrap();
            let b = lqd.arrival_to(PortId::new(p)).unwrap();
            assert_eq!(a, b, "diverged on arrival to port {p}");
        }
        for p in 0..3 {
            assert_eq!(
                lwd.switch().queue(PortId::new(p)).len(),
                lqd.switch().queue(PortId::new(p)).len()
            );
        }
    }

    #[test]
    fn tie_break_variants_differ() {
        let cfg = WorkSwitchConfig::contiguous(3, 4).unwrap();
        let mut maxw = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
        let mut minw = WorkRunner::new(cfg, Lwd::with_tie_break(LwdTieBreak::MinWork), 1);
        for r in [&mut maxw, &mut minw] {
            for _ in 0..3 {
                r.arrival_to(PortId::new(0)).unwrap();
            }
            r.arrival_to(PortId::new(2)).unwrap();
        }
        // Tie at W=3 between queue 0 (w=1) and queue 2 (w=3).
        assert_eq!(
            maxw.arrival_to(PortId::new(1)).unwrap(),
            Decision::PushOut(PortId::new(2))
        );
        assert_eq!(
            minw.arrival_to(PortId::new(1)).unwrap(),
            Decision::PushOut(PortId::new(0))
        );
    }

    #[test]
    fn names_reflect_tie_break() {
        assert_eq!(Lwd::new().name(), "LWD");
        assert_eq!(
            Lwd::with_tie_break(LwdTieBreak::MaxLen).name(),
            "LWD-maxlen"
        );
        assert_eq!(
            Lwd::with_tie_break(LwdTieBreak::MinWork).name(),
            "LWD-minwork"
        );
        assert_eq!(Lwd::new().tie_break(), LwdTieBreak::MaxWork);
    }

    #[test]
    fn theorem6_first_burst_distribution() {
        // k >= 6, burst: B x [1], B/4 x [2], B/6 x [3], B/12 x [6].
        // LWD ends up with W equalised: B/2 x [1] and all the larger packets.
        let b = 24usize;
        let cfg = WorkSwitchConfig::new(
            b,
            vec![
                smbm_switch::Work::new(1),
                smbm_switch::Work::new(2),
                smbm_switch::Work::new(3),
                smbm_switch::Work::new(6),
            ],
        )
        .unwrap();
        let mut r = WorkRunner::new(cfg, Lwd::new(), 1);
        for _ in 0..b {
            r.arrival_to(PortId::new(0)).unwrap();
        }
        for _ in 0..b / 4 {
            r.arrival_to(PortId::new(1)).unwrap();
        }
        for _ in 0..b / 6 {
            r.arrival_to(PortId::new(2)).unwrap();
        }
        for _ in 0..b / 12 {
            r.arrival_to(PortId::new(3)).unwrap();
        }
        let lens: Vec<usize> = (0..4)
            .map(|p| r.switch().queue(PortId::new(p)).len())
            .collect();
        // Total work equalised at B/2 per queue: 12 = 12x[1] = 6x[2] = 4x[3] = 2x[6].
        assert_eq!(lens, vec![b / 2, b / 4, b / 6, b / 12]);
        let works: Vec<u64> = (0..4)
            .map(|p| r.switch().queue(PortId::new(p)).total_work())
            .collect();
        assert!(works.iter().all(|&w| w == (b / 2) as u64), "{works:?}");
    }
}
