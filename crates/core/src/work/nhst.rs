//! Non-Push-Out-Harmonic-Static-Threshold (NHST).

use smbm_switch::{WorkPacket, WorkSwitch};

use crate::Decision;

/// **NHST** — greedy non-push-out policy with *static* per-queue thresholds
/// inversely proportional to required processing.
///
/// On arrival of a packet for port `i`, accept iff the buffer has free space
/// and `|Q_i| < B / (w_i * Z)` where `Z = sum_j 1/w_j`; otherwise drop.
///
/// Theorem 1 shows NHST is `(kZ + o(kZ))`-competitive — the burst
/// `B x [k]` forces it to accept only a `1/(kZ)` fraction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Nhst {
    _priv: (),
}

impl Nhst {
    /// Creates the policy.
    pub fn new() -> Self {
        Nhst { _priv: () }
    }

    /// The static threshold for `port` under `switch`'s configuration, in
    /// fractional packets (the paper elides floors; we compare against the
    /// real-valued threshold).
    pub fn threshold(switch: &WorkSwitch, port: smbm_switch::PortId) -> f64 {
        let z = switch.config().inverse_work_sum();
        switch.buffer() as f64 / (switch.config().work(port).cycles() as f64 * z)
    }
}

impl super::WorkPolicy for Nhst {
    fn name(&self) -> &str {
        "NHST"
    }

    fn decide(&mut self, switch: &WorkSwitch, pkt: WorkPacket) -> Decision {
        if switch.is_full() {
            return Decision::Drop;
        }
        let len = switch.queue(pkt.port()).len() as f64;
        if len < Self::threshold(switch, pkt.port()) {
            Decision::Accept
        } else {
            Decision::Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{WorkPolicy, WorkRunner};
    use smbm_switch::{PortId, WorkSwitchConfig};

    fn runner(k: u32, b: usize) -> WorkRunner<Nhst> {
        WorkRunner::new(WorkSwitchConfig::contiguous(k, b).unwrap(), Nhst::new(), 1)
    }

    #[test]
    fn respects_inverse_threshold() {
        // k = 2: Z = 1 + 1/2 = 1.5, B = 12.
        // Port 0 (w=1): threshold 12 / 1.5 = 8.
        // Port 1 (w=2): threshold 12 / 3  = 4.
        let mut r = runner(2, 12);
        for _ in 0..8 {
            assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Accept);
        }
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop);
        for _ in 0..4 {
            assert_eq!(r.arrival_to(PortId::new(1)).unwrap(), Decision::Accept);
        }
        assert_eq!(r.arrival_to(PortId::new(1)).unwrap(), Decision::Drop);
    }

    #[test]
    fn never_pushes_out() {
        let mut r = runner(3, 6);
        for _ in 0..20 {
            let d = r.arrival_to(PortId::new(2)).unwrap();
            assert!(matches!(d, Decision::Accept | Decision::Drop));
        }
        assert_eq!(r.switch().counters().pushed_out(), 0);
    }

    #[test]
    fn drops_when_buffer_full_even_under_threshold() {
        // Homogeneous works: every threshold is B/n = 2, but fill the buffer
        // via one queue... thresholds prevent that; instead use k=1 so the
        // single queue's threshold equals B and fill completely.
        let mut r = runner(1, 4);
        for _ in 0..4 {
            assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Accept);
        }
        assert!(r.switch().is_full());
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop);
    }

    #[test]
    fn theorem1_burst_accepts_b_over_kz_fraction() {
        // Burst of B packets for the largest-work port: NHST accepts only
        // ~B/(kZ) of them.
        let k = 4;
        let b = 100;
        let mut r = runner(k, b);
        for _ in 0..b {
            let _ = r.arrival_to(PortId::new(3)).unwrap();
        }
        let z: f64 = (1..=4).map(|w| 1.0 / w as f64).sum();
        let expected = (b as f64 / (4.0 * z)).ceil() as usize;
        let got = r.switch().queue(PortId::new(3)).len();
        assert!(
            (got as i64 - expected as i64).abs() <= 1,
            "accepted {got}, expected about {expected}"
        );
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Nhst::new().name(), "NHST");
    }
}
