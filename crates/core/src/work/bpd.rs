//! Biggest-Packet-Drop (BPD) and its singleton-sparing variant BPD1.

use smbm_switch::{PortId, WorkPacket, WorkSwitch};

use crate::Decision;

/// **BPD** — push-out policy that, on congestion, evicts from the non-empty
/// queue with the *largest processing requirement*, trying to keep the cheap
/// packets.
///
/// On arrival at port `i`, let `Q_j` be the non-empty queue with the largest
/// requirement (largest index on ties, consistent with the paper's sorted
/// ordering). Then:
///
/// 1. if the buffer is not full, accept;
/// 2. if the buffer is full and `w_i <= w_j`, push out the tail of `Q_j` and
///    accept;
/// 3. otherwise drop.
///
/// Theorem 5 shows BPD is at least `H_k ≈ ln k`-competitive: it starves all
/// but the cheapest traffic class. The simulation section introduces
/// **BPD1** ([`Bpd::sparing_singletons`]), which never pushes out the last
/// packet of a queue and therefore keeps more ports active.
#[derive(Debug, Clone, Copy)]
pub struct Bpd {
    /// When true (BPD1), queues holding a single packet are not victimized.
    spare_singletons: bool,
}

impl Default for Bpd {
    fn default() -> Self {
        Self::new()
    }
}

impl Bpd {
    /// Creates plain BPD.
    pub fn new() -> Self {
        Bpd {
            spare_singletons: false,
        }
    }

    /// Creates BPD1: like BPD but never pushes out the last packet in a
    /// queue (avoids artificially deactivating ports).
    pub fn sparing_singletons() -> Self {
        Bpd {
            spare_singletons: true,
        }
    }

    /// Whether this instance is the BPD1 variant.
    pub fn spares_singletons(&self) -> bool {
        self.spare_singletons
    }

    /// The push-out victim: the eligible queue with the largest requirement
    /// (largest index breaks ties). BPD1 only considers queues with at least
    /// two packets.
    fn victim(&self, switch: &WorkSwitch) -> Option<PortId> {
        let min_len = if self.spare_singletons { 2 } else { 1 };
        let mut best: Option<(PortId, u32)> = None;
        for (port, q) in switch.queues() {
            if q.len() < min_len {
                continue;
            }
            let w = q.work().cycles();
            if best.is_none_or(|(_, bw)| w >= bw) {
                best = Some((port, w));
            }
        }
        best.map(|(p, _)| p)
    }
}

impl super::WorkPolicy for Bpd {
    fn name(&self) -> &str {
        if self.spare_singletons {
            "BPD1"
        } else {
            "BPD"
        }
    }

    fn decide(&mut self, switch: &WorkSwitch, pkt: WorkPacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        match self.victim(switch) {
            Some(victim) if pkt.work() <= switch.queue(victim).work() => {
                if victim == pkt.port() {
                    // Evicting our own tail to admit an identical packet is a
                    // no-op; the paper's case (3) drops here.
                    Decision::Drop
                } else {
                    Decision::PushOut(victim)
                }
            }
            _ => Decision::Drop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{WorkPolicy, WorkRunner};
    use smbm_switch::WorkSwitchConfig;

    fn runner(policy: Bpd, k: u32, b: usize) -> WorkRunner<Bpd> {
        WorkRunner::new(WorkSwitchConfig::contiguous(k, b).unwrap(), policy, 1)
    }

    #[test]
    fn greedy_while_space_remains() {
        let mut r = runner(Bpd::new(), 3, 3);
        for port in [2, 1, 0] {
            assert_eq!(r.arrival_to(PortId::new(port)).unwrap(), Decision::Accept);
        }
    }

    #[test]
    fn evicts_biggest_requirement_first() {
        let mut r = runner(Bpd::new(), 3, 3);
        r.arrival_to(PortId::new(1)).unwrap();
        r.arrival_to(PortId::new(2)).unwrap();
        r.arrival_to(PortId::new(2)).unwrap();
        assert!(r.switch().is_full());
        // A 1-cycle arrival evicts from the w=3 queue.
        let d = r.arrival_to(PortId::new(0)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(2)));
        // Another 1-cycle arrival evicts the remaining w=3 packet.
        let d = r.arrival_to(PortId::new(0)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(2)));
        // Next victim class is w=2.
        let d = r.arrival_to(PortId::new(0)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
        // Now only 1-cycle packets remain; arrival to port 0 is its own class.
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop);
        r.switch().check_invariants().unwrap();
    }

    #[test]
    fn drops_bigger_arrival_than_any_resident() {
        let cfg = WorkSwitchConfig::new(
            2,
            vec![smbm_switch::Work::new(1), smbm_switch::Work::new(3)],
        )
        .unwrap();
        let mut r = WorkRunner::new(cfg, Bpd::new(), 1);
        r.arrival_to(PortId::new(0)).unwrap();
        r.arrival_to(PortId::new(0)).unwrap();
        // Buffer full of w=1; a w=3 arrival must not displace them.
        assert_eq!(r.arrival_to(PortId::new(1)).unwrap(), Decision::Drop);
    }

    #[test]
    fn equal_work_arrival_may_displace() {
        // Paper case (2) is `i <= j`, which admits equality: an arrival of the
        // same class as the biggest resident class displaces it when it is a
        // different queue.
        let cfg = WorkSwitchConfig::new(2, vec![smbm_switch::Work::new(2); 2]).unwrap();
        let mut r = WorkRunner::new(cfg, Bpd::new(), 1);
        r.arrival_to(PortId::new(1)).unwrap();
        r.arrival_to(PortId::new(1)).unwrap();
        let d = r.arrival_to(PortId::new(0)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
    }

    #[test]
    fn bpd1_spares_last_packet() {
        let mut r = runner(Bpd::sparing_singletons(), 3, 3);
        r.arrival_to(PortId::new(2)).unwrap(); // singleton w=3
        r.arrival_to(PortId::new(1)).unwrap();
        r.arrival_to(PortId::new(1)).unwrap(); // w=2 queue has two
        assert!(r.switch().is_full());
        // BPD would evict from queue 2; BPD1 skips the singleton and evicts
        // from the w=2 queue instead.
        let d = r.arrival_to(PortId::new(0)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
        assert_eq!(r.switch().queue(PortId::new(2)).len(), 1);
    }

    #[test]
    fn bpd1_drops_when_all_queues_are_singletons() {
        let mut r = runner(Bpd::sparing_singletons(), 3, 3);
        for port in 0..3 {
            r.arrival_to(PortId::new(port)).unwrap();
        }
        assert!(r.switch().is_full());
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop);
        assert_eq!(r.switch().counters().pushed_out(), 0);
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(Bpd::new().name(), "BPD");
        assert_eq!(Bpd::sparing_singletons().name(), "BPD1");
        assert!(Bpd::sparing_singletons().spares_singletons());
    }

    #[test]
    fn theorem5_shape_starves_everything_but_cheapest() {
        // Full set of packets every slot: BPD ends up holding only 1-cycle
        // packets after the initial fill.
        let k = 4;
        let b = 12;
        let mut r = runner(Bpd::new(), k, b);
        for _ in 0..20 {
            for port in 0..k as usize {
                for _ in 0..b {
                    let _ = r.arrival_to(PortId::new(port)).unwrap();
                }
            }
            r.transmission();
            r.end_slot();
        }
        let q0 = r.switch().queue(PortId::new(0)).len();
        let others: usize = (1..k as usize)
            .map(|p| r.switch().queue(PortId::new(p)).len())
            .sum();
        assert!(q0 > 0);
        assert_eq!(others, 0, "BPD kept non-cheapest packets");
    }
}
