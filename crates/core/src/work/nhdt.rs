//! Non-Push-Out-Harmonic-Dynamic-Threshold (NHDT), from Kesselman & Mansour.

use smbm_switch::{WorkPacket, WorkSwitch};

use crate::Decision;

/// **NHDT** — greedy non-push-out policy with *dynamic* harmonic thresholds:
/// for every `m`, the `m` fullest queues may jointly hold at most
/// `(B/H_n) * H_m` packets, where `H_m` is the m-th harmonic number.
///
/// On arrival at port `i`, let `j_1, ..., j_m = i` be the queues with
/// `|Q_j| >= |Q_i|`; accept iff the buffer has space and
/// `sum_s |Q_{j_s}| < (B/H_n) * H_m`.
///
/// For homogeneous processing NHDT is `O(log n)`-competitive; Theorem 3 shows
/// that with heterogeneous processing it degrades to at least
/// `(1/2)sqrt(k ln k)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Nhdt {
    _priv: (),
}

impl Nhdt {
    /// Creates the policy.
    pub fn new() -> Self {
        Nhdt { _priv: () }
    }
}

/// The `m`-th harmonic number `H_m = 1 + 1/2 + ... + 1/m` (`H_0 = 0`).
pub fn harmonic(m: usize) -> f64 {
    (1..=m).map(|i| 1.0 / i as f64).sum()
}

impl super::WorkPolicy for Nhdt {
    fn name(&self) -> &str {
        "NHDT"
    }

    fn decide(&mut self, switch: &WorkSwitch, pkt: WorkPacket) -> Decision {
        if switch.is_full() {
            return Decision::Drop;
        }
        let own_len = switch.queue(pkt.port()).len();
        let mut m = 0usize;
        let mut occupied: u64 = 0;
        for (_, q) in switch.queues() {
            if q.len() >= own_len {
                m += 1;
                occupied += q.len() as u64;
            }
        }
        // `pkt.port()` itself always satisfies |Q_i| >= |Q_i|, so m >= 1.
        debug_assert!(m >= 1);
        let h_n = harmonic(switch.ports());
        let bound = switch.buffer() as f64 / h_n * harmonic(m);
        if (occupied as f64) < bound {
            Decision::Accept
        } else {
            Decision::Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{WorkPolicy, WorkRunner};
    use smbm_switch::{PortId, WorkSwitchConfig};

    fn runner(k: u32, b: usize) -> WorkRunner<Nhdt> {
        WorkRunner::new(WorkSwitchConfig::contiguous(k, b).unwrap(), Nhdt::new(), 1)
    }

    #[test]
    fn harmonic_numbers() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn single_queue_bounded_by_first_harmonic_share() {
        // n = 2, B = 12, H_2 = 1.5. A single (fullest) queue may hold at most
        // B/H_2 * H_1 = 8 packets.
        let mut r = runner(2, 12);
        let mut accepted = 0;
        for _ in 0..12 {
            if r.arrival_to(PortId::new(0)).unwrap().admits() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 8);
    }

    #[test]
    fn all_queues_jointly_bounded_by_buffer() {
        // With m = n the bound is exactly B, so NHDT can fill the buffer when
        // arrivals are spread evenly.
        let mut r = runner(3, 9);
        let mut admitted = 0;
        for round in 0..6 {
            let _ = round;
            for port in 0..3 {
                if r.arrival_to(PortId::new(port)).unwrap().admits() {
                    admitted += 1;
                }
            }
        }
        assert!(admitted <= 9);
        // The balanced pattern should do clearly better than one queue alone.
        assert!(admitted >= 6, "balanced arrivals admitted only {admitted}");
    }

    #[test]
    fn second_queue_gets_harmonic_increment() {
        // n = 2, B = 12: one queue alone holds <= 8; two queues jointly
        // <= B/H_2 * H_2 = 12.
        let mut r = runner(2, 12);
        for _ in 0..8 {
            assert!(r.arrival_to(PortId::new(0)).unwrap().admits());
        }
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop);
        // The shorter queue is still admitted: its m counts both queues.
        let mut second = 0;
        for _ in 0..8 {
            if r.arrival_to(PortId::new(1)).unwrap().admits() {
                second += 1;
            }
        }
        assert_eq!(second, 4, "joint bound 12 leaves room for 4");
    }

    #[test]
    fn never_pushes_out() {
        let mut r = runner(3, 6);
        for _ in 0..30 {
            let _ = r.arrival_to(PortId::new(0)).unwrap();
        }
        assert_eq!(r.switch().counters().pushed_out(), 0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Nhdt::new().name(), "NHDT");
    }
}
