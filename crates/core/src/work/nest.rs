//! Non-Push-Out-Equal-Static-Threshold (NEST).

use smbm_switch::{WorkPacket, WorkSwitch};

use crate::Decision;

/// **NEST** — greedy non-push-out policy with the *same* static threshold
/// `B/n` on every queue: a complete partition of the shared buffer.
///
/// Accept a packet for port `i` iff the buffer has free space and
/// `|Q_i| < B/n`. Theorem 2 shows NEST is `(n + o(n))`-competitive — each
/// queue behaves like an isolated homogeneous queue of size `B/n`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Nest {
    _priv: (),
}

impl Nest {
    /// Creates the policy.
    pub fn new() -> Self {
        Nest { _priv: () }
    }
}

impl super::WorkPolicy for Nest {
    fn name(&self) -> &str {
        "NEST"
    }

    fn decide(&mut self, switch: &WorkSwitch, pkt: WorkPacket) -> Decision {
        if switch.is_full() {
            return Decision::Drop;
        }
        // |Q_i| < B/n without floating point: |Q_i| * n < B.
        if switch.queue(pkt.port()).len() * switch.ports() < switch.buffer() {
            Decision::Accept
        } else {
            Decision::Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{WorkPolicy, WorkRunner};
    use smbm_switch::{PortId, WorkSwitchConfig};

    fn runner(k: u32, b: usize) -> WorkRunner<Nest> {
        WorkRunner::new(WorkSwitchConfig::contiguous(k, b).unwrap(), Nest::new(), 1)
    }

    #[test]
    fn partitions_buffer_evenly() {
        let mut r = runner(4, 8); // B/n = 2
        for port in 0..4 {
            assert_eq!(r.arrival_to(PortId::new(port)).unwrap(), Decision::Accept);
            assert_eq!(r.arrival_to(PortId::new(port)).unwrap(), Decision::Accept);
            assert_eq!(r.arrival_to(PortId::new(port)).unwrap(), Decision::Drop);
        }
        assert!(r.switch().is_full());
    }

    #[test]
    fn fractional_share_rounds_up_partially() {
        // B = 5, n = 2: threshold 2.5, so each queue takes 3 packets at most
        // (|Q| * n < B admits len 0, 1, 2).
        let mut r = runner(2, 5);
        for _ in 0..2 {
            assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Accept);
        }
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Accept); // len 2 < 2.5
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop); // len 3 > 2.5
    }

    #[test]
    fn never_pushes_out() {
        let mut r = runner(2, 4);
        for _ in 0..10 {
            let _ = r.arrival_to(PortId::new(1)).unwrap();
        }
        assert_eq!(r.switch().counters().pushed_out(), 0);
    }

    #[test]
    fn queue_drains_and_reopens() {
        let mut r = runner(1, 2); // single port, threshold 2
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Accept);
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Accept);
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop);
        r.transmission();
        r.end_slot();
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Accept);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Nest::new().name(), "NEST");
    }
}
