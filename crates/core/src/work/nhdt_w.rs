//! A work-aware generalization of NHDT — a candidate for the open problem
//! the paper leaves after Theorem 3 ("it is unclear how to generalize NHDT
//! to heterogeneous processing better; this remains an interesting problem
//! for future research").

use smbm_switch::{WorkPacket, WorkSwitch};

use crate::work::nhdt::harmonic;
use crate::Decision;

/// **NHDT-W** — NHDT with harmonic *work* thresholds: queues are ranked by
/// outstanding work `W_j` instead of length, and for every `m` the `m`
/// busiest queues may jointly hold at most `(Ŵ/H_n) * H_m` cycles of work,
/// where `Ŵ = B * hm(w)` is the buffer expressed in work units via the
/// harmonic mean `hm(w) = n / Σ(1/w_i)` of the per-port requirements.
///
/// Intuition: Theorem 3 breaks NHDT by letting it fill its harmonic *packet*
/// shares with expensive packets; counting cycles instead makes a burst of
/// heavy packets exhaust its share `w` times faster, preserving room for
/// cheap traffic. On Theorem 3's own construction this repairs most of the
/// damage (see the `ablations` bench and `tests/extensions.rs`), though no
/// competitive bound is claimed — it is future work executed, not proved.
#[derive(Debug, Clone, Copy, Default)]
pub struct NhdtW {
    _priv: (),
}

impl NhdtW {
    /// Creates the policy.
    pub fn new() -> Self {
        NhdtW { _priv: () }
    }

    /// The work budget `Ŵ = B * hm(w)`.
    pub fn work_budget(switch: &WorkSwitch) -> f64 {
        let hm = switch.ports() as f64 / switch.config().inverse_work_sum();
        switch.buffer() as f64 * hm
    }
}

impl super::WorkPolicy for NhdtW {
    fn name(&self) -> &str {
        "NHDT-W"
    }

    fn decide(&mut self, switch: &WorkSwitch, pkt: WorkPacket) -> Decision {
        if switch.is_full() {
            return Decision::Drop;
        }
        // Work of the destination queue once the arrival lands, so an empty
        // queue still competes with its own packet's weight.
        let own = switch.queue(pkt.port()).total_work() + pkt.work().as_u64();
        let mut m = 0usize;
        let mut occupied: u64 = 0;
        for (port, q) in switch.queues() {
            let w = if port == pkt.port() {
                own
            } else {
                q.total_work()
            };
            if w >= own {
                m += 1;
                occupied += w;
            }
        }
        debug_assert!(m >= 1);
        let bound = Self::work_budget(switch) / harmonic(switch.ports()) * harmonic(m);
        if (occupied as f64) <= bound {
            Decision::Accept
        } else {
            Decision::Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{WorkPolicy, WorkRunner};
    use smbm_switch::{PortId, WorkSwitchConfig};

    #[test]
    fn degenerates_to_packet_thresholds_on_unit_work() {
        // With w = 1 everywhere, Ŵ = B and the policy is NHDT on lengths
        // (compare the single-queue cap with NHDT's test).
        let cfg = WorkSwitchConfig::homogeneous(2, 12).unwrap();
        let mut r = WorkRunner::new(cfg, NhdtW::new(), 1);
        let mut accepted = 0;
        for _ in 0..12 {
            if r.arrival_to(PortId::new(0)).unwrap().admits() {
                accepted += 1;
            }
        }
        // Bound for the fullest queue: (12/H_2) * H_1 = 8.
        assert_eq!(accepted, 8);
    }

    #[test]
    fn heavy_queue_exhausts_share_quickly() {
        // Contiguous k = 4, B = 24: hm(w) = 4 / (25/12) = 1.92, Ŵ = 46.08.
        // Single-queue work cap: Ŵ/H_4 = 22.1 cycles — the w=4 queue stops
        // after ~5 packets where plain NHDT would take 11.
        let cfg = WorkSwitchConfig::contiguous(4, 24).unwrap();
        let mut r = WorkRunner::new(cfg.clone(), NhdtW::new(), 1);
        let mut heavy = 0;
        for _ in 0..24 {
            if r.arrival_to(PortId::new(3)).unwrap().admits() {
                heavy += 1;
            }
        }
        assert!(heavy <= 6, "heavy class admitted {heavy}");

        let mut nhdt = WorkRunner::new(cfg, crate::work::Nhdt::new(), 1);
        let mut plain = 0;
        for _ in 0..24 {
            if nhdt.arrival_to(PortId::new(3)).unwrap().admits() {
                plain += 1;
            }
        }
        assert!(
            plain > heavy,
            "NHDT {plain} should out-admit NHDT-W {heavy}"
        );
    }

    #[test]
    fn cheap_traffic_keeps_room_after_heavy_burst() {
        let cfg = WorkSwitchConfig::contiguous(4, 24).unwrap();
        let mut r = WorkRunner::new(cfg, NhdtW::new(), 1);
        for _ in 0..24 {
            let _ = r.arrival_to(PortId::new(3)).unwrap();
        }
        let mut cheap = 0;
        for _ in 0..24 {
            if r.arrival_to(PortId::new(0)).unwrap().admits() {
                cheap += 1;
            }
        }
        assert!(cheap >= 8, "only {cheap} cheap packets admitted");
    }

    #[test]
    fn never_pushes_out() {
        let cfg = WorkSwitchConfig::contiguous(3, 9).unwrap();
        let mut r = WorkRunner::new(cfg, NhdtW::new(), 1);
        for i in 0..30 {
            let _ = r.arrival_to(PortId::new(i % 3)).unwrap();
        }
        assert_eq!(r.switch().counters().pushed_out(), 0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(NhdtW::new().name(), "NHDT-W");
    }
}
