//! An interpolation family between LQD and LWD, for ablating *what* the
//! push-out victim score should measure.

use smbm_switch::{PortId, WorkPacket, WorkSwitch};

use crate::index::{apply_queue_changes, ScoreIndex, SelectMode};
use crate::Decision;

/// **AWD(α)** — push out from the queue maximizing the geometric
/// interpolation `W_j^α * |Q_j|^(1-α)` (after virtually adding the arrival):
///
/// * `α = 0` reduces to LQD (queue length only);
/// * `α = 1` reduces to LWD (total work only);
/// * intermediate values trade the two off.
///
/// Not part of the paper; used by the `ablations` bench to show that the
/// *work* end of the spectrum is what buys LWD its constant
/// competitiveness, supporting the paper's Section III-B argument that "a
/// good policy has to account for the processing requirements explicitly".
#[derive(Debug, Clone)]
pub struct AlphaWd {
    alpha: f64,
    index: Option<ScoreIndex<(u64, u64)>>,
    mode: SelectMode,
}

impl AlphaWd {
    /// Creates the policy with interpolation exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= alpha <= 1.0`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "alpha must lie in [0, 1], got {alpha}"
        );
        AlphaWd {
            alpha,
            index: None,
            mode: SelectMode::Auto,
        }
    }

    /// Creates AWD(α) with victim selection by full scan instead of the
    /// incremental index (differential-test oracle).
    pub fn scan(alpha: f64) -> Self {
        let mut p = Self::new(alpha);
        p.mode = SelectMode::Scan;
        p
    }

    /// Creates AWD(α) with the incremental index forced on regardless of
    /// port count.
    pub fn indexed(alpha: f64) -> Self {
        let mut p = Self::new(alpha);
        p.mode = SelectMode::Indexed;
        p
    }

    /// The interpolation exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn score_with(alpha: f64, work: u64, len: usize) -> f64 {
        if work == 0 || len == 0 {
            return 0.0;
        }
        (work as f64).powf(alpha) * (len as f64).powf(1.0 - alpha)
    }

    fn score(&self, work: u64, len: usize) -> f64 {
        Self::score_with(self.alpha, work, len)
    }

    /// Packs the resident `(score, tie)` pair of `port` into an ordered key.
    /// Scores are non-negative finite floats, so `to_bits` orders them.
    fn key_for(alpha: f64, switch: &WorkSwitch, port: PortId) -> (u64, u64) {
        let q = switch.queue(port);
        let score = Self::score_with(alpha, q.total_work(), q.len());
        (score.to_bits(), q.work().as_u64())
    }

    fn port_key(&self, switch: &WorkSwitch, port: PortId) -> (u64, u64) {
        Self::key_for(self.alpha, switch, port)
    }

    /// Indexed equivalent of [`AlphaWd::victim`].
    fn indexed_victim(&mut self, switch: &WorkSwitch, arriving: PortId) -> PortId {
        if self
            .index
            .as_ref()
            .is_none_or(|i| i.ports() != switch.ports())
        {
            let alpha = self.alpha;
            let mut idx = ScoreIndex::new(switch.ports());
            idx.rebuild_with(|i| Some(Self::key_for(alpha, switch, PortId::new(i))));
            self.index = Some(idx);
        }
        let q = switch.queue(arriving);
        let score = self.score(q.total_work() + q.work().as_u64(), q.len() + 1);
        let virtual_key = (score.to_bits(), q.work().as_u64());
        self.index
            .as_ref()
            .expect("index built above")
            .max_with(arriving, virtual_key)
    }

    /// The victim queue once `arriving` is virtually added; ties prefer the
    /// larger per-packet requirement, then the larger index (LWD's rule).
    pub fn victim(&self, switch: &WorkSwitch, arriving: PortId) -> PortId {
        let mut best = PortId::new(0);
        let mut best_score = f64::NEG_INFINITY;
        let mut best_tie = 0u64;
        for (port, q) in switch.queues() {
            let own = port == arriving;
            let work = q.total_work() + if own { q.work().as_u64() } else { 0 };
            let len = q.len() + usize::from(own);
            let score = self.score(work, len);
            let tie = q.work().as_u64();
            if score > best_score || (score == best_score && tie >= best_tie) {
                best = port;
                best_score = score;
                best_tie = tie;
            }
        }
        best
    }
}

impl super::WorkPolicy for AlphaWd {
    fn name(&self) -> &str {
        // A static name keeps the trait simple; the ablation harness labels
        // variants by alpha itself.
        "AWD"
    }

    fn decide(&mut self, switch: &WorkSwitch, pkt: WorkPacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        let victim = if self.mode.use_index(switch.ports()) {
            self.indexed_victim(switch, pkt.port())
        } else {
            self.victim(switch, pkt.port())
        };
        if victim != pkt.port() {
            Decision::PushOut(victim)
        } else {
            Decision::Drop
        }
    }

    fn wants_queue_events(&self, ports: usize) -> bool {
        self.mode.use_index(ports)
    }

    fn queue_changed(&mut self, switch: &WorkSwitch, port: PortId) {
        let key = self.port_key(switch, port);
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                idx.set(port, Some(key));
            }
        }
    }

    fn queues_changed(&mut self, switch: &WorkSwitch, ports: &[PortId]) {
        let alpha = self.alpha;
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                apply_queue_changes(idx, ports, |i| {
                    Some(Self::key_for(alpha, switch, PortId::new(i)))
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{Lqd, Lwd, WorkPolicy, WorkRunner};
    use smbm_switch::WorkSwitchConfig;

    #[test]
    #[should_panic(expected = "alpha must lie in [0, 1]")]
    fn rejects_out_of_range_alpha() {
        let _ = AlphaWd::new(1.5);
    }

    #[test]
    fn alpha_zero_matches_lqd_decisions() {
        let cfg = WorkSwitchConfig::contiguous(3, 6).unwrap();
        let mut awd = WorkRunner::new(cfg.clone(), AlphaWd::new(0.0), 1);
        let mut lqd = WorkRunner::new(cfg, Lqd::new(), 1);
        let pattern = [0, 1, 2, 2, 2, 0, 1, 0, 0, 1, 2, 1, 0];
        for &p in &pattern {
            let a = awd.arrival_to(PortId::new(p)).unwrap();
            let b = lqd.arrival_to(PortId::new(p)).unwrap();
            assert_eq!(a, b, "diverged at port {p}");
        }
    }

    #[test]
    fn alpha_one_matches_lwd_decisions() {
        let cfg = WorkSwitchConfig::contiguous(3, 6).unwrap();
        let mut awd = WorkRunner::new(cfg.clone(), AlphaWd::new(1.0), 1);
        let mut lwd = WorkRunner::new(cfg, Lwd::new(), 1);
        let pattern = [2, 2, 0, 0, 0, 0, 1, 1, 2, 0, 1, 2, 0];
        for &p in &pattern {
            let a = awd.arrival_to(PortId::new(p)).unwrap();
            let b = lwd.arrival_to(PortId::new(p)).unwrap();
            assert_eq!(a, b, "diverged at port {p}");
        }
    }

    #[test]
    fn intermediate_alpha_interpolates() {
        // Queue 0: many cheap packets (longest); queue 2: most work.
        let cfg = WorkSwitchConfig::contiguous(3, 8).unwrap();
        let setup = |alpha: f64| {
            let mut r = WorkRunner::new(cfg.clone(), AlphaWd::new(alpha), 1);
            for _ in 0..5 {
                r.arrival_to(PortId::new(0)).unwrap(); // W = 5, len 5
            }
            for _ in 0..3 {
                r.arrival_to(PortId::new(2)).unwrap(); // W = 9, len 3
            }
            r
        };
        // Pure length: victim is queue 0 (len 5 > 3).
        let mut r = setup(0.0);
        assert_eq!(
            r.arrival_to(PortId::new(1)).unwrap(),
            Decision::PushOut(PortId::new(0))
        );
        // Pure work: victim is queue 2 (W 9 > 5).
        let mut r = setup(1.0);
        assert_eq!(
            r.arrival_to(PortId::new(1)).unwrap(),
            Decision::PushOut(PortId::new(2))
        );
        // Halfway: sqrt(5*5) = 5 vs sqrt(9*3) = 5.196 -> queue 2.
        let mut r = setup(0.5);
        assert_eq!(
            r.arrival_to(PortId::new(1)).unwrap(),
            Decision::PushOut(PortId::new(2))
        );
    }

    #[test]
    fn accessors() {
        let p = AlphaWd::new(0.25);
        assert_eq!(p.alpha(), 0.25);
        assert_eq!(p.name(), "AWD");
    }
}
