//! Scripted admission policies with static per-queue caps.
//!
//! The lower-bound proofs of Sections III and IV describe what OPT admits on
//! each adversarial trace: a fixed quota per queue (e.g., "one packet of each
//! large class, fill the rest with `1`s"). [`CappedWork`] turns such a quota
//! vector into an executable policy, letting the benchmark harness *run* the
//! proof's OPT inside the same switch model instead of trusting a closed
//! form. [`GreedyWork`] (accept whenever there is space) is the cap-free
//! special case and the natural work-model baseline.

use smbm_switch::{PortId, WorkPacket, WorkSwitch};

use crate::Decision;

/// Non-push-out policy that accepts a packet for port `i` iff the buffer has
/// space and `|Q_i|` is below a fixed per-port cap. Used to script the OPT
/// side of the paper's lower-bound constructions.
///
/// ```
/// use smbm_core::{CappedWork, Decision, WorkPolicy, WorkRunner};
/// use smbm_switch::{PortId, WorkSwitchConfig};
///
/// let cfg = WorkSwitchConfig::contiguous(2, 4)?;
/// let mut r = WorkRunner::new(cfg, CappedWork::new(vec![1, 3]), 1);
/// assert_eq!(r.arrival_to(PortId::new(0))?, Decision::Accept);
/// assert_eq!(r.arrival_to(PortId::new(0))?, Decision::Drop); // cap 1 reached
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CappedWork {
    caps: Vec<usize>,
}

impl CappedWork {
    /// Creates the policy with `caps[i]` bounding queue `i`.
    pub fn new(caps: Vec<usize>) -> Self {
        CappedWork { caps }
    }

    /// The configured caps.
    pub fn caps(&self) -> &[usize] {
        &self.caps
    }

    fn cap(&self, port: PortId) -> usize {
        self.caps.get(port.index()).copied().unwrap_or(0)
    }
}

impl super::WorkPolicy for CappedWork {
    fn name(&self) -> &str {
        "OPT-script"
    }

    fn decide(&mut self, switch: &WorkSwitch, pkt: WorkPacket) -> Decision {
        if switch.is_full() || switch.queue(pkt.port()).len() >= self.cap(pkt.port()) {
            Decision::Drop
        } else {
            Decision::Accept
        }
    }
}

/// The cap-free greedy baseline: accept whenever the buffer has space, never
/// push out. In a single-queue setting this is `k`-competitive; it completes
/// the policy roster for the benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyWork {
    _priv: (),
}

impl GreedyWork {
    /// Creates the policy.
    pub fn new() -> Self {
        GreedyWork { _priv: () }
    }
}

impl super::WorkPolicy for GreedyWork {
    fn name(&self) -> &str {
        "GREEDY"
    }

    fn decide(&mut self, switch: &WorkSwitch, _pkt: WorkPacket) -> Decision {
        if switch.is_full() {
            Decision::Drop
        } else {
            Decision::Accept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{WorkPolicy, WorkRunner};
    use smbm_switch::WorkSwitchConfig;

    #[test]
    fn caps_bound_each_queue() {
        let cfg = WorkSwitchConfig::contiguous(3, 10).unwrap();
        let mut r = WorkRunner::new(cfg, CappedWork::new(vec![2, 0, 3]), 1);
        for _ in 0..2 {
            assert!(r.arrival_to(PortId::new(0)).unwrap().admits());
        }
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop);
        assert_eq!(r.arrival_to(PortId::new(1)).unwrap(), Decision::Drop);
        for _ in 0..3 {
            assert!(r.arrival_to(PortId::new(2)).unwrap().admits());
        }
        assert_eq!(r.arrival_to(PortId::new(2)).unwrap(), Decision::Drop);
    }

    #[test]
    fn missing_cap_entries_default_to_zero() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut r = WorkRunner::new(cfg, CappedWork::new(vec![1]), 1);
        assert!(r.arrival_to(PortId::new(0)).unwrap().admits());
        assert_eq!(r.arrival_to(PortId::new(1)).unwrap(), Decision::Drop);
        assert_eq!(r.policy().caps(), &[1]);
    }

    #[test]
    fn caps_respect_buffer_capacity() {
        let cfg = WorkSwitchConfig::contiguous(2, 2).unwrap();
        let mut r = WorkRunner::new(cfg, CappedWork::new(vec![5, 5]), 1);
        assert!(r.arrival_to(PortId::new(0)).unwrap().admits());
        assert!(r.arrival_to(PortId::new(1)).unwrap().admits());
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop);
    }

    #[test]
    fn capped_queue_reopens_after_drain() {
        let cfg = WorkSwitchConfig::contiguous(1, 4).unwrap();
        let mut r = WorkRunner::new(cfg, CappedWork::new(vec![1]), 1);
        assert!(r.arrival_to(PortId::new(0)).unwrap().admits());
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop);
        r.transmission();
        r.end_slot();
        assert!(r.arrival_to(PortId::new(0)).unwrap().admits());
    }

    #[test]
    fn greedy_accepts_until_full() {
        let cfg = WorkSwitchConfig::contiguous(2, 3).unwrap();
        let mut r = WorkRunner::new(cfg, GreedyWork::new(), 1);
        for _ in 0..3 {
            assert!(r.arrival_to(PortId::new(1)).unwrap().admits());
        }
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop);
        assert_eq!(r.switch().counters().pushed_out(), 0);
    }

    #[test]
    fn names() {
        assert_eq!(CappedWork::new(vec![]).name(), "OPT-script");
        assert_eq!(GreedyWork::new().name(), "GREEDY");
    }
}
