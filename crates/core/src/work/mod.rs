//! Buffer-management policies for the heterogeneous-processing model
//! (Section III of the paper).

mod alpha;
mod bpd;
mod capped;
mod lqd;
mod lwd;
mod nest;
mod nhdt;
mod nhdt_w;
mod nhst;

pub use alpha::AlphaWd;
pub use bpd::Bpd;
pub use capped::{CappedWork, GreedyWork};
pub use lqd::Lqd;
pub use lwd::{Lwd, LwdTieBreak};
pub use nest::Nest;
pub use nhdt::{harmonic, Nhdt};
pub use nhdt_w::NhdtW;
pub use nhst::Nhst;

use smbm_switch::{AdmitError, PhaseReport, Transmitted, WorkPacket, WorkSwitch};

use crate::Decision;

/// An online buffer-management policy for the heterogeneous-processing model.
///
/// A policy observes the current switch state (read-only) and one arriving
/// packet, and returns a [`Decision`]; the [`WorkRunner`] applies it. Policies
/// are deterministic given the switch state — all algorithms in the paper
/// are — but the trait takes `&mut self` so stateful or randomized extensions
/// remain possible.
pub trait WorkPolicy: std::fmt::Debug + Send {
    /// Short human-readable identifier, e.g. `"LWD"`.
    fn name(&self) -> &str;

    /// Decides the fate of `pkt` given the switch state.
    fn decide(&mut self, switch: &WorkSwitch, pkt: WorkPacket) -> Decision;

    /// Invoked when the simulator flushes the buffer, for policies that keep
    /// internal state. The bundled policies are stateless.
    fn on_flush(&mut self) {}

    /// Whether the runner should report queue-change events (see
    /// [`WorkPolicy::queues_changed`]) on a switch with `ports` ports.
    /// Defaults to `false` so scan-based policies pay nothing.
    fn wants_queue_events(&self, ports: usize) -> bool {
        let _ = ports;
        false
    }

    /// Notifies the policy that `port`'s queue changed since the last
    /// decision, so incremental indices (see [`crate::ScoreIndex`]) can
    /// refresh that port's score. Only called when
    /// [`WorkPolicy::wants_queue_events`] returns `true`.
    fn queue_changed(&mut self, switch: &WorkSwitch, port: smbm_switch::PortId) {
        let _ = (switch, port);
    }

    /// Batch form of [`WorkPolicy::queue_changed`]: one call per sync with
    /// every port that changed since the last decision, letting indexed
    /// policies rebuild in O(n) when most ports are dirty (the
    /// post-transmission storm) instead of n point updates.
    fn queues_changed(&mut self, switch: &WorkSwitch, ports: &[smbm_switch::PortId]) {
        for &port in ports {
            self.queue_changed(switch, port);
        }
    }
}

impl<P: WorkPolicy + ?Sized> WorkPolicy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn decide(&mut self, switch: &WorkSwitch, pkt: WorkPacket) -> Decision {
        (**self).decide(switch, pkt)
    }

    fn on_flush(&mut self) {
        (**self).on_flush()
    }

    fn wants_queue_events(&self, ports: usize) -> bool {
        (**self).wants_queue_events(ports)
    }

    fn queue_changed(&mut self, switch: &WorkSwitch, port: smbm_switch::PortId) {
        (**self).queue_changed(switch, port)
    }

    fn queues_changed(&mut self, switch: &WorkSwitch, ports: &[smbm_switch::PortId]) {
        (**self).queues_changed(switch, ports)
    }
}

/// Binds a [`WorkPolicy`] to a [`WorkSwitch`] and a speedup, exposing the
/// two-phase slot operations the simulation engine drives.
///
/// ```
/// use smbm_core::{Lwd, WorkRunner};
/// use smbm_switch::{PortId, WorkSwitchConfig};
///
/// let cfg = WorkSwitchConfig::contiguous(3, 6)?;
/// let mut runner = WorkRunner::new(cfg, Lwd::new(), 1);
/// runner.arrival_to(PortId::new(2))?; // policy decides, runner applies
/// runner.transmission();
/// runner.end_slot();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct WorkRunner<P> {
    switch: WorkSwitch,
    policy: P,
    speedup: u32,
    dirty_scratch: Vec<smbm_switch::PortId>,
}

impl<P: WorkPolicy> WorkRunner<P> {
    /// Creates a runner over a fresh switch.
    pub fn new(config: smbm_switch::WorkSwitchConfig, policy: P, speedup: u32) -> Self {
        WorkRunner {
            switch: WorkSwitch::new(config),
            policy,
            speedup,
            dirty_scratch: Vec::new(),
        }
    }

    /// The underlying switch (read-only).
    pub fn switch(&self) -> &WorkSwitch {
        &self.switch
    }

    /// The bound policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Speedup `C` used in the transmission phase.
    pub fn speedup(&self) -> u32 {
        self.speedup
    }

    /// Presents one arriving packet to the policy and applies its decision.
    ///
    /// # Errors
    ///
    /// Propagates [`AdmitError`] if the policy's decision was inconsistent
    /// with the switch state (accepting into a full buffer, pushing out from
    /// an empty queue, ...). The bundled policies never err.
    pub fn arrival(&mut self, pkt: WorkPacket) -> Result<Decision, AdmitError> {
        // Queue-change events are only consumed by victim selection, which
        // only runs on a full buffer — so let dirt accumulate (deduplicated,
        // bounded by n) while there is free space and sync just before a
        // decision that can push out.
        if self.switch.is_full() && self.policy.wants_queue_events(self.switch.ports()) {
            self.switch.drain_dirty_into(&mut self.dirty_scratch);
            self.policy
                .queues_changed(&self.switch, &self.dirty_scratch);
        }
        let decision = self.policy.decide(&self.switch, pkt);
        match decision {
            Decision::Accept => self.switch.admit(pkt)?,
            Decision::Drop => self.switch.reject(pkt)?,
            Decision::PushOut(victim) => self.switch.push_out_and_admit(victim, pkt)?,
        }
        Ok(decision)
    }

    /// Like [`WorkRunner::arrival`], building the packet with the work label
    /// its destination port requires.
    ///
    /// # Errors
    ///
    /// Same as [`WorkRunner::arrival`].
    pub fn arrival_to(&mut self, port: smbm_switch::PortId) -> Result<Decision, AdmitError> {
        let pkt = self.switch.packet_for(port);
        self.arrival(pkt)
    }

    /// Runs the transmission phase at the configured speedup.
    pub fn transmission(&mut self) -> PhaseReport {
        self.switch.transmit(self.speedup)
    }

    /// Like [`WorkRunner::transmission`], appending per-packet completion
    /// details to `out`.
    pub fn transmission_into(&mut self, out: &mut Vec<Transmitted>) -> PhaseReport {
        self.switch.transmit_into(self.speedup, out)
    }

    /// Ends the slot (advances the switch clock).
    pub fn end_slot(&mut self) {
        self.switch.advance_slot();
    }

    /// Flushes the buffer (simulation "flushout") and notifies the policy.
    pub fn flush(&mut self) -> u64 {
        self.policy.on_flush();
        self.switch.flush()
    }

    /// Packets transmitted so far.
    pub fn transmitted(&self) -> u64 {
        self.switch.counters().transmitted()
    }
}

/// Names of all bundled work-model policies, in presentation order.
pub const WORK_POLICY_NAMES: &[&str] = &["NHST", "NEST", "NHDT", "LQD", "BPD", "BPD1", "LWD"];

/// Instantiates a bundled work-model policy by name (case-insensitive).
///
/// Returns `None` for unknown names. See [`WORK_POLICY_NAMES`].
///
/// ```
/// use smbm_core::work_policy_by_name;
/// assert!(work_policy_by_name("lwd").is_some());
/// assert!(work_policy_by_name("nope").is_none());
/// ```
pub fn work_policy_by_name(name: &str) -> Option<Box<dyn WorkPolicy>> {
    match name.to_ascii_uppercase().as_str() {
        "NHST" => Some(Box::new(Nhst::new())),
        "NEST" => Some(Box::new(Nest::new())),
        "NHDT" => Some(Box::new(Nhdt::new())),
        "LQD" => Some(Box::new(Lqd::new())),
        "BPD" => Some(Box::new(Bpd::new())),
        "BPD1" => Some(Box::new(Bpd::sparing_singletons())),
        "LWD" => Some(Box::new(Lwd::new())),
        // Extensions beyond the paper's roster (see DESIGN.md):
        "GREEDY" => Some(Box::new(GreedyWork::new())),
        "NHDT-W" => Some(Box::new(NhdtW::new())),
        "LWD-MAXLEN" => Some(Box::new(Lwd::with_tie_break(LwdTieBreak::MaxLen))),
        "LWD-MINWORK" => Some(Box::new(Lwd::with_tie_break(LwdTieBreak::MinWork))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_switch::WorkSwitchConfig;

    #[test]
    fn registry_knows_every_listed_policy() {
        for name in WORK_POLICY_NAMES {
            let p = work_policy_by_name(name).unwrap_or_else(|| panic!("registry missing {name}"));
            assert_eq!(p.name(), *name);
        }
    }

    #[test]
    fn registry_is_case_insensitive() {
        assert_eq!(work_policy_by_name("lwd").unwrap().name(), "LWD");
        assert_eq!(work_policy_by_name("Bpd1").unwrap().name(), "BPD1");
    }

    #[test]
    fn registry_rejects_unknown() {
        assert!(work_policy_by_name("MRD").is_none()); // value-model policy
    }

    #[test]
    fn runner_applies_decisions_and_counts() {
        let cfg = WorkSwitchConfig::contiguous(2, 2).unwrap();
        let mut r = WorkRunner::new(cfg, Lwd::new(), 1);
        r.arrival_to(smbm_switch::PortId::new(0)).unwrap();
        r.arrival_to(smbm_switch::PortId::new(0)).unwrap();
        assert!(r.switch().is_full());
        r.transmission();
        r.end_slot();
        assert_eq!(r.transmitted(), 1);
        r.switch().check_invariants().unwrap();
    }

    #[test]
    fn runner_flush_clears_buffer() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut r = WorkRunner::new(cfg, Lqd::new(), 1);
        for _ in 0..4 {
            r.arrival_to(smbm_switch::PortId::new(1)).unwrap();
        }
        assert_eq!(r.flush(), 4);
        assert_eq!(r.switch().occupancy(), 0);
    }

    #[test]
    fn boxed_policy_delegates() {
        let cfg = WorkSwitchConfig::contiguous(2, 2).unwrap();
        let boxed: Box<dyn WorkPolicy> = Box::new(Lwd::new());
        let mut r = WorkRunner::new(cfg, boxed, 1);
        assert_eq!(r.policy().name(), "LWD");
        r.arrival_to(smbm_switch::PortId::new(0)).unwrap();
        assert_eq!(r.switch().occupancy(), 1);
    }
}
