//! Longest-Queue-Drop (LQD) in the heterogeneous-processing model.

use smbm_switch::{PortId, WorkPacket, WorkSwitch};

use crate::Decision;

/// **LQD** — the classic push-out policy of Aiello et al.: when the buffer is
/// congested, push out the tail of the *longest* queue. Required processing
/// is ignored entirely.
///
/// On arrival at port `i`, let `j* = argmax_j (|Q_j| + [i = j])` (the longest
/// queue after virtually adding the arrival; ties broken toward the largest
/// required processing, then the largest index). Then:
///
/// 1. if the buffer is not full, accept;
/// 2. if the buffer is full and `i != j*`, push out the tail of `Q_{j*}` and
///    accept;
/// 3. otherwise drop.
///
/// LQD is 2-competitive with homogeneous processing, but Theorem 4 shows it
/// is at least `sqrt(k)`-competitive in the heterogeneous model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lqd {
    _priv: (),
}

impl Lqd {
    /// Creates the policy.
    pub fn new() -> Self {
        Lqd { _priv: () }
    }

    /// The queue LQD considers fullest once `arriving` is virtually added:
    /// ties go to the largest required processing, then the largest index.
    pub fn longest_queue(switch: &WorkSwitch, arriving: PortId) -> PortId {
        let mut best = PortId::new(0);
        let mut best_key = (0usize, 0u32);
        for (port, q) in switch.queues() {
            let virtual_len = q.len() + usize::from(port == arriving);
            let key = (virtual_len, q.work().cycles());
            // `>=` makes later indices win ties, keeping selection total.
            if key >= best_key {
                best = port;
                best_key = key;
            }
        }
        best
    }
}

impl super::WorkPolicy for Lqd {
    fn name(&self) -> &str {
        "LQD"
    }

    fn decide(&mut self, switch: &WorkSwitch, pkt: WorkPacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        let longest = Self::longest_queue(switch, pkt.port());
        if longest != pkt.port() {
            Decision::PushOut(longest)
        } else {
            Decision::Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{WorkPolicy, WorkRunner};
    use smbm_switch::WorkSwitchConfig;

    fn runner(k: u32, b: usize) -> WorkRunner<Lqd> {
        WorkRunner::new(WorkSwitchConfig::contiguous(k, b).unwrap(), Lqd::new(), 1)
    }

    #[test]
    fn greedy_while_space_remains() {
        let mut r = runner(3, 3);
        for port in 0..3 {
            assert_eq!(r.arrival_to(PortId::new(port)).unwrap(), Decision::Accept);
        }
        assert!(r.switch().is_full());
    }

    #[test]
    fn pushes_out_longest_queue_when_full() {
        let mut r = runner(2, 4);
        for _ in 0..4 {
            r.arrival_to(PortId::new(1)).unwrap();
        }
        // Arrival to the empty queue 0 must evict from queue 1.
        let d = r.arrival_to(PortId::new(0)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
        assert_eq!(r.switch().queue(PortId::new(0)).len(), 1);
        assert_eq!(r.switch().queue(PortId::new(1)).len(), 3);
    }

    #[test]
    fn drops_when_own_queue_is_longest() {
        let mut r = runner(2, 4);
        for _ in 0..3 {
            r.arrival_to(PortId::new(1)).unwrap();
        }
        r.arrival_to(PortId::new(0)).unwrap();
        assert!(r.switch().is_full());
        // Queue 1 has 3 packets; another arrival there makes it the longest.
        assert_eq!(r.arrival_to(PortId::new(1)).unwrap(), Decision::Drop);
    }

    #[test]
    fn virtual_add_breaks_near_ties() {
        let mut r = runner(2, 4);
        // Queue 0: 2 packets, queue 1: 2 packets — buffer full.
        for _ in 0..2 {
            r.arrival_to(PortId::new(0)).unwrap();
            r.arrival_to(PortId::new(1)).unwrap();
        }
        // Arrival to queue 0 makes it virtually 3 long: it is the longest,
        // so the packet is dropped (case 3), not swapped.
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop);
    }

    #[test]
    fn equal_length_tie_prefers_larger_work() {
        let mut r = runner(3, 6);
        // Queues 0 (w=1) and 2 (w=3) both get 3 packets.
        for _ in 0..3 {
            r.arrival_to(PortId::new(0)).unwrap();
            r.arrival_to(PortId::new(2)).unwrap();
        }
        assert!(r.switch().is_full());
        // Arrival to queue 1: queues 0 and 2 tie at virtual length 3;
        // LQD evicts from the one with larger required processing (2).
        let d = r.arrival_to(PortId::new(1)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(2)));
    }

    #[test]
    fn balances_queues_under_single_port_flood() {
        let mut r = runner(4, 8);
        for _ in 0..8 {
            r.arrival_to(PortId::new(3)).unwrap();
        }
        // Flood ports 0..3 evenly afterwards; LQD converges toward balance.
        for _ in 0..8 {
            for port in 0..4 {
                let _ = r.arrival_to(PortId::new(port)).unwrap();
            }
        }
        let lens: Vec<usize> = (0..4)
            .map(|p| r.switch().queue(PortId::new(p)).len())
            .collect();
        assert_eq!(lens.iter().sum::<usize>(), 8);
        assert!(lens.iter().all(|&l| l == 2), "unbalanced: {lens:?}");
        r.switch().check_invariants().unwrap();
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Lqd::new().name(), "LQD");
    }
}
