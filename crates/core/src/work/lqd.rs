//! Longest-Queue-Drop (LQD) in the heterogeneous-processing model.

use smbm_switch::{PortId, WorkPacket, WorkSwitch};

use crate::index::{apply_queue_changes, ScoreIndex, SelectMode};
use crate::Decision;

/// **LQD** — the classic push-out policy of Aiello et al.: when the buffer is
/// congested, push out the tail of the *longest* queue. Required processing
/// is ignored entirely.
///
/// On arrival at port `i`, let `j* = argmax_j (|Q_j| + [i = j])` (the longest
/// queue after virtually adding the arrival; ties broken toward the largest
/// required processing, then the largest index). Then:
///
/// 1. if the buffer is not full, accept;
/// 2. if the buffer is full and `i != j*`, push out the tail of `Q_{j*}` and
///    accept;
/// 3. otherwise drop.
///
/// LQD is 2-competitive with homogeneous processing, but Theorem 4 shows it
/// is at least `sqrt(k)`-competitive in the heterogeneous model.
///
/// Victim selection is O(log n) by default, via a [`ScoreIndex`] over
/// `(|Q_j|, w_j)`; [`Lqd::scan`] keeps the original O(n) scan as the
/// differential oracle.
#[derive(Debug, Clone, Default)]
pub struct Lqd {
    index: Option<ScoreIndex<(usize, u32)>>,
    mode: SelectMode,
}

impl Lqd {
    /// Creates the policy. Victim selection picks index or scan automatically
    /// by port count.
    pub fn new() -> Self {
        Lqd {
            index: None,
            mode: SelectMode::Auto,
        }
    }

    /// Creates LQD with victim selection by full scan instead of the
    /// incremental index (differential-test oracle).
    pub fn scan() -> Self {
        Lqd {
            index: None,
            mode: SelectMode::Scan,
        }
    }

    /// Creates LQD with the incremental index forced on regardless of port
    /// count (differential tests exercise it at small `n`).
    pub fn indexed() -> Self {
        Lqd {
            index: None,
            mode: SelectMode::Indexed,
        }
    }

    fn port_key(switch: &WorkSwitch, port: PortId) -> (usize, u32) {
        let q = switch.queue(port);
        (q.len(), q.work().cycles())
    }

    /// Indexed equivalent of [`Lqd::longest_queue`].
    fn indexed_longest(&mut self, switch: &WorkSwitch, arriving: PortId) -> PortId {
        if self
            .index
            .as_ref()
            .is_none_or(|i| i.ports() != switch.ports())
        {
            let mut idx = ScoreIndex::new(switch.ports());
            idx.rebuild_with(|i| Some(Self::port_key(switch, PortId::new(i))));
            self.index = Some(idx);
        }
        let (len, cycles) = Self::port_key(switch, arriving);
        self.index
            .as_ref()
            .expect("index built above")
            .max_with(arriving, (len + 1, cycles))
    }

    /// The queue LQD considers fullest once `arriving` is virtually added:
    /// ties go to the largest required processing, then the largest index.
    pub fn longest_queue(switch: &WorkSwitch, arriving: PortId) -> PortId {
        let mut best = PortId::new(0);
        let mut best_key = (0usize, 0u32);
        for (port, q) in switch.queues() {
            let virtual_len = q.len() + usize::from(port == arriving);
            let key = (virtual_len, q.work().cycles());
            // `>=` makes later indices win ties, keeping selection total.
            if key >= best_key {
                best = port;
                best_key = key;
            }
        }
        best
    }
}

impl super::WorkPolicy for Lqd {
    fn name(&self) -> &str {
        "LQD"
    }

    fn decide(&mut self, switch: &WorkSwitch, pkt: WorkPacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        let longest = if self.mode.use_index(switch.ports()) {
            self.indexed_longest(switch, pkt.port())
        } else {
            Self::longest_queue(switch, pkt.port())
        };
        if longest != pkt.port() {
            Decision::PushOut(longest)
        } else {
            Decision::Drop
        }
    }

    fn wants_queue_events(&self, ports: usize) -> bool {
        self.mode.use_index(ports)
    }

    fn queue_changed(&mut self, switch: &WorkSwitch, port: PortId) {
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                idx.set(port, Some(Self::port_key(switch, port)));
            }
        }
    }

    fn queues_changed(&mut self, switch: &WorkSwitch, ports: &[PortId]) {
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                apply_queue_changes(idx, ports, |i| Some(Self::port_key(switch, PortId::new(i))));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{WorkPolicy, WorkRunner};
    use smbm_switch::WorkSwitchConfig;

    fn runner(k: u32, b: usize) -> WorkRunner<Lqd> {
        WorkRunner::new(WorkSwitchConfig::contiguous(k, b).unwrap(), Lqd::new(), 1)
    }

    #[test]
    fn greedy_while_space_remains() {
        let mut r = runner(3, 3);
        for port in 0..3 {
            assert_eq!(r.arrival_to(PortId::new(port)).unwrap(), Decision::Accept);
        }
        assert!(r.switch().is_full());
    }

    #[test]
    fn pushes_out_longest_queue_when_full() {
        let mut r = runner(2, 4);
        for _ in 0..4 {
            r.arrival_to(PortId::new(1)).unwrap();
        }
        // Arrival to the empty queue 0 must evict from queue 1.
        let d = r.arrival_to(PortId::new(0)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
        assert_eq!(r.switch().queue(PortId::new(0)).len(), 1);
        assert_eq!(r.switch().queue(PortId::new(1)).len(), 3);
    }

    #[test]
    fn drops_when_own_queue_is_longest() {
        let mut r = runner(2, 4);
        for _ in 0..3 {
            r.arrival_to(PortId::new(1)).unwrap();
        }
        r.arrival_to(PortId::new(0)).unwrap();
        assert!(r.switch().is_full());
        // Queue 1 has 3 packets; another arrival there makes it the longest.
        assert_eq!(r.arrival_to(PortId::new(1)).unwrap(), Decision::Drop);
    }

    #[test]
    fn virtual_add_breaks_near_ties() {
        let mut r = runner(2, 4);
        // Queue 0: 2 packets, queue 1: 2 packets — buffer full.
        for _ in 0..2 {
            r.arrival_to(PortId::new(0)).unwrap();
            r.arrival_to(PortId::new(1)).unwrap();
        }
        // Arrival to queue 0 makes it virtually 3 long: it is the longest,
        // so the packet is dropped (case 3), not swapped.
        assert_eq!(r.arrival_to(PortId::new(0)).unwrap(), Decision::Drop);
    }

    #[test]
    fn equal_length_tie_prefers_larger_work() {
        let mut r = runner(3, 6);
        // Queues 0 (w=1) and 2 (w=3) both get 3 packets.
        for _ in 0..3 {
            r.arrival_to(PortId::new(0)).unwrap();
            r.arrival_to(PortId::new(2)).unwrap();
        }
        assert!(r.switch().is_full());
        // Arrival to queue 1: queues 0 and 2 tie at virtual length 3;
        // LQD evicts from the one with larger required processing (2).
        let d = r.arrival_to(PortId::new(1)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(2)));
    }

    #[test]
    fn balances_queues_under_single_port_flood() {
        let mut r = runner(4, 8);
        for _ in 0..8 {
            r.arrival_to(PortId::new(3)).unwrap();
        }
        // Flood ports 0..3 evenly afterwards; LQD converges toward balance.
        for _ in 0..8 {
            for port in 0..4 {
                let _ = r.arrival_to(PortId::new(port)).unwrap();
            }
        }
        let lens: Vec<usize> = (0..4)
            .map(|p| r.switch().queue(PortId::new(p)).len())
            .collect();
        assert_eq!(lens.iter().sum::<usize>(), 8);
        assert!(lens.iter().all(|&l| l == 2), "unbalanced: {lens:?}");
        r.switch().check_invariants().unwrap();
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Lqd::new().name(), "LQD");
    }
}
