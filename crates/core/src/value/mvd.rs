//! Minimal-Value-Drop (MVD) and its singleton-sparing variant MVD1.

use std::cmp::Reverse;

use smbm_switch::{PortId, ValuePacket, ValueSwitch};

use crate::index::{apply_queue_changes, ScoreIndex, SelectMode};
use crate::Decision;

/// **MVD** — push-out policy that greedily maximizes admitted value: on
/// congestion, evict the globally *minimal-value* packet (from the longest
/// queue holding such a packet) provided the arrival is strictly more
/// valuable; otherwise drop the arrival.
///
/// MVD is the value-model analogue of BPD, and Theorem 10 shows it is at
/// least `(m-1)/2`-competitive for `m = min{k, B}`: chasing value alone
/// starves all but one port. The simulation section adds **MVD1**
/// ([`Mvd::sparing_singletons`]), which never evicts the last packet of a
/// queue.
///
/// Victim selection is O(log n) by default, via a [`ScoreIndex`] over
/// `(Reverse(min_j), |Q_j|)` — no virtual add is involved, so the resident
/// maximum is the victim directly. [`Mvd::scan`] and
/// [`Mvd::scan_sparing_singletons`] keep the original O(n) scan as the
/// differential oracle.
#[derive(Debug, Clone)]
pub struct Mvd {
    spare_singletons: bool,
    index: Option<ScoreIndex<(Reverse<u64>, usize)>>,
    mode: SelectMode,
}

impl Default for Mvd {
    fn default() -> Self {
        Self::new()
    }
}

impl Mvd {
    /// Creates plain MVD. Victim selection picks index or scan automatically
    /// by port count.
    pub fn new() -> Self {
        Mvd {
            spare_singletons: false,
            index: None,
            mode: SelectMode::Auto,
        }
    }

    /// Creates MVD1: like MVD but never pushes out the last packet in a
    /// queue.
    pub fn sparing_singletons() -> Self {
        Mvd {
            spare_singletons: true,
            ..Self::new()
        }
    }

    /// Creates MVD with victim selection by full scan instead of the
    /// incremental index (differential-test oracle).
    pub fn scan() -> Self {
        Mvd {
            mode: SelectMode::Scan,
            ..Self::new()
        }
    }

    /// Scan-based MVD1 (differential-test oracle).
    pub fn scan_sparing_singletons() -> Self {
        Mvd {
            spare_singletons: true,
            mode: SelectMode::Scan,
            ..Self::new()
        }
    }

    /// Creates MVD with the incremental index forced on regardless of port
    /// count.
    pub fn indexed() -> Self {
        Mvd {
            mode: SelectMode::Indexed,
            ..Self::new()
        }
    }

    /// Index-forced MVD1.
    pub fn indexed_sparing_singletons() -> Self {
        Mvd {
            spare_singletons: true,
            mode: SelectMode::Indexed,
            ..Self::new()
        }
    }

    /// Whether this instance is the MVD1 variant.
    pub fn spares_singletons(&self) -> bool {
        self.spare_singletons
    }

    /// `port`'s resident key, `None` when the queue is ineligible (empty, or
    /// a singleton under MVD1).
    fn key_for(
        spare_singletons: bool,
        switch: &ValueSwitch,
        port: PortId,
    ) -> Option<(Reverse<u64>, usize)> {
        let q = switch.queue(port);
        let min_len = if spare_singletons { 2 } else { 1 };
        if q.len() < min_len {
            return None;
        }
        let v = q.min_value().expect("non-empty queue has a min").get();
        Some((Reverse(v), q.len()))
    }

    fn port_key(&self, switch: &ValueSwitch, port: PortId) -> Option<(Reverse<u64>, usize)> {
        Self::key_for(self.spare_singletons, switch, port)
    }

    /// Indexed equivalent of [`Mvd::victim`]. No virtual add: the resident
    /// argmax is the victim.
    fn indexed_victim(&mut self, switch: &ValueSwitch) -> Option<(PortId, u64)> {
        if self
            .index
            .as_ref()
            .is_none_or(|i| i.ports() != switch.ports())
        {
            let spare = self.spare_singletons;
            let mut idx = ScoreIndex::new(switch.ports());
            idx.rebuild_with(|i| Self::key_for(spare, switch, PortId::new(i)));
            self.index = Some(idx);
        }
        let idx = self.index.as_ref().expect("index built above");
        let port = idx.max()?;
        let (Reverse(v), _) = idx.key(port).expect("max entry has a key");
        Some((port, v))
    }

    /// The victim queue: holds the globally minimal value among eligible
    /// queues (length >= 2 for MVD1); ties prefer the longest queue.
    fn victim(&self, switch: &ValueSwitch) -> Option<(PortId, u64)> {
        let min_len = if self.spare_singletons { 2 } else { 1 };
        let mut best: Option<(PortId, u64, usize)> = None;
        for (port, q) in switch.queues() {
            if q.len() < min_len {
                continue;
            }
            let v = q.min_value().expect("non-empty queue has a min").get();
            let better = match best {
                None => true,
                Some((_, bv, blen)) => v < bv || (v == bv && q.len() >= blen),
            };
            if better {
                best = Some((port, v, q.len()));
            }
        }
        best.map(|(p, v, _)| (p, v))
    }
}

impl super::ValuePolicy for Mvd {
    fn name(&self) -> &str {
        if self.spare_singletons {
            "MVD1"
        } else {
            "MVD"
        }
    }

    fn decide(&mut self, switch: &ValueSwitch, pkt: ValuePacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        let victim = if self.mode.use_index(switch.ports()) {
            self.indexed_victim(switch)
        } else {
            self.victim(switch)
        };
        match victim {
            Some((victim, min_value)) if min_value < pkt.value().get() => Decision::PushOut(victim),
            _ => Decision::Drop,
        }
    }

    fn wants_queue_events(&self, ports: usize) -> bool {
        self.mode.use_index(ports)
    }

    fn queue_changed(&mut self, switch: &ValueSwitch, port: PortId) {
        let key = self.port_key(switch, port);
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                idx.set(port, key);
            }
        }
    }

    fn queues_changed(&mut self, switch: &ValueSwitch, ports: &[PortId]) {
        let spare = self.spare_singletons;
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                apply_queue_changes(idx, ports, |i| Self::key_for(spare, switch, PortId::new(i)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ValuePolicy, ValueRunner};
    use smbm_switch::{Value, ValueSwitchConfig};

    fn pkt(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(v))
    }

    fn runner(policy: Mvd, b: usize, n: usize) -> ValueRunner<Mvd> {
        ValueRunner::new(ValueSwitchConfig::new(b, n).unwrap(), policy, 1)
    }

    #[test]
    fn greedy_while_space_remains() {
        let mut r = runner(Mvd::new(), 2, 2);
        assert_eq!(r.arrival(pkt(0, 1)).unwrap(), Decision::Accept);
        assert_eq!(r.arrival(pkt(1, 1)).unwrap(), Decision::Accept);
    }

    #[test]
    fn evicts_global_minimum_for_more_valuable_arrival() {
        let mut r = runner(Mvd::new(), 3, 3);
        r.arrival(pkt(0, 4)).unwrap();
        r.arrival(pkt(1, 2)).unwrap();
        r.arrival(pkt(2, 7)).unwrap();
        let d = r.arrival(pkt(0, 5)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
        assert!(r.switch().queue(PortId::new(1)).is_empty());
        assert_eq!(r.switch().total_value(), 16);
    }

    #[test]
    fn drops_arrival_not_more_valuable_than_minimum() {
        let mut r = runner(Mvd::new(), 2, 2);
        r.arrival(pkt(0, 3)).unwrap();
        r.arrival(pkt(1, 3)).unwrap();
        // Equal value: strict inequality required, so drop.
        assert_eq!(r.arrival(pkt(0, 3)).unwrap(), Decision::Drop);
        assert_eq!(r.arrival(pkt(0, 2)).unwrap(), Decision::Drop);
        assert_eq!(
            r.arrival(pkt(0, 4)).unwrap(),
            Decision::PushOut(PortId::new(1))
        );
    }

    #[test]
    fn tie_on_minimum_prefers_longest_queue() {
        let mut r = runner(Mvd::new(), 4, 2);
        r.arrival(pkt(0, 1)).unwrap();
        r.arrival(pkt(1, 1)).unwrap();
        r.arrival(pkt(1, 6)).unwrap();
        r.arrival(pkt(1, 6)).unwrap();
        // Min value 1 in both queues; queue 1 is longer.
        let d = r.arrival(pkt(0, 9)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
    }

    #[test]
    fn mvd1_spares_singletons() {
        let mut r = runner(Mvd::sparing_singletons(), 3, 2);
        r.arrival(pkt(0, 1)).unwrap(); // singleton with the global min
        r.arrival(pkt(1, 3)).unwrap();
        r.arrival(pkt(1, 2)).unwrap();
        let d = r.arrival(pkt(0, 9)).unwrap();
        // Plain MVD would evict the 1 in queue 0; MVD1 skips the singleton
        // and evicts queue 1's minimum (2).
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
        assert_eq!(r.switch().queue(PortId::new(0)).len(), 2);
        assert_eq!(
            r.switch().queue(PortId::new(1)).min_value(),
            Some(Value::new(3))
        );
    }

    #[test]
    fn mvd1_drops_when_only_singletons() {
        let mut r = runner(Mvd::sparing_singletons(), 2, 2);
        r.arrival(pkt(0, 1)).unwrap();
        r.arrival(pkt(1, 1)).unwrap();
        assert_eq!(r.arrival(pkt(0, 9)).unwrap(), Decision::Drop);
    }

    #[test]
    fn theorem10_shape_keeps_only_top_class() {
        // Every slot B packets of each value 1..m arrive; MVD converges to a
        // buffer holding only value-m packets.
        let m = 4u64;
        let b = 8usize;
        let mut r = runner(Mvd::new(), b, m as usize);
        for _ in 0..5 {
            for v in 1..=m {
                for _ in 0..b {
                    let _ = r.arrival(pkt((v - 1) as usize, v)).unwrap();
                }
            }
            r.transmission();
            r.end_slot();
        }
        // All buffered packets are of the top class.
        let top = r.switch().queue(PortId::new((m - 1) as usize)).len();
        assert_eq!(top, r.switch().occupancy());
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(Mvd::new().name(), "MVD");
        assert_eq!(Mvd::sparing_singletons().name(), "MVD1");
        assert!(Mvd::sparing_singletons().spares_singletons());
    }
}
