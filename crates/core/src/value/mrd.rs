//! Maximal-Ratio-Drop (MRD) — the paper's proposed value-model policy.

use std::cmp::Reverse;

use smbm_switch::{PortId, RatioKey, ValuePacket, ValueSwitch};

use crate::index::{apply_queue_changes, ScoreIndex, SelectMode};
use crate::Decision;

/// **MRD** — the policy the paper conjectures to be constant-competitive in
/// the heterogeneous-value model (the open problem of Goldwasser's survey).
///
/// MRD combines LQD's port-balancing with MVD's value awareness: on
/// congestion it evicts the minimal-value packet of the queue with the
/// maximal ratio `|Q_j| / a_j`, where `a_j` is the queue's *average* value —
/// long, cheap queues are shed first; long, valuable queues are protected.
///
/// We use the uniform virtual-add semantics (DESIGN.md): the arrival is
/// virtually inserted into its destination queue before ratios are compared,
/// and the chosen victim queue's minimum is evicted — possibly the arrival
/// itself, which realises the "drop" branch. This reading is forced by the
/// paper's own claims: it makes MRD emulate LQD exactly when all values are
/// equal (the ratio degenerates to `|Q_j|`), and it reproduces the
/// `|Q_v| ∝ v` balanced fixed point of Theorem 11's `4/3` construction —
/// whereas a literal "only if the global minimum is strictly below the
/// arrival" precondition would deadlock both.
///
/// Ties on the ratio prefer the queue containing a smaller value (the paper's
/// rule), then the larger index. Ratios are compared exactly via
/// cross-multiplication ([`smbm_switch::RatioKey`]), not floating point.
///
/// Victim selection is O(log n) by default, via a [`ScoreIndex`] over
/// `(|Q_j|²/S_j, Reverse(min_j))`; [`Mrd::scan`] keeps the original O(n)
/// scan as the differential oracle.
#[derive(Debug, Clone, Default)]
pub struct Mrd {
    index: Option<ScoreIndex<(RatioKey, Reverse<u64>)>>,
    mode: SelectMode,
}

impl Mrd {
    /// Creates the policy.
    pub fn new() -> Self {
        Mrd {
            index: None,
            mode: SelectMode::Auto,
        }
    }

    /// Creates MRD with victim selection by full scan instead of the
    /// incremental index (differential-test oracle).
    pub fn scan() -> Self {
        Mrd {
            index: None,
            mode: SelectMode::Scan,
        }
    }

    /// Creates MRD that always maintains the incremental index, regardless
    /// of switch size (differential tests, benches).
    pub fn indexed() -> Self {
        Mrd {
            index: None,
            mode: SelectMode::Indexed,
        }
    }

    /// `port`'s resident key, `None` for an empty queue (which does not
    /// participate in victim selection).
    fn port_key(switch: &ValueSwitch, port: PortId) -> Option<(RatioKey, Reverse<u64>)> {
        let q = switch.queue(port);
        let key = q.ratio_key()?;
        let min = q.min_value().expect("non-empty queue has a minimum").get();
        Some((key, Reverse(min)))
    }

    /// Indexed equivalent of [`Mrd::max_ratio_queue`].
    fn indexed_max_ratio(&mut self, switch: &ValueSwitch, pkt: ValuePacket) -> PortId {
        if self
            .index
            .as_ref()
            .is_none_or(|i| i.ports() != switch.ports())
        {
            let mut idx = ScoreIndex::new(switch.ports());
            idx.rebuild_with(|i| Self::port_key(switch, PortId::new(i)));
            self.index = Some(idx);
        }
        let q = switch.queue(pkt.port());
        let len = q.len() as u128 + 1;
        let sum = q.total_value() as u128 + pkt.value().get() as u128;
        let min = q
            .min_value()
            .map_or(u64::MAX, |v| v.get())
            .min(pkt.value().get());
        let virtual_key = (RatioKey::new(len * len, sum), Reverse(min));
        self.index
            .as_ref()
            .expect("index built above")
            .max_with(pkt.port(), virtual_key)
    }

    /// The queue with the maximal `|Q|/a` ratio once `pkt` is virtually added
    /// to its destination queue. Ties prefer the queue with the smaller
    /// minimum value, then the larger index. Only non-empty (after the
    /// virtual add) queues participate, so the result always exists.
    pub fn max_ratio_queue(switch: &ValueSwitch, pkt: ValuePacket) -> PortId {
        let mut best: Option<(PortId, u128, u128, u64)> = None;
        for (port, q) in switch.queues() {
            let own = port == pkt.port();
            let len = q.len() as u128 + u128::from(own);
            if len == 0 {
                continue;
            }
            let sum = q.total_value() as u128 + if own { pkt.value().get() as u128 } else { 0 };
            let len_sq = len * len;
            let min = {
                let resident = q.min_value().map_or(u64::MAX, |v| v.get());
                if own {
                    resident.min(pkt.value().get())
                } else {
                    resident
                }
            };
            let better = match &best {
                None => true,
                Some((_, blen_sq, bsum, bmin)) => {
                    // ratio = len^2 / sum; compare len_sq * bsum vs blen_sq * sum.
                    let lhs = len_sq * bsum;
                    let rhs = blen_sq * sum;
                    lhs > rhs || (lhs == rhs && min <= *bmin)
                }
            };
            if better {
                best = Some((port, len_sq, sum, min));
            }
        }
        best.map(|(p, _, _, _)| p)
            .expect("destination queue is non-empty after the virtual add")
    }
}

impl super::ValuePolicy for Mrd {
    fn name(&self) -> &str {
        "MRD"
    }

    fn decide(&mut self, switch: &ValueSwitch, pkt: ValuePacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        let victim = if self.mode.use_index(switch.ports()) {
            self.indexed_max_ratio(switch, pkt)
        } else {
            Self::max_ratio_queue(switch, pkt)
        };
        Decision::PushOut(victim)
    }

    fn wants_queue_events(&self, ports: usize) -> bool {
        self.mode.use_index(ports)
    }

    fn queue_changed(&mut self, switch: &ValueSwitch, port: PortId) {
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                idx.set(port, Self::port_key(switch, port));
            }
        }
    }

    fn queues_changed(&mut self, switch: &ValueSwitch, ports: &[PortId]) {
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                apply_queue_changes(idx, ports, |i| Self::port_key(switch, PortId::new(i)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ValuePolicy, ValueRunner};
    use smbm_switch::{Value, ValueSwitchConfig};

    fn pkt(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(v))
    }

    fn runner(b: usize, n: usize) -> ValueRunner<Mrd> {
        ValueRunner::new(ValueSwitchConfig::new(b, n).unwrap(), Mrd::new(), 1)
    }

    #[test]
    fn greedy_while_space_remains() {
        let mut r = runner(2, 2);
        assert_eq!(r.arrival(pkt(0, 1)).unwrap(), Decision::Accept);
        assert_eq!(r.arrival(pkt(1, 5)).unwrap(), Decision::Accept);
    }

    #[test]
    fn cheap_arrival_to_own_heavy_queue_self_evicts() {
        let mut r = runner(2, 2);
        r.arrival(pkt(0, 3)).unwrap();
        r.arrival(pkt(0, 5)).unwrap();
        // Virtual Q0 = {5,3,2}: ratio 9/10 beats empty Q1; min is the
        // arrival itself => net drop.
        let d = r.arrival(pkt(0, 2)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(0)));
        assert_eq!(r.switch().total_value(), 8);
        r.switch().check_invariants().unwrap();
    }

    #[test]
    fn pushes_out_from_max_ratio_queue() {
        let mut r = runner(4, 2);
        // Queue 0: 3 cheap packets => ratio 9/3 = 3.
        for _ in 0..3 {
            r.arrival(pkt(0, 1)).unwrap();
        }
        // Queue 1: 1 expensive packet => ratio 1/9.
        r.arrival(pkt(1, 9)).unwrap();
        let d = r.arrival(pkt(1, 5)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(0)));
        assert_eq!(r.switch().queue(PortId::new(0)).len(), 2);
        assert_eq!(r.switch().queue(PortId::new(1)).len(), 2);
    }

    #[test]
    fn victim_may_differ_from_cheapest_queue() {
        // Ratio ties are broken toward the queue containing a smaller value.
        let mut r = runner(5, 2);
        // Queue 0: four value-4 packets => ratio 16/16 = 1.
        for _ in 0..4 {
            r.arrival(pkt(0, 4)).unwrap();
        }
        // Queue 1: one value-1 packet => ratio 1/1 = 1.
        r.arrival(pkt(1, 1)).unwrap();
        // Arrival to port 1 of value 9: virtual Q1 = {9,1} ratio 4/10 < 1;
        // tie between Q0 (1) and ... Q0 wins the ratio now. Use a neutral
        // arrival instead: value 9 to port 0 => virtual Q0 ratio 25/25 = 1,
        // still tied with Q1's 1/1; Q1 holds the smaller value and loses its
        // packet.
        let d = r.arrival(pkt(0, 9)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
    }

    #[test]
    fn emulates_lqd_on_unit_values() {
        use crate::value::LqdValue;
        let cfg = ValueSwitchConfig::new(6, 3).unwrap();
        let mut mrd = ValueRunner::new(cfg, Mrd::new(), 1);
        let mut lqd = ValueRunner::new(cfg, LqdValue::new(), 1);
        let pattern = [0, 1, 1, 2, 1, 0, 0, 1, 2, 2, 1, 0, 2, 2, 1, 1, 1, 0];
        for &p in &pattern {
            let a = mrd.arrival(pkt(p, 1)).unwrap();
            let b = lqd.arrival(pkt(p, 1)).unwrap();
            // With unit values both policies keep identical queue *lengths*
            // (the evicted packet is interchangeable).
            assert_eq!(a.admits(), b.admits(), "diverged on arrival to {p}");
        }
        for p in 0..3 {
            assert_eq!(
                mrd.switch().queue(PortId::new(p)).len(),
                lqd.switch().queue(PortId::new(p)).len(),
                "queue {p} lengths diverged"
            );
        }
    }

    #[test]
    fn unit_value_flood_balances_like_lqd() {
        let mut r = runner(6, 3);
        for _ in 0..6 {
            r.arrival(pkt(2, 1)).unwrap();
        }
        for _ in 0..6 {
            for port in 0..3 {
                let _ = r.arrival(pkt(port, 1)).unwrap();
            }
        }
        let lens: Vec<usize> = (0..3)
            .map(|p| r.switch().queue(PortId::new(p)).len())
            .collect();
        assert_eq!(lens.iter().sum::<usize>(), 6);
        assert!(lens.iter().all(|&l| l == 2), "unbalanced: {lens:?}");
    }

    #[test]
    fn theorem11_first_burst_balances_size_value_ratio() {
        // Value==port burst with values 1, 2, 3, 6 and B = 24:
        // MRD converges to |Q_v| proportional to v: 2, 4, 6, 12.
        let b = 24usize;
        let mut r = runner(b, 4);
        let values = [1u64, 2, 3, 6];
        // Round-robin the burst so every class keeps arriving until dropped.
        for _ in 0..b {
            for (port, &v) in values.iter().enumerate() {
                let _ = r.arrival(pkt(port, v)).unwrap();
            }
        }
        let lens: Vec<usize> = (0..4)
            .map(|p| r.switch().queue(PortId::new(p)).len())
            .collect();
        assert_eq!(lens.iter().sum::<usize>(), b);
        // c * (1+2+3+6) = 24 => c = 2 => queues near 2, 4, 6, 12 (the exact
        // fixed point oscillates by a packet or two as ties shuffle).
        for (i, (&got, want)) in lens.iter().zip([2usize, 4, 6, 12]).enumerate() {
            let diff = got.abs_diff(want);
            assert!(diff <= 2, "queue {i}: got {got}, want ~{want} ({lens:?})");
        }
    }

    #[test]
    fn protects_high_average_queues() {
        let mut r = runner(6, 2);
        // Queue 0: three 9s (ratio 9/27 = 1/3); queue 1: three 1s (ratio 3).
        for _ in 0..3 {
            r.arrival(pkt(0, 9)).unwrap();
            r.arrival(pkt(1, 1)).unwrap();
        }
        // A mid-value arrival to port 0 evicts from the cheap queue.
        let d = r.arrival(pkt(0, 5)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
        assert_eq!(r.switch().queue(PortId::new(0)).len(), 4);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Mrd::new().name(), "MRD");
    }
}
