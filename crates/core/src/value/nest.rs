//! NEST in the value model: equal static thresholds.

use smbm_switch::{ValuePacket, ValueSwitch};

use crate::Decision;

/// **NEST-V** — the value-model translation of NEST: accept a packet for
/// port `i` iff the buffer has free space and `|Q_i| < B/n`. A complete
/// partition of the shared buffer; non-push-out.
#[derive(Debug, Clone, Copy, Default)]
pub struct NestValue {
    _priv: (),
}

impl NestValue {
    /// Creates the policy.
    pub fn new() -> Self {
        NestValue { _priv: () }
    }
}

impl super::ValuePolicy for NestValue {
    fn name(&self) -> &str {
        "NEST-V"
    }

    fn decide(&mut self, switch: &ValueSwitch, pkt: ValuePacket) -> Decision {
        if switch.is_full() {
            return Decision::Drop;
        }
        if switch.queue(pkt.port()).len() * switch.ports() < switch.buffer() {
            Decision::Accept
        } else {
            Decision::Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ValuePolicy, ValueRunner};
    use smbm_switch::{PortId, Value, ValueSwitchConfig};

    fn pkt(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(v))
    }

    #[test]
    fn partitions_buffer() {
        let cfg = ValueSwitchConfig::new(6, 3).unwrap();
        let mut r = ValueRunner::new(cfg, NestValue::new(), 1);
        for port in 0..3 {
            assert_eq!(r.arrival(pkt(port, 4)).unwrap(), Decision::Accept);
            assert_eq!(r.arrival(pkt(port, 4)).unwrap(), Decision::Accept);
            assert_eq!(r.arrival(pkt(port, 9)).unwrap(), Decision::Drop);
        }
    }

    #[test]
    fn value_blind() {
        let cfg = ValueSwitchConfig::new(2, 2).unwrap();
        let mut r = ValueRunner::new(cfg, NestValue::new(), 1);
        r.arrival(pkt(0, 1)).unwrap();
        // Queue 0 is at its share; a very valuable packet is still dropped.
        assert_eq!(r.arrival(pkt(0, 1000)).unwrap(), Decision::Drop);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(NestValue::new().name(), "NEST-V");
    }
}
