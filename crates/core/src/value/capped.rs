//! Scripted value-model admission with static per-queue caps.
//!
//! Value-model counterpart of [`crate::CappedWork`]: executes the admission
//! quotas that the Section IV lower-bound proofs prescribe for OPT.

use smbm_switch::{PortId, ValuePacket, ValueSwitch};

use crate::Decision;

/// Non-push-out policy that accepts a packet for port `i` iff the buffer has
/// space and `|Q_i|` is below a fixed per-port cap.
///
/// ```
/// use smbm_core::{CappedValue, Decision, ValueRunner};
/// use smbm_switch::{PortId, Value, ValuePacket, ValueSwitchConfig};
///
/// let cfg = ValueSwitchConfig::new(4, 2)?;
/// let mut r = ValueRunner::new(cfg, CappedValue::new(vec![0, 2]), 1);
/// assert_eq!(r.arrival(ValuePacket::new(PortId::new(0), Value::new(9)))?, Decision::Drop);
/// assert_eq!(r.arrival(ValuePacket::new(PortId::new(1), Value::new(1)))?, Decision::Accept);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CappedValue {
    caps: Vec<usize>,
}

impl CappedValue {
    /// Creates the policy with `caps[i]` bounding queue `i`.
    pub fn new(caps: Vec<usize>) -> Self {
        CappedValue { caps }
    }

    /// The configured caps.
    pub fn caps(&self) -> &[usize] {
        &self.caps
    }

    fn cap(&self, port: PortId) -> usize {
        self.caps.get(port.index()).copied().unwrap_or(0)
    }
}

impl super::ValuePolicy for CappedValue {
    fn name(&self) -> &str {
        "OPT-script"
    }

    fn decide(&mut self, switch: &ValueSwitch, pkt: ValuePacket) -> Decision {
        if switch.is_full() || switch.queue(pkt.port()).len() >= self.cap(pkt.port()) {
            Decision::Drop
        } else {
            Decision::Accept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ValuePolicy, ValueRunner};
    use smbm_switch::{Value, ValueSwitchConfig};

    fn pkt(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(v))
    }

    #[test]
    fn caps_bound_each_queue() {
        let cfg = ValueSwitchConfig::new(10, 3).unwrap();
        let mut r = ValueRunner::new(cfg, CappedValue::new(vec![1, 2, 0]), 1);
        assert!(r.arrival(pkt(0, 5)).unwrap().admits());
        assert_eq!(r.arrival(pkt(0, 5)).unwrap(), Decision::Drop);
        assert!(r.arrival(pkt(1, 5)).unwrap().admits());
        assert!(r.arrival(pkt(1, 5)).unwrap().admits());
        assert_eq!(r.arrival(pkt(1, 5)).unwrap(), Decision::Drop);
        assert_eq!(r.arrival(pkt(2, 5)).unwrap(), Decision::Drop);
    }

    #[test]
    fn reopens_after_transmission() {
        let cfg = ValueSwitchConfig::new(4, 1).unwrap();
        let mut r = ValueRunner::new(cfg, CappedValue::new(vec![1]), 1);
        assert!(r.arrival(pkt(0, 5)).unwrap().admits());
        assert_eq!(r.arrival(pkt(0, 7)).unwrap(), Decision::Drop);
        r.transmission();
        r.end_slot();
        assert!(r.arrival(pkt(0, 7)).unwrap().admits());
        assert_eq!(r.policy().caps(), &[1]);
    }

    #[test]
    fn name() {
        assert_eq!(CappedValue::new(vec![]).name(), "OPT-script");
    }
}
