//! Greedy non-push-out admission in the value model.

use smbm_switch::{ValuePacket, ValueSwitch};

use crate::Decision;

/// **Greedy** — accept whenever the buffer has free space, never push out.
///
/// Section IV dismisses non-push-out policies: filling the buffer with `1`s
/// and then sending `k`s shows any such greedy policy is at least
/// `k`-competitive. Included as the natural baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyValue {
    _priv: (),
}

impl GreedyValue {
    /// Creates the policy.
    pub fn new() -> Self {
        GreedyValue { _priv: () }
    }
}

impl super::ValuePolicy for GreedyValue {
    fn name(&self) -> &str {
        "GREEDY"
    }

    fn decide(&mut self, switch: &ValueSwitch, _pkt: ValuePacket) -> Decision {
        if switch.is_full() {
            Decision::Drop
        } else {
            Decision::Accept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ValuePolicy, ValueRunner};
    use smbm_switch::{PortId, Value, ValueSwitchConfig};

    fn pkt(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(v))
    }

    #[test]
    fn accepts_until_full_then_drops() {
        let cfg = ValueSwitchConfig::new(2, 2).unwrap();
        let mut r = ValueRunner::new(cfg, GreedyValue::new(), 1);
        assert_eq!(r.arrival(pkt(0, 1)).unwrap(), Decision::Accept);
        assert_eq!(r.arrival(pkt(1, 1)).unwrap(), Decision::Accept);
        // Even a much more valuable packet is dropped: no push-out.
        assert_eq!(r.arrival(pkt(0, 100)).unwrap(), Decision::Drop);
        assert_eq!(r.switch().counters().pushed_out(), 0);
    }

    #[test]
    fn k_competitive_weakness_scenario() {
        // Fill with 1s, then offer ks: greedy keeps the 1s.
        let cfg = ValueSwitchConfig::new(4, 2).unwrap();
        let mut r = ValueRunner::new(cfg, GreedyValue::new(), 1);
        for _ in 0..4 {
            r.arrival(pkt(0, 1)).unwrap();
        }
        for _ in 0..4 {
            assert_eq!(r.arrival(pkt(1, 50)).unwrap(), Decision::Drop);
        }
        assert_eq!(r.switch().total_value(), 4);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(GreedyValue::new().name(), "GREEDY");
    }
}
