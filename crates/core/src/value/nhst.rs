//! NHST in the value model: reversed harmonic static thresholds.

use smbm_switch::{PortId, ValuePacket, ValueSwitch};

use crate::Decision;

/// **NHST-V** — the value-model translation of NHST used in Section V-C's
/// value==port experiments: since high *values* (unlike high *work*) are
/// desirable, the thresholds are reversed, giving the queue for value `i`
/// (1-based) the share `B / ((k - i + 1) * H_k)`, so the most valuable class
/// gets the largest share. Non-push-out.
///
/// The policy keys thresholds on the *port index* (port `i` carries value
/// `i+1`), matching the special case it was designed for; in the uniform-
/// value setting it simply favours high-numbered ports.
#[derive(Debug, Clone, Copy, Default)]
pub struct NhstValue {
    _priv: (),
}

impl NhstValue {
    /// Creates the policy.
    pub fn new() -> Self {
        NhstValue { _priv: () }
    }

    /// The reversed-harmonic threshold for `port`, in fractional packets.
    pub fn threshold(switch: &ValueSwitch, port: PortId) -> f64 {
        let n = switch.ports();
        let h_n: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
        let rank = (n - port.index()) as f64; // value i => k - i + 1
        switch.buffer() as f64 / (rank * h_n)
    }
}

impl super::ValuePolicy for NhstValue {
    fn name(&self) -> &str {
        "NHST-V"
    }

    fn decide(&mut self, switch: &ValueSwitch, pkt: ValuePacket) -> Decision {
        if switch.is_full() {
            return Decision::Drop;
        }
        if (switch.queue(pkt.port()).len() as f64) < Self::threshold(switch, pkt.port()) {
            Decision::Accept
        } else {
            Decision::Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ValuePolicy, ValueRunner};
    use smbm_switch::{Value, ValueSwitchConfig};

    fn pkt(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(v))
    }

    #[test]
    fn highest_value_port_gets_largest_share() {
        // n = 2, B = 12, H_2 = 1.5.
        // Port 0 (value 1): B / (2 * 1.5) = 4. Port 1 (value 2): B / 1.5 = 8.
        let cfg = ValueSwitchConfig::new(12, 2).unwrap();
        let mut r = ValueRunner::new(cfg, NhstValue::new(), 1);
        let mut low = 0;
        for _ in 0..12 {
            if r.arrival(pkt(0, 1)).unwrap().admits() {
                low += 1;
            }
        }
        let mut high = 0;
        for _ in 0..12 {
            if r.arrival(pkt(1, 2)).unwrap().admits() {
                high += 1;
            }
        }
        assert_eq!(low, 4);
        assert_eq!(high, 8);
    }

    #[test]
    fn threshold_formula() {
        let cfg = ValueSwitchConfig::new(12, 2).unwrap();
        let sw = smbm_switch::ValueSwitch::new(cfg);
        assert!((NhstValue::threshold(&sw, PortId::new(0)) - 4.0).abs() < 1e-12);
        assert!((NhstValue::threshold(&sw, PortId::new(1)) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn never_pushes_out() {
        let cfg = ValueSwitchConfig::new(4, 2).unwrap();
        let mut r = ValueRunner::new(cfg, NhstValue::new(), 1);
        for i in 0..10 {
            let _ = r.arrival(pkt(i % 2, 1 + (i as u64 % 2))).unwrap();
        }
        assert_eq!(r.switch().counters().pushed_out(), 0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(NhstValue::new().name(), "NHST-V");
    }
}
