//! Longest-Queue-Drop (LQD) in the heterogeneous-value model.

use std::cmp::Reverse;

use smbm_switch::{PortId, ValuePacket, ValueSwitch};

use crate::index::{apply_queue_changes, ScoreIndex, SelectMode};
use crate::Decision;

/// **LQD** (value model) — on congestion, drop the *lowest-value* packet of
/// the *longest* queue, balancing queue sizes while ignoring values beyond
/// the within-queue victim choice.
///
/// We use the virtual-add semantics documented in DESIGN.md: `j*` maximizes
/// `|Q_j| + [i = j]`; ties prefer the queue with the smaller minimum value
/// (shedding the cheapest packet), then the larger index. The minimal-value
/// packet of `Q_{j*}` is evicted — when `j* = i` and the arrival is the
/// queue's minimum, that eviction is the arrival itself, reproducing the
/// classic "drop" branch on homogeneous values.
///
/// Theorem 9 shows LQD is at least `∛k`-competitive in this model.
///
/// Victim selection is O(log n) by default, via a [`ScoreIndex`] over
/// `(|Q_j|, Reverse(min_j))`; [`LqdValue::scan`] keeps the original O(n)
/// scan as the differential oracle.
#[derive(Debug, Clone, Default)]
pub struct LqdValue {
    index: Option<ScoreIndex<(usize, Reverse<u64>)>>,
    mode: SelectMode,
}

impl LqdValue {
    /// Creates the policy. Victim selection picks index or scan automatically
    /// by port count.
    pub fn new() -> Self {
        LqdValue {
            index: None,
            mode: SelectMode::Auto,
        }
    }

    /// Creates value-LQD with victim selection by full scan instead of the
    /// incremental index (differential-test oracle).
    pub fn scan() -> Self {
        LqdValue {
            index: None,
            mode: SelectMode::Scan,
        }
    }

    /// Creates value-LQD with the incremental index forced on regardless of
    /// port count.
    pub fn indexed() -> Self {
        LqdValue {
            index: None,
            mode: SelectMode::Indexed,
        }
    }

    fn port_key(switch: &ValueSwitch, port: PortId) -> (usize, Reverse<u64>) {
        let q = switch.queue(port);
        (
            q.len(),
            Reverse(q.min_value().map_or(u64::MAX, |v| v.get())),
        )
    }

    /// Indexed equivalent of [`LqdValue::longest_queue`].
    fn indexed_longest(&mut self, switch: &ValueSwitch, pkt: ValuePacket) -> PortId {
        if self
            .index
            .as_ref()
            .is_none_or(|i| i.ports() != switch.ports())
        {
            let mut idx = ScoreIndex::new(switch.ports());
            idx.rebuild_with(|i| Some(Self::port_key(switch, PortId::new(i))));
            self.index = Some(idx);
        }
        let (len, Reverse(min)) = Self::port_key(switch, pkt.port());
        let virtual_key = (len + 1, Reverse(min.min(pkt.value().get())));
        self.index
            .as_ref()
            .expect("index built above")
            .max_with(pkt.port(), virtual_key)
    }

    /// The queue LQD considers fullest once `arriving` is virtually added.
    pub fn longest_queue(switch: &ValueSwitch, pkt: ValuePacket) -> PortId {
        let mut best = PortId::new(0);
        let mut best_len = 0usize;
        let mut best_min = u64::MAX;
        let mut first = true;
        for (port, q) in switch.queues() {
            let own = port == pkt.port();
            let len = q.len() + usize::from(own);
            let min = {
                let resident = q.min_value().map_or(u64::MAX, |v| v.get());
                if own {
                    resident.min(pkt.value().get())
                } else {
                    resident
                }
            };
            let better = if first {
                true
            } else {
                // Longer queue wins; among equals, the smaller minimum value;
                // among those, later index.
                (len > best_len) || (len == best_len && min <= best_min)
            };
            if better {
                best = port;
                best_len = len;
                best_min = min;
                first = false;
            }
        }
        best
    }
}

impl super::ValuePolicy for LqdValue {
    fn name(&self) -> &str {
        "LQD"
    }

    fn decide(&mut self, switch: &ValueSwitch, pkt: ValuePacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        let longest = if self.mode.use_index(switch.ports()) {
            self.indexed_longest(switch, pkt)
        } else {
            Self::longest_queue(switch, pkt)
        };
        Decision::PushOut(longest)
    }

    fn wants_queue_events(&self, ports: usize) -> bool {
        self.mode.use_index(ports)
    }

    fn queue_changed(&mut self, switch: &ValueSwitch, port: PortId) {
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                idx.set(port, Some(Self::port_key(switch, port)));
            }
        }
    }

    fn queues_changed(&mut self, switch: &ValueSwitch, ports: &[PortId]) {
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                apply_queue_changes(idx, ports, |i| Some(Self::port_key(switch, PortId::new(i))));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ValuePolicy, ValueRunner};
    use smbm_switch::{Value, ValueSwitchConfig};

    fn pkt(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(v))
    }

    fn runner(b: usize, n: usize) -> ValueRunner<LqdValue> {
        ValueRunner::new(ValueSwitchConfig::new(b, n).unwrap(), LqdValue::new(), 1)
    }

    #[test]
    fn greedy_while_space_remains() {
        let mut r = runner(2, 2);
        assert_eq!(r.arrival(pkt(0, 1)).unwrap(), Decision::Accept);
        assert_eq!(r.arrival(pkt(1, 9)).unwrap(), Decision::Accept);
    }

    #[test]
    fn evicts_min_value_of_longest_queue() {
        let mut r = runner(4, 2);
        for v in [5, 2, 8] {
            r.arrival(pkt(1, v)).unwrap();
        }
        r.arrival(pkt(0, 1)).unwrap();
        assert!(r.switch().is_full());
        // Arrival to queue 0: queue 1 (len 3) is longest; its min (2) leaves.
        let d = r.arrival(pkt(0, 3)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
        assert_eq!(
            r.switch().queue(PortId::new(1)).min_value(),
            Some(Value::new(5))
        );
        assert_eq!(r.switch().queue(PortId::new(0)).len(), 2);
    }

    #[test]
    fn own_longest_queue_sheds_minimum_even_if_it_is_the_arrival() {
        let mut r = runner(2, 2);
        r.arrival(pkt(0, 5)).unwrap();
        r.arrival(pkt(0, 4)).unwrap();
        // Queue 0 is the longest even before the virtual add; a cheap arrival
        // to it evicts itself (net drop).
        let d = r.arrival(pkt(0, 1)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(0)));
        assert_eq!(r.switch().total_value(), 9);
        r.switch().check_invariants().unwrap();
    }

    #[test]
    fn own_longest_queue_upgrade_keeps_valuable_arrival() {
        let mut r = runner(2, 2);
        r.arrival(pkt(0, 5)).unwrap();
        r.arrival(pkt(0, 1)).unwrap();
        // A valuable arrival to the longest queue replaces its minimum: this
        // is where virtual-add semantics improve on blind dropping.
        let d = r.arrival(pkt(0, 9)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(0)));
        assert_eq!(r.switch().total_value(), 14);
    }

    #[test]
    fn balances_under_flood() {
        let mut r = runner(6, 3);
        for _ in 0..6 {
            r.arrival(pkt(2, 7)).unwrap();
        }
        for _ in 0..6 {
            for port in 0..3 {
                let _ = r.arrival(pkt(port, 1)).unwrap();
            }
        }
        let lens: Vec<usize> = (0..3)
            .map(|p| r.switch().queue(PortId::new(p)).len())
            .collect();
        assert_eq!(lens.iter().sum::<usize>(), 6);
        assert!(lens.iter().all(|&l| l == 2), "unbalanced: {lens:?}");
    }

    #[test]
    fn tie_prefers_cheaper_minimum() {
        let mut r = runner(4, 3);
        r.arrival(pkt(0, 9)).unwrap();
        r.arrival(pkt(0, 8)).unwrap();
        r.arrival(pkt(1, 2)).unwrap();
        r.arrival(pkt(1, 7)).unwrap();
        assert!(r.switch().is_full());
        // Queues 0 and 1 tie at length 2; queue 1 has the smaller min (2).
        let d = r.arrival(pkt(2, 5)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(LqdValue::new().name(), "LQD");
    }
}
