//! The *literal* reading of the paper's MRD rule, kept as an ablation
//! foil for the virtual-add [`crate::Mrd`] actually used.

use smbm_switch::{PortId, ValuePacket, ValueSwitch};

use crate::Decision;

/// **MRD-strict** — MRD exactly as printed in Section IV: on a full buffer,
/// push out the minimal-value packet of the maximal-ratio queue **only if
/// the globally minimal admitted value is strictly below the arrival's
/// value**; otherwise drop.
///
/// DESIGN.md documents why this cannot be what the authors ran: with unit
/// values the strict precondition never holds, so MRD-strict freezes its
/// buffer at the first congestion instant instead of emulating LQD, and on
/// Theorem 11's own trace it admits none of the low-value packets the proof
/// says MRD accepts. The `ablations` bench and `tests/extensions.rs`
/// demonstrate both failures; [`crate::Mrd`] repairs them with virtual-add
/// semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MrdStrict {
    _priv: (),
}

impl MrdStrict {
    /// Creates the policy.
    pub fn new() -> Self {
        MrdStrict { _priv: () }
    }

    /// The non-empty queue with maximal `|Q|/a` (no virtual add); ties
    /// prefer the queue containing a smaller value, then the larger index.
    pub fn max_ratio_queue(switch: &ValueSwitch) -> Option<PortId> {
        let mut best: Option<(PortId, smbm_switch::RatioKey, u64)> = None;
        for (port, q) in switch.queues() {
            let Some(key) = q.ratio_key() else { continue };
            let min = q.min_value().expect("non-empty queue has min").get();
            let better = match &best {
                None => true,
                Some((_, bkey, bmin)) => key > *bkey || (key == *bkey && min <= *bmin),
            };
            if better {
                best = Some((port, key, min));
            }
        }
        best.map(|(p, _, _)| p)
    }
}

impl super::ValuePolicy for MrdStrict {
    fn name(&self) -> &str {
        "MRD-strict"
    }

    fn decide(&mut self, switch: &ValueSwitch, pkt: ValuePacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        match switch.global_min_value() {
            Some((_, min)) if min.get() < pkt.value().get() => {
                let victim =
                    Self::max_ratio_queue(switch).expect("full buffer has a non-empty queue");
                Decision::PushOut(victim)
            }
            _ => Decision::Drop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ValuePolicy, ValueRunner};
    use smbm_switch::{Value, ValueSwitchConfig};

    fn pkt(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(v))
    }

    #[test]
    fn freezes_on_unit_values() {
        // The failure DESIGN.md documents: with all-equal values the strict
        // precondition never fires, so nothing is admitted past the fill.
        let cfg = ValueSwitchConfig::new(4, 2).unwrap();
        let mut r = ValueRunner::new(cfg, MrdStrict::new(), 1);
        for _ in 0..4 {
            assert!(r.arrival(pkt(0, 1)).unwrap().admits());
        }
        for _ in 0..10 {
            assert_eq!(r.arrival(pkt(1, 1)).unwrap(), Decision::Drop);
        }
        // Queue 1's port stays starved even though LQD would activate it.
        assert!(r.switch().queue(PortId::new(1)).is_empty());
    }

    #[test]
    fn admits_strictly_better_values() {
        let cfg = ValueSwitchConfig::new(2, 2).unwrap();
        let mut r = ValueRunner::new(cfg, MrdStrict::new(), 1);
        r.arrival(pkt(0, 1)).unwrap();
        r.arrival(pkt(0, 1)).unwrap();
        let d = r.arrival(pkt(1, 5)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(0)));
        assert_eq!(r.switch().total_value(), 6);
    }

    #[test]
    fn rejects_theorem11_cheap_classes() {
        // On Theorem 11's burst, strict MRD admits no 1/2/3-valued packets
        // once the buffer is full of 6s — contradicting the proof's stated
        // MRD behaviour, which is the evidence for the virtual-add reading.
        let cfg = ValueSwitchConfig::new(12, 4).unwrap();
        let mut r = ValueRunner::new(cfg, MrdStrict::new(), 1);
        for _ in 0..12 {
            r.arrival(pkt(3, 6)).unwrap();
        }
        for v in [1u64, 2, 3] {
            assert_eq!(r.arrival(pkt(v as usize - 1, v)).unwrap(), Decision::Drop);
        }
        assert_eq!(r.switch().queue(PortId::new(3)).len(), 12);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(MrdStrict::new().name(), "MRD-strict");
    }
}
