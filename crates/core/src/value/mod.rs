//! Buffer-management policies for the heterogeneous-value model
//! (Section IV of the paper).

mod capped;
mod greedy;
mod lqd;
mod mrd;
mod mrd_strict;
mod mvd;
mod nest;
mod nhst;

pub use capped::CappedValue;
pub use greedy::GreedyValue;
pub use lqd::LqdValue;
pub use mrd::Mrd;
pub use mrd_strict::MrdStrict;
pub use mvd::Mvd;
pub use nest::NestValue;
pub use nhst::NhstValue;

use smbm_switch::{AdmitError, Transmitted, ValuePacket, ValuePhaseReport, ValueSwitch};

use crate::Decision;

/// An online buffer-management policy for the heterogeneous-value model.
///
/// The push-out decision names a victim queue; the [`ValueRunner`] evicts
/// that queue's *minimal-value* packet (queues are priority queues). Naming
/// the destination queue itself realises the virtual-add semantics described
/// in DESIGN.md: the arrival is inserted and the queue minimum (possibly the
/// arrival) leaves.
pub trait ValuePolicy: std::fmt::Debug + Send {
    /// Short human-readable identifier, e.g. `"MRD"`.
    fn name(&self) -> &str;

    /// Decides the fate of `pkt` given the switch state.
    fn decide(&mut self, switch: &ValueSwitch, pkt: ValuePacket) -> Decision;

    /// Invoked when the simulator flushes the buffer.
    fn on_flush(&mut self) {}

    /// Whether the runner should report queue-change events (see
    /// [`ValuePolicy::queues_changed`]) on a switch with `ports` ports.
    /// Defaults to `false` so scan-based policies pay nothing.
    fn wants_queue_events(&self, ports: usize) -> bool {
        let _ = ports;
        false
    }

    /// Notifies the policy that `port`'s queue changed since the last
    /// decision, so incremental indices (see [`crate::ScoreIndex`]) can
    /// refresh that port's score. Only called when
    /// [`ValuePolicy::wants_queue_events`] returns `true`.
    fn queue_changed(&mut self, switch: &ValueSwitch, port: smbm_switch::PortId) {
        let _ = (switch, port);
    }

    /// Batch form of [`ValuePolicy::queue_changed`]: one call per sync with
    /// every port that changed since the last decision, letting indexed
    /// policies rebuild in O(n) when most ports are dirty (the
    /// post-transmission storm) instead of n point updates.
    fn queues_changed(&mut self, switch: &ValueSwitch, ports: &[smbm_switch::PortId]) {
        for &port in ports {
            self.queue_changed(switch, port);
        }
    }
}

impl<P: ValuePolicy + ?Sized> ValuePolicy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn decide(&mut self, switch: &ValueSwitch, pkt: ValuePacket) -> Decision {
        (**self).decide(switch, pkt)
    }

    fn on_flush(&mut self) {
        (**self).on_flush()
    }

    fn wants_queue_events(&self, ports: usize) -> bool {
        (**self).wants_queue_events(ports)
    }

    fn queue_changed(&mut self, switch: &ValueSwitch, port: smbm_switch::PortId) {
        (**self).queue_changed(switch, port)
    }

    fn queues_changed(&mut self, switch: &ValueSwitch, ports: &[smbm_switch::PortId]) {
        (**self).queues_changed(switch, ports)
    }
}

/// Binds a [`ValuePolicy`] to a [`ValueSwitch`] and a speedup.
///
/// ```
/// use smbm_core::{Mrd, ValueRunner};
/// use smbm_switch::{PortId, Value, ValuePacket, ValueSwitchConfig};
///
/// let mut runner = ValueRunner::new(ValueSwitchConfig::new(4, 2)?, Mrd::new(), 1);
/// runner.arrival(ValuePacket::new(PortId::new(0), Value::new(6)))?;
/// assert_eq!(runner.transmission().value, 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ValueRunner<P> {
    switch: ValueSwitch,
    policy: P,
    speedup: u32,
    dirty_scratch: Vec<smbm_switch::PortId>,
}

impl<P: ValuePolicy> ValueRunner<P> {
    /// Creates a runner over a fresh switch.
    pub fn new(config: smbm_switch::ValueSwitchConfig, policy: P, speedup: u32) -> Self {
        ValueRunner {
            switch: ValueSwitch::new(config),
            policy,
            speedup,
            dirty_scratch: Vec::new(),
        }
    }

    /// The underlying switch (read-only).
    pub fn switch(&self) -> &ValueSwitch {
        &self.switch
    }

    /// The bound policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Speedup `C` used in the transmission phase.
    pub fn speedup(&self) -> u32 {
        self.speedup
    }

    /// Presents one arriving packet to the policy and applies its decision.
    ///
    /// # Errors
    ///
    /// Propagates [`AdmitError`] if the decision was inconsistent with the
    /// switch state. The bundled policies never err.
    pub fn arrival(&mut self, pkt: ValuePacket) -> Result<Decision, AdmitError> {
        // Sync incremental indices only when victim selection can run (full
        // buffer); see `WorkRunner::arrival`.
        if self.switch.is_full() && self.policy.wants_queue_events(self.switch.ports()) {
            self.switch.drain_dirty_into(&mut self.dirty_scratch);
            self.policy
                .queues_changed(&self.switch, &self.dirty_scratch);
        }
        let decision = self.policy.decide(&self.switch, pkt);
        match decision {
            Decision::Accept => self.switch.admit(pkt)?,
            Decision::Drop => self.switch.reject(pkt)?,
            Decision::PushOut(victim) => {
                self.switch.push_out_and_admit(victim, pkt)?;
            }
        }
        Ok(decision)
    }

    /// Runs the transmission phase at the configured speedup.
    pub fn transmission(&mut self) -> ValuePhaseReport {
        self.switch.transmit(self.speedup)
    }

    /// Like [`ValueRunner::transmission`], appending per-packet completion
    /// details to `out`.
    pub fn transmission_into(&mut self, out: &mut Vec<Transmitted>) -> ValuePhaseReport {
        self.switch.transmit_into(self.speedup, out)
    }

    /// Ends the slot (advances the switch clock).
    pub fn end_slot(&mut self) {
        self.switch.advance_slot();
    }

    /// Flushes the buffer and notifies the policy.
    pub fn flush(&mut self) -> u64 {
        self.policy.on_flush();
        self.switch.flush()
    }

    /// Total value transmitted so far (the model's objective).
    pub fn transmitted_value(&self) -> u64 {
        self.switch.counters().transmitted_value()
    }
}

/// Names of all bundled value-model policies, in presentation order.
pub const VALUE_POLICY_NAMES: &[&str] =
    &["GREEDY", "NEST-V", "NHST-V", "LQD", "MVD", "MVD1", "MRD"];

/// Instantiates a bundled value-model policy by name (case-insensitive).
///
/// Returns `None` for unknown names. See [`VALUE_POLICY_NAMES`].
pub fn value_policy_by_name(name: &str) -> Option<Box<dyn ValuePolicy>> {
    match name.to_ascii_uppercase().as_str() {
        "GREEDY" => Some(Box::new(GreedyValue::new())),
        "NEST-V" | "NEST" => Some(Box::new(NestValue::new())),
        "NHST-V" | "NHST" => Some(Box::new(NhstValue::new())),
        "LQD" => Some(Box::new(LqdValue::new())),
        "MVD" => Some(Box::new(Mvd::new())),
        "MVD1" => Some(Box::new(Mvd::sparing_singletons())),
        "MRD" => Some(Box::new(Mrd::new())),
        // Extension beyond the paper's roster (see DESIGN.md):
        "MRD-STRICT" => Some(Box::new(MrdStrict::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_switch::{PortId, Value, ValueSwitchConfig};

    #[test]
    fn registry_knows_every_listed_policy() {
        for name in VALUE_POLICY_NAMES {
            let p = value_policy_by_name(name).unwrap_or_else(|| panic!("registry missing {name}"));
            assert_eq!(p.name(), *name);
        }
    }

    #[test]
    fn registry_rejects_unknown() {
        assert!(value_policy_by_name("LWD").is_none()); // work-model policy
    }

    #[test]
    fn runner_counts_value() {
        let cfg = ValueSwitchConfig::new(4, 2).unwrap();
        let mut r = ValueRunner::new(cfg, GreedyValue::new(), 1);
        r.arrival(ValuePacket::new(PortId::new(0), Value::new(5)))
            .unwrap();
        r.arrival(ValuePacket::new(PortId::new(1), Value::new(3)))
            .unwrap();
        let report = r.transmission();
        assert_eq!(report.value, 8);
        assert_eq!(r.transmitted_value(), 8);
        r.switch().check_invariants().unwrap();
    }

    #[test]
    fn boxed_policy_delegates() {
        let boxed: Box<dyn ValuePolicy> = Box::new(Mrd::new());
        let cfg = ValueSwitchConfig::new(4, 2).unwrap();
        let mut r = ValueRunner::new(cfg, boxed, 1);
        assert_eq!(r.policy().name(), "MRD");
        r.arrival(ValuePacket::new(PortId::new(0), Value::new(1)))
            .unwrap();
        assert_eq!(r.switch().occupancy(), 1);
    }
}
