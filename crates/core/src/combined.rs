//! Policies and references for the **combined model** (extension): per-port
//! work requirements (Section III) *and* per-packet values (Section IV),
//! objective = total transmitted value.
//!
//! This is the direction the paper's conclusion points at; nothing here is
//! claimed to carry a competitive bound. The centerpiece is
//! [`Wvd`] (Work-per-Value-Drop), which evicts from the queue maximizing
//! `W_j / a_j` — outstanding work per unit of average value. It degenerates
//! to **LWD** when all values are equal (`a_j` constant) and to **MRD** when
//! all works are 1 (`W_j = |Q_j|`), unifying the paper's two headline
//! policies.

use std::cmp::Reverse;

use smbm_switch::{
    AdmitError, ArrivalOutcome, CombinedPacket, CombinedPhaseReport, CombinedSwitch, Counters,
    DropReason, PortId, RatioKey, Transmitted, Value, WorkSwitchConfig,
};

use crate::index::{apply_queue_changes, ScoreIndex, SelectMode};
use crate::Decision;

/// An online buffer-management policy for the combined model. Push-out
/// decisions evict the victim queue's minimal-value packet (virtual-add
/// semantics when the victim is the destination).
pub trait CombinedPolicy: std::fmt::Debug + Send {
    /// Short human-readable identifier.
    fn name(&self) -> &str;

    /// Decides the fate of `pkt` given the switch state.
    fn decide(&mut self, switch: &CombinedSwitch, pkt: CombinedPacket) -> Decision;

    /// Invoked on simulator flushouts.
    fn on_flush(&mut self) {}

    /// Whether the runner should report queue-change events (see
    /// [`CombinedPolicy::queues_changed`]) on a switch with `ports` ports.
    /// Defaults to `false` so scan-based policies pay nothing.
    fn wants_queue_events(&self, ports: usize) -> bool {
        let _ = ports;
        false
    }

    /// Notifies the policy that `port`'s queue changed since the last
    /// decision, so incremental indices (see [`crate::ScoreIndex`]) can
    /// refresh that port's score. Only called when
    /// [`CombinedPolicy::wants_queue_events`] returns `true`.
    fn queue_changed(&mut self, switch: &CombinedSwitch, port: PortId) {
        let _ = (switch, port);
    }

    /// Batch form of [`CombinedPolicy::queue_changed`]: one call per sync
    /// with every port that changed since the last decision, letting indexed
    /// policies rebuild in O(n) when most ports are dirty.
    fn queues_changed(&mut self, switch: &CombinedSwitch, ports: &[PortId]) {
        for &port in ports {
            self.queue_changed(switch, port);
        }
    }
}

impl<P: CombinedPolicy + ?Sized> CombinedPolicy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn decide(&mut self, switch: &CombinedSwitch, pkt: CombinedPacket) -> Decision {
        (**self).decide(switch, pkt)
    }

    fn on_flush(&mut self) {
        (**self).on_flush()
    }

    fn wants_queue_events(&self, ports: usize) -> bool {
        (**self).wants_queue_events(ports)
    }

    fn queue_changed(&mut self, switch: &CombinedSwitch, port: PortId) {
        (**self).queue_changed(switch, port)
    }

    fn queues_changed(&mut self, switch: &CombinedSwitch, ports: &[PortId]) {
        (**self).queues_changed(switch, ports)
    }
}

/// Binds a [`CombinedPolicy`] to a [`CombinedSwitch`] and a speedup.
#[derive(Debug)]
pub struct CombinedRunner<P> {
    switch: CombinedSwitch,
    policy: P,
    speedup: u32,
    dirty_scratch: Vec<PortId>,
}

impl<P: CombinedPolicy> CombinedRunner<P> {
    /// Creates a runner over a fresh switch.
    pub fn new(config: WorkSwitchConfig, policy: P, speedup: u32) -> Self {
        CombinedRunner {
            switch: CombinedSwitch::new(config),
            policy,
            speedup,
            dirty_scratch: Vec::new(),
        }
    }

    /// The underlying switch (read-only).
    pub fn switch(&self) -> &CombinedSwitch {
        &self.switch
    }

    /// The bound policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Presents one arriving packet and applies the policy's decision.
    ///
    /// # Errors
    ///
    /// Propagates [`AdmitError`] from inconsistent decisions.
    pub fn arrival(&mut self, pkt: CombinedPacket) -> Result<Decision, AdmitError> {
        // Sync incremental indices only when victim selection can run (full
        // buffer); see `WorkRunner::arrival`.
        if self.switch.is_full() && self.policy.wants_queue_events(self.switch.ports()) {
            self.switch.drain_dirty_into(&mut self.dirty_scratch);
            self.policy
                .queues_changed(&self.switch, &self.dirty_scratch);
        }
        let decision = self.policy.decide(&self.switch, pkt);
        match decision {
            Decision::Accept => self.switch.admit(pkt)?,
            Decision::Drop => self.switch.reject(pkt)?,
            Decision::PushOut(victim) => {
                self.switch.push_out_and_admit(victim, pkt)?;
            }
        }
        Ok(decision)
    }

    /// Runs the transmission phase.
    pub fn transmission(&mut self) -> CombinedPhaseReport {
        self.switch.transmit(self.speedup)
    }

    /// Like [`CombinedRunner::transmission`], appending per-packet
    /// completion details to `out`.
    pub fn transmission_into(&mut self, out: &mut Vec<Transmitted>) -> CombinedPhaseReport {
        self.switch.transmit_into(self.speedup, out)
    }

    /// Ends the slot.
    pub fn end_slot(&mut self) {
        self.switch.advance_slot();
    }

    /// Flushes the buffer and notifies the policy.
    pub fn flush(&mut self) -> u64 {
        self.policy.on_flush();
        self.switch.flush()
    }

    /// Total value transmitted so far.
    pub fn transmitted_value(&self) -> u64 {
        self.switch.counters().transmitted_value()
    }
}

// ---------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------

/// Greedy non-push-out baseline: accept while space remains.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyCombined {
    _priv: (),
}

impl GreedyCombined {
    /// Creates the policy.
    pub fn new() -> Self {
        GreedyCombined { _priv: () }
    }
}

impl CombinedPolicy for GreedyCombined {
    fn name(&self) -> &str {
        "GREEDY"
    }

    fn decide(&mut self, switch: &CombinedSwitch, _pkt: CombinedPacket) -> Decision {
        if switch.is_full() {
            Decision::Drop
        } else {
            Decision::Accept
        }
    }
}

/// LQD transplanted to the combined model: evict the minimal-value packet
/// of the longest queue (virtual add; ties prefer the smaller minimum
/// value, then the larger index).
#[derive(Debug, Clone, Copy, Default)]
pub struct LqdCombined {
    _priv: (),
}

impl LqdCombined {
    /// Creates the policy.
    pub fn new() -> Self {
        LqdCombined { _priv: () }
    }
}

impl CombinedPolicy for LqdCombined {
    fn name(&self) -> &str {
        "LQD"
    }

    fn decide(&mut self, switch: &CombinedSwitch, pkt: CombinedPacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        let mut best = PortId::new(0);
        let mut best_len = 0usize;
        let mut best_min = u64::MAX;
        let mut first = true;
        for (port, q) in switch.queues() {
            let own = port == pkt.port();
            let len = q.len() + usize::from(own);
            let min = {
                let resident = q.min_value().map_or(u64::MAX, Value::get);
                if own {
                    resident.min(pkt.value().get())
                } else {
                    resident
                }
            };
            let better = first || len > best_len || (len == best_len && min <= best_min);
            if better {
                best = port;
                best_len = len;
                best_min = min;
                first = false;
            }
        }
        Decision::PushOut(best)
    }
}

/// LWD transplanted to the combined model: evict the minimal-value packet
/// of the queue with the most outstanding work (virtual add; ties prefer
/// the larger per-packet requirement, then the larger index).
#[derive(Debug, Clone, Copy, Default)]
pub struct LwdCombined {
    _priv: (),
}

impl LwdCombined {
    /// Creates the policy.
    pub fn new() -> Self {
        LwdCombined { _priv: () }
    }
}

impl CombinedPolicy for LwdCombined {
    fn name(&self) -> &str {
        "LWD"
    }

    fn decide(&mut self, switch: &CombinedSwitch, pkt: CombinedPacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        let mut best = PortId::new(0);
        let mut best_key = (0u64, 0u64);
        let mut first = true;
        for (port, q) in switch.queues() {
            let own = port == pkt.port();
            let work = q.total_work() + if own { q.work().as_u64() } else { 0 };
            let key = (work, q.work().as_u64());
            if first || key >= best_key {
                best = port;
                best_key = key;
                first = false;
            }
        }
        Decision::PushOut(best)
    }
}

/// **WVD — Work-per-Value-Drop**, this reproduction's candidate policy for
/// the combined model: evict the minimal-value packet of the queue
/// maximizing `W_j / a_j` (outstanding work per unit of average value,
/// virtual add), computed exactly by cross-multiplication.
///
/// Degenerations (tested): unit values → LWD; unit works → MRD.
///
/// Victim selection is O(log n) by default, via a [`ScoreIndex`] over
/// `(W_j·|Q_j|/S_j, Reverse(min_j))`; [`Wvd::scan`] keeps the original O(n)
/// scan as the differential oracle.
#[derive(Debug, Clone, Default)]
pub struct Wvd {
    index: Option<ScoreIndex<(RatioKey, Reverse<u64>)>>,
    mode: SelectMode,
}

impl Wvd {
    /// Creates the policy. Victim selection picks index or scan automatically
    /// by port count.
    pub fn new() -> Self {
        Wvd {
            index: None,
            mode: SelectMode::Auto,
        }
    }

    /// Creates WVD with victim selection by full scan instead of the
    /// incremental index (differential-test oracle).
    pub fn scan() -> Self {
        Wvd {
            index: None,
            mode: SelectMode::Scan,
        }
    }

    /// Creates WVD with the incremental index forced on regardless of port
    /// count.
    pub fn indexed() -> Self {
        Wvd {
            index: None,
            mode: SelectMode::Indexed,
        }
    }

    /// `port`'s resident key, `None` for an empty queue (which does not
    /// participate in victim selection).
    fn port_key(switch: &CombinedSwitch, port: PortId) -> Option<(RatioKey, Reverse<u64>)> {
        let q = switch.queue(port);
        let len = q.len() as u128;
        if len == 0 {
            return None;
        }
        let num = q.total_work() as u128 * len;
        let sum = q.total_value() as u128;
        let min = q.min_value().map_or(u64::MAX, Value::get);
        Some((RatioKey::new(num, sum), Reverse(min)))
    }

    /// Indexed equivalent of [`Wvd::max_ratio_queue`].
    fn indexed_max_ratio(&mut self, switch: &CombinedSwitch, pkt: CombinedPacket) -> PortId {
        if self
            .index
            .as_ref()
            .is_none_or(|i| i.ports() != switch.ports())
        {
            let mut idx = ScoreIndex::new(switch.ports());
            idx.rebuild_with(|i| Self::port_key(switch, PortId::new(i)));
            self.index = Some(idx);
        }
        let q = switch.queue(pkt.port());
        let len = q.len() as u128 + 1;
        let work = (q.total_work() + q.work().as_u64()) as u128;
        let sum = q.total_value() as u128 + pkt.value().get() as u128;
        let min = q
            .min_value()
            .map_or(u64::MAX, Value::get)
            .min(pkt.value().get());
        let virtual_key = (RatioKey::new(work * len, sum), Reverse(min));
        self.index
            .as_ref()
            .expect("index built above")
            .max_with(pkt.port(), virtual_key)
    }

    /// The queue maximizing `W_j / a_j = W_j * len_j / sum_j` once `pkt` is
    /// virtually added; ties prefer the smaller minimum value, then the
    /// larger index.
    pub fn max_ratio_queue(switch: &CombinedSwitch, pkt: CombinedPacket) -> PortId {
        let mut best: Option<(PortId, u128, u128, u64)> = None;
        for (port, q) in switch.queues() {
            let own = port == pkt.port();
            let len = q.len() as u128 + u128::from(own);
            if len == 0 {
                continue;
            }
            let work = (q.total_work() + if own { q.work().as_u64() } else { 0 }) as u128;
            let sum = q.total_value() as u128 + if own { pkt.value().get() as u128 } else { 0 };
            let num = work * len; // ratio = num / sum
            let min = {
                let resident = q.min_value().map_or(u64::MAX, Value::get);
                if own {
                    resident.min(pkt.value().get())
                } else {
                    resident
                }
            };
            let better = match &best {
                None => true,
                Some((_, bnum, bsum, bmin)) => {
                    let lhs = num * bsum;
                    let rhs = bnum * sum;
                    lhs > rhs || (lhs == rhs && min <= *bmin)
                }
            };
            if better {
                best = Some((port, num, sum, min));
            }
        }
        best.map(|(p, _, _, _)| p)
            .expect("destination queue non-empty after virtual add")
    }
}

impl CombinedPolicy for Wvd {
    fn name(&self) -> &str {
        "WVD"
    }

    fn decide(&mut self, switch: &CombinedSwitch, pkt: CombinedPacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        let victim = if self.mode.use_index(switch.ports()) {
            self.indexed_max_ratio(switch, pkt)
        } else {
            Self::max_ratio_queue(switch, pkt)
        };
        Decision::PushOut(victim)
    }

    fn wants_queue_events(&self, ports: usize) -> bool {
        self.mode.use_index(ports)
    }

    fn queue_changed(&mut self, switch: &CombinedSwitch, port: PortId) {
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                idx.set(port, Self::port_key(switch, port));
            }
        }
    }

    fn queues_changed(&mut self, switch: &CombinedSwitch, ports: &[PortId]) {
        if let Some(idx) = self.index.as_mut() {
            if idx.ports() == switch.ports() {
                apply_queue_changes(idx, ports, |i| Self::port_key(switch, PortId::new(i)));
            }
        }
    }
}

/// Density-greedy analogue of MVD: evict the globally least *dense* packet
/// (value per cycle, using the queue's minimum value and its per-packet
/// work) when the arrival is strictly denser; otherwise drop.
#[derive(Debug, Clone, Copy, Default)]
pub struct DensityMvd {
    _priv: (),
}

impl DensityMvd {
    /// Creates the policy.
    pub fn new() -> Self {
        DensityMvd { _priv: () }
    }
}

impl CombinedPolicy for DensityMvd {
    fn name(&self) -> &str {
        "MVD-D"
    }

    fn decide(&mut self, switch: &CombinedSwitch, pkt: CombinedPacket) -> Decision {
        if !switch.is_full() {
            return Decision::Accept;
        }
        // Find the queue whose minimum-value packet has the lowest density
        // v/w (exact comparison by cross-multiplication); ties prefer the
        // longer queue.
        let mut victim: Option<(PortId, u64, u64, usize)> = None; // (port, v, w, len)
        for (port, q) in switch.queues() {
            let Some(v) = q.min_value() else { continue };
            let v = v.get();
            let w = q.work().as_u64();
            let better = match victim {
                None => true,
                Some((_, bv, bw, blen)) => {
                    let lhs = v as u128 * bw as u128;
                    let rhs = bv as u128 * w as u128;
                    lhs < rhs || (lhs == rhs && q.len() > blen)
                }
            };
            if better {
                victim = Some((port, v, w, q.len()));
            }
        }
        let (port, v, w, _) = victim.expect("full buffer has non-empty queue");
        // Arrival density vs victim density, exactly.
        let arrival_denser =
            (pkt.value().get() as u128) * (w as u128) > (v as u128) * (pkt.work().as_u64() as u128);
        if arrival_denser {
            Decision::PushOut(port)
        } else {
            Decision::Drop
        }
    }
}

/// Names of the bundled combined-model policies.
pub const COMBINED_POLICY_NAMES: &[&str] = &["GREEDY", "LQD", "LWD", "MVD-D", "WVD"];

/// Instantiates a combined-model policy by name (case-insensitive).
pub fn combined_policy_by_name(name: &str) -> Option<Box<dyn CombinedPolicy>> {
    match name.to_ascii_uppercase().as_str() {
        "GREEDY" => Some(Box::new(GreedyCombined::new())),
        "LQD" => Some(Box::new(LqdCombined::new())),
        "LWD" => Some(Box::new(LwdCombined::new())),
        "MVD-D" => Some(Box::new(DensityMvd::new())),
        "WVD" => Some(Box::new(Wvd::new())),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// OPT surrogate
// ---------------------------------------------------------------------

/// Single-pool density-greedy OPT surrogate for the combined model: the
/// whole buffer is one pool; each slot, `cores` distinct packets with the
/// highest value-per-remaining-cycle receive one cycle; admission evicts
/// the least dense packet for a strictly denser arrival.
#[derive(Debug, Clone)]
pub struct CombinedPqOpt {
    buffer: usize,
    cores: u32,
    /// (value, residual cycles) per resident packet.
    packets: Vec<(u64, u32)>,
    counters: Counters,
}

impl CombinedPqOpt {
    /// Creates the surrogate.
    ///
    /// # Panics
    ///
    /// Panics if `buffer` or `cores` is zero.
    pub fn new(buffer: usize, cores: u32) -> Self {
        assert!(buffer > 0, "buffer must be positive");
        assert!(cores > 0, "core count must be positive");
        CombinedPqOpt {
            buffer,
            cores,
            packets: Vec::new(),
            counters: Counters::new(),
        }
    }

    /// Core count.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Packets currently resident.
    pub fn occupancy(&self) -> usize {
        self.packets.len()
    }

    /// Lifetime accounting.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Total value transmitted.
    pub fn transmitted_value(&self) -> u64 {
        self.counters.transmitted_value()
    }

    /// Offers one packet, reporting its fate. The single shared queue has
    /// no per-port structure, so push-outs name port 0.
    pub fn offer(&mut self, pkt: CombinedPacket) -> ArrivalOutcome {
        let v = pkt.value().get();
        let w = pkt.work().cycles();
        self.counters.record_arrival(v);
        if self.packets.len() < self.buffer {
            self.counters.record_admission(v);
            self.packets.push((v, w));
            return ArrivalOutcome::Admitted;
        }
        // Least dense resident: min v/residual.
        let (idx, &(rv, rr)) = self
            .packets
            .iter()
            .enumerate()
            .min_by(|&(_, &(av, ar)), &(_, &(bv, br))| {
                (av as u128 * br as u128).cmp(&(bv as u128 * ar as u128))
            })
            .expect("full buffer non-empty");
        if (v as u128) * (rr as u128) > (rv as u128) * (w as u128) {
            self.packets.swap_remove(idx);
            self.counters.record_push_out(rv);
            self.counters.record_admission(v);
            self.packets.push((v, w));
            ArrivalOutcome::PushedOut(PortId::new(0))
        } else {
            self.counters.record_drop(v);
            ArrivalOutcome::Dropped(DropReason::BufferFull)
        }
    }

    /// Runs one transmission phase: the `cores` densest distinct packets
    /// each receive a cycle. Returns the value transmitted.
    pub fn transmission(&mut self) -> u64 {
        let served = (self.cores as usize).min(self.packets.len());
        if served == 0 {
            return 0;
        }
        // Partial-select the `served` densest packets by v/residual.
        let mut order: Vec<usize> = (0..self.packets.len()).collect();
        order.sort_by(|&a, &b| {
            let (av, ar) = self.packets[a];
            let (bv, br) = self.packets[b];
            (bv as u128 * ar as u128).cmp(&(av as u128 * br as u128))
        });
        let mut sent = 0;
        let mut remove: Vec<usize> = Vec::new();
        for &i in order.iter().take(served) {
            self.counters.record_cycles(1);
            self.packets[i].1 -= 1;
            if self.packets[i].1 == 0 {
                sent += self.packets[i].0;
                self.counters.record_transmission(self.packets[i].0, 0);
                remove.push(i);
            }
        }
        remove.sort_unstable_by(|a, b| b.cmp(a));
        for i in remove {
            self.packets.swap_remove(i);
        }
        sent
    }

    /// Discards every resident packet, returning how many were discarded.
    pub fn flush(&mut self) -> u64 {
        let n = self.packets.len() as u64;
        let value: u64 = self.packets.iter().map(|&(v, _)| v).sum();
        self.packets.clear();
        self.counters.record_flush(n, value);
        n
    }

    /// Verifies occupancy and conservation.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.packets.len() > self.buffer {
            return Err("occupancy exceeds buffer".into());
        }
        if self.packets.iter().any(|&(_, r)| r == 0) {
            return Err("zero-residual packet resident".into());
        }
        self.counters
            .check_conservation(self.packets.len())
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_switch::Value;

    fn cfg(k: u32, b: usize) -> WorkSwitchConfig {
        WorkSwitchConfig::contiguous(k, b).unwrap()
    }

    fn pkt(config: &WorkSwitchConfig, port: usize, v: u64) -> CombinedPacket {
        let p = PortId::new(port);
        CombinedPacket::new(p, config.work(p), Value::new(v))
    }

    #[test]
    fn registry_resolves_all() {
        for name in COMBINED_POLICY_NAMES {
            assert_eq!(combined_policy_by_name(name).unwrap().name(), *name);
        }
        assert!(combined_policy_by_name("nope").is_none());
    }

    #[test]
    fn greedy_accepts_until_full() {
        let c = cfg(2, 2);
        let mut r = CombinedRunner::new(c.clone(), GreedyCombined::new(), 1);
        assert!(r.arrival(pkt(&c, 0, 1)).unwrap().admits());
        assert!(r.arrival(pkt(&c, 1, 1)).unwrap().admits());
        assert_eq!(r.arrival(pkt(&c, 0, 99)).unwrap(), Decision::Drop);
    }

    #[test]
    fn wvd_prefers_heavy_cheap_queues() {
        // Queue 1 (w=2): two value-1 packets: W=4, a=1, ratio 4.
        // Queue 0 (w=1): two value-9 packets: W=2, a=9, ratio 2/9.
        let c = cfg(2, 4);
        let mut r = CombinedRunner::new(c.clone(), Wvd::new(), 1);
        r.arrival(pkt(&c, 1, 1)).unwrap();
        r.arrival(pkt(&c, 1, 1)).unwrap();
        r.arrival(pkt(&c, 0, 9)).unwrap();
        r.arrival(pkt(&c, 0, 9)).unwrap();
        let d = r.arrival(pkt(&c, 0, 5)).unwrap();
        assert_eq!(d, Decision::PushOut(PortId::new(1)));
        r.switch().check_invariants().unwrap();
    }

    #[test]
    fn wvd_degenerates_to_lwd_on_unit_values() {
        let c = cfg(3, 6);
        let mut wvd = CombinedRunner::new(c.clone(), Wvd::new(), 1);
        let mut lwd = CombinedRunner::new(c.clone(), LwdCombined::new(), 1);
        let pattern = [0, 2, 2, 1, 0, 0, 2, 1, 1, 0, 2, 2, 0, 1];
        for &p in &pattern {
            let a = wvd.arrival(pkt(&c, p, 1)).unwrap();
            let b = lwd.arrival(pkt(&c, p, 1)).unwrap();
            assert_eq!(a.admits(), b.admits(), "diverged at {p}");
        }
        for p in 0..3 {
            assert_eq!(
                wvd.switch().queue(PortId::new(p)).len(),
                lwd.switch().queue(PortId::new(p)).len()
            );
        }
    }

    #[test]
    fn wvd_degenerates_to_mrd_like_balance_on_unit_work() {
        // All works 1, value == port burst: WVD should reach the |Q_v| ∝ v
        // MRD fixed point (ratio = len^2/sum when W = len).
        let c = WorkSwitchConfig::homogeneous(4, 24).unwrap();
        let values = [1u64, 2, 3, 6];
        let mut r = CombinedRunner::new(c.clone(), Wvd::new(), 1);
        for _ in 0..24 {
            for (port, &v) in values.iter().enumerate() {
                let p = PortId::new(port);
                let _ = r
                    .arrival(CombinedPacket::new(p, c.work(p), Value::new(v)))
                    .unwrap();
            }
        }
        let lens: Vec<usize> = (0..4)
            .map(|p| r.switch().queue(PortId::new(p)).len())
            .collect();
        assert_eq!(lens.iter().sum::<usize>(), 24);
        for (i, (&got, want)) in lens.iter().zip([2usize, 4, 6, 12]).enumerate() {
            assert!(
                got.abs_diff(want) <= 2,
                "queue {i}: {got} vs ~{want} ({lens:?})"
            );
        }
    }

    #[test]
    fn density_mvd_keeps_dense_packets() {
        let c = cfg(2, 2);
        let mut r = CombinedRunner::new(c.clone(), DensityMvd::new(), 1);
        r.arrival(pkt(&c, 1, 2)).unwrap(); // density 1 (w=2)
        r.arrival(pkt(&c, 0, 1)).unwrap(); // density 1 (w=1)
                                           // Arrival with density 3 (w=1, v=3) evicts a density-1 packet.
        let d = r.arrival(pkt(&c, 0, 3)).unwrap();
        assert!(matches!(d, Decision::PushOut(_)));
        // Arrival with density 0.5 (w=2, v=1) is dropped.
        assert_eq!(r.arrival(pkt(&c, 1, 1)).unwrap(), Decision::Drop);
    }

    #[test]
    fn opt_prefers_dense_packets() {
        let config = cfg(2, 2);
        let mut opt = CombinedPqOpt::new(2, 1);
        opt.offer(pkt(&config, 1, 2)); // density 1
        opt.offer(pkt(&config, 1, 2)); // density 1
        opt.offer(pkt(&config, 0, 9)); // density 9: evicts one
        assert_eq!(opt.occupancy(), 2);
        // Densest first: the 9 completes in one cycle.
        assert_eq!(opt.transmission(), 9);
        opt.check_invariants().unwrap();
    }

    #[test]
    fn opt_serves_distinct_packets_per_slot() {
        let config = cfg(2, 4);
        let mut opt = CombinedPqOpt::new(4, 2);
        opt.offer(pkt(&config, 1, 8)); // w=2
        opt.offer(pkt(&config, 1, 6)); // w=2
                                       // Two cores: both 2-cycle packets advance; none complete yet.
        assert_eq!(opt.transmission(), 0);
        assert_eq!(opt.transmission(), 14);
        opt.check_invariants().unwrap();
    }

    #[test]
    fn runner_lifecycle_and_flush() {
        let c = cfg(2, 4);
        let mut r = CombinedRunner::new(c.clone(), LqdCombined::new(), 1);
        r.arrival(pkt(&c, 0, 5)).unwrap();
        assert_eq!(r.transmission().value, 5);
        r.end_slot();
        r.arrival(pkt(&c, 1, 3)).unwrap();
        assert_eq!(r.flush(), 1);
        assert_eq!(r.transmitted_value(), 5);
        r.switch().check_invariants().unwrap();
    }
}
