//! The *single-queue* architecture of the paper's Fig. 1 (top): one shared
//! queue feeding `m` identical cores, each able to process any traffic type.
//!
//! The introduction motivates the shared-memory switch against this design:
//! with priority-queue processing (smallest work first) a greedy push-out
//! policy is throughput-optimal [Keslassy et al.], but PQ order is costly to
//! implement and starves heavy packets; with plain FIFO order the
//! competitive ratio degrades to `Ω(log k)` (and greedy non-push-out
//! admission to `k`). This module implements the FIFO variant so the
//! architectural comparison can be *run* (see the `architectures` bench
//! binary); the PQ variant is [`crate::WorkPqOpt`].

use std::collections::VecDeque;

use smbm_switch::{
    AdmitError, ArrivalOutcome, Counters, DropReason, PortId, Slot, Work, WorkPacket,
};

use crate::WorkSystem;

/// Admission behaviour of the single FIFO queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FifoAdmission {
    /// Accept while there is space, drop otherwise (the `k`-competitive
    /// greedy baseline).
    #[default]
    Greedy,
    /// When full, push out the *largest-residual* packet if the arrival is
    /// smaller (the natural push-out repair, still FIFO in service order).
    PushOutLargest,
}

/// A single shared FIFO queue with buffer `B` served by `m` run-to-completion
/// cores: each slot, the first `m` resident packets receive one processing
/// cycle each; completed packets leave and the window slides forward.
///
/// Implements [`WorkSystem`], so it can be driven by the same engine and
/// traces as the shared-memory switches.
///
/// ```
/// use smbm_core::{SingleFifoQueue, FifoAdmission, WorkSystem};
/// use smbm_switch::{PortId, Work, WorkPacket};
///
/// let mut q = SingleFifoQueue::new(4, 2, FifoAdmission::Greedy);
/// q.offer(WorkPacket::new(PortId::new(0), Work::new(1)))?;
/// q.offer(WorkPacket::new(PortId::new(0), Work::new(3)))?;
/// assert_eq!(q.transmission_phase(), 1); // the 1-cycle packet finishes
/// # Ok::<(), smbm_switch::AdmitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SingleFifoQueue {
    buffer: usize,
    cores: u32,
    admission: FifoAdmission,
    /// Residual cycles per resident packet with its arrival slot, in FIFO
    /// order.
    residuals: VecDeque<(u32, Slot)>,
    counters: Counters,
    now: Slot,
}

impl SingleFifoQueue {
    /// Creates an empty queue with the given capacity, core count, and
    /// admission rule.
    ///
    /// # Panics
    ///
    /// Panics if `buffer` or `cores` is zero.
    pub fn new(buffer: usize, cores: u32, admission: FifoAdmission) -> Self {
        assert!(buffer > 0, "buffer must be positive");
        assert!(cores > 0, "core count must be positive");
        SingleFifoQueue {
            buffer,
            cores,
            admission,
            residuals: VecDeque::new(),
            counters: Counters::new(),
            now: Slot::ZERO,
        }
    }

    /// Buffer capacity.
    pub fn buffer(&self) -> usize {
        self.buffer
    }

    /// Core count.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// The admission rule.
    pub fn admission(&self) -> FifoAdmission {
        self.admission
    }

    /// Lifetime accounting.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Offers one packet by its work requirement, reporting its fate. The
    /// single shared queue has no per-port structure, so push-outs name
    /// port 0.
    pub fn offer_work(&mut self, work: Work) -> ArrivalOutcome {
        self.counters.record_arrival(1);
        if self.residuals.len() < self.buffer {
            self.counters.record_admission(1);
            self.residuals.push_back((work.cycles(), self.now));
            return ArrivalOutcome::Admitted;
        }
        match self.admission {
            FifoAdmission::Greedy => {
                self.counters.record_drop(1);
                ArrivalOutcome::Dropped(DropReason::BufferFull)
            }
            FifoAdmission::PushOutLargest => {
                let (idx, &(max_res, _)) = self
                    .residuals
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &(r, _))| r)
                    .expect("full buffer is non-empty");
                if work.cycles() < max_res {
                    self.residuals.remove(idx);
                    self.counters.record_push_out(1);
                    self.counters.record_admission(1);
                    self.residuals.push_back((work.cycles(), self.now));
                    ArrivalOutcome::PushedOut(PortId::new(0))
                } else {
                    self.counters.record_drop(1);
                    ArrivalOutcome::Dropped(DropReason::BufferFull)
                }
            }
        }
    }

    /// Verifies occupancy and conservation; test oracle.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.residuals.len() > self.buffer {
            return Err(format!(
                "occupancy {} exceeds buffer {}",
                self.residuals.len(),
                self.buffer
            ));
        }
        if self.residuals.iter().any(|&(r, _)| r == 0) {
            return Err("zero-residual packet left in buffer".into());
        }
        self.counters
            .check_conservation(self.residuals.len())
            .map_err(|e| e.to_string())
    }
}

impl WorkSystem for SingleFifoQueue {
    fn label(&self) -> String {
        match self.admission {
            FifoAdmission::Greedy => format!("1Q-FIFO(greedy,{}cores)", self.cores),
            FifoAdmission::PushOutLargest => format!("1Q-FIFO(pushout,{}cores)", self.cores),
        }
    }

    fn offer(&mut self, pkt: WorkPacket) -> Result<ArrivalOutcome, AdmitError> {
        Ok(self.offer_work(pkt.work()))
    }

    fn transmission_phase(&mut self) -> u64 {
        // The first `cores` packets each receive one cycle, run to
        // completion: no overtaking in dispatch order, but shorter packets
        // deeper in the service window may finish earlier.
        let window = (self.cores as usize).min(self.residuals.len());
        for i in 0..window {
            self.residuals[i].0 -= 1;
            self.counters.record_cycles(1);
        }
        let mut completed = 0;
        let mut i = 0;
        while i < self.residuals.len().min(window) {
            if self.residuals[i].0 == 0 {
                let (_, arrived) = self.residuals.remove(i).expect("index in range");
                self.counters
                    .record_transmission(1, self.now.since(arrived));
                completed += 1;
                // Window shrinks with the removal; do not advance i.
            } else {
                i += 1;
            }
        }
        completed
    }

    fn end_slot(&mut self) {
        self.now = self.now.next();
    }

    fn flush(&mut self) -> u64 {
        let n = self.residuals.len() as u64;
        self.residuals.clear();
        self.counters.record_flush(n, n);
        n
    }

    fn transmitted(&self) -> u64 {
        self.counters.transmitted()
    }

    fn occupancy(&self) -> usize {
        self.residuals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_switch::PortId;

    fn pkt(w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(0), Work::new(w))
    }

    #[test]
    fn greedy_drops_when_full() {
        let mut q = SingleFifoQueue::new(2, 1, FifoAdmission::Greedy);
        q.offer(pkt(5)).unwrap();
        q.offer(pkt(5)).unwrap();
        q.offer(pkt(1)).unwrap();
        assert_eq!(q.counters().dropped(), 1);
        assert_eq!(q.occupancy(), 2);
        q.check_invariants().unwrap();
    }

    #[test]
    fn push_out_variant_replaces_largest() {
        let mut q = SingleFifoQueue::new(2, 1, FifoAdmission::PushOutLargest);
        q.offer(pkt(5)).unwrap();
        q.offer(pkt(3)).unwrap();
        q.offer(pkt(1)).unwrap(); // replaces the 5
        assert_eq!(q.counters().pushed_out(), 1);
        assert_eq!(q.occupancy(), 2);
        // Service order is still FIFO: the 3 (now first) is served first.
        assert_eq!(q.transmission_phase(), 0);
        q.end_slot();
        assert_eq!(q.transmission_phase(), 0);
        q.end_slot();
        assert_eq!(q.transmission_phase(), 1); // 3 done after 3 cycles
        q.check_invariants().unwrap();
    }

    #[test]
    fn fifo_window_serves_first_m_packets() {
        let mut q = SingleFifoQueue::new(8, 2, FifoAdmission::Greedy);
        q.offer(pkt(3)).unwrap();
        q.offer(pkt(1)).unwrap();
        q.offer(pkt(1)).unwrap();
        // Cores serve the 3 and the first 1; the second 1 waits.
        assert_eq!(q.transmission_phase(), 1);
        q.end_slot();
        // Now window = {3 (res 2), second 1}.
        assert_eq!(q.transmission_phase(), 1);
        q.end_slot();
        assert_eq!(q.transmission_phase(), 1); // the 3 finishes
        assert_eq!(q.occupancy(), 0);
        q.check_invariants().unwrap();
    }

    #[test]
    fn head_of_line_blocking_is_real() {
        // The FIFO pathology the paper cites: one heavy head packet blocks
        // cheap traffic behind it when cores are scarce.
        let mut q = SingleFifoQueue::new(8, 1, FifoAdmission::Greedy);
        q.offer(pkt(10)).unwrap();
        for _ in 0..5 {
            q.offer(pkt(1)).unwrap();
        }
        let mut slots_to_first = 0;
        while q.transmitted() == 0 {
            q.transmission_phase();
            q.end_slot();
            slots_to_first += 1;
            assert!(slots_to_first <= 10);
        }
        assert_eq!(slots_to_first, 10, "heavy head must block the line");
    }

    #[test]
    fn latency_accounting() {
        let mut q = SingleFifoQueue::new(4, 1, FifoAdmission::Greedy);
        q.offer(pkt(1)).unwrap();
        q.end_slot();
        q.end_slot();
        q.transmission_phase();
        assert_eq!(q.counters().max_latency(), 2);
    }

    #[test]
    fn flush_and_conservation() {
        let mut q = SingleFifoQueue::new(4, 2, FifoAdmission::Greedy);
        for w in [1, 2, 3] {
            q.offer(pkt(w)).unwrap();
        }
        q.transmission_phase();
        WorkSystem::flush(&mut q);
        assert_eq!(q.occupancy(), 0);
        q.check_invariants().unwrap();
    }

    #[test]
    fn labels_distinguish_variants() {
        assert_eq!(
            SingleFifoQueue::new(2, 3, FifoAdmission::Greedy).label(),
            "1Q-FIFO(greedy,3cores)"
        );
        assert_eq!(
            SingleFifoQueue::new(2, 3, FifoAdmission::PushOutLargest).label(),
            "1Q-FIFO(pushout,3cores)"
        );
    }

    #[test]
    #[should_panic(expected = "core count must be positive")]
    fn zero_cores_rejected() {
        let _ = SingleFifoQueue::new(2, 0, FifoAdmission::Greedy);
    }
}
