//! # smbm-core
//!
//! Buffer-management policies and optimal references for shared-memory
//! switches, reproducing *"Shared Memory Buffer Management for Heterogeneous
//! Packet Processing"* (Eugster, Kogan, Nikolenko, Sirotkin — ICDCS 2014).
//!
//! ## Heterogeneous processing (Section III)
//!
//! Packets carry per-port work requirements; throughput is the number of
//! transmitted packets. Policies, with their proven competitive bounds:
//!
//! | Policy | Type | Lower bound | Upper bound |
//! |---|---|---|---|
//! | [`Nhst`] | non-push-out, static | `kZ` (Thm 1) | `kZ + o(kZ)` |
//! | [`Nest`] | non-push-out, static | `n` (Thm 2)  | `n + o(n)` |
//! | [`Nhdt`] | non-push-out, dynamic | `(1/2)sqrt(k ln k)` (Thm 3) | — |
//! | [`Lqd`]  | push-out | `sqrt(k)` (Thm 4) | — |
//! | [`Bpd`]  | push-out | `H_k` (Thm 5) | — |
//! | [`Lwd`]  | push-out | `4/3 - 6/B` (Thm 6), `sqrt 2` uniform | **2** (Thm 7) |
//!
//! ## Heterogeneous values (Section IV)
//!
//! Unit-work packets carry values; throughput is total transmitted value.
//!
//! | Policy | Lower bound |
//! |---|---|
//! | [`GreedyValue`] | `k` |
//! | [`LqdValue`] | `∛k` (Thm 9) |
//! | [`Mvd`] | `(min{k,B}-1)/2` (Thm 10) |
//! | [`Mrd`] | `4/3` value==port (Thm 11), `sqrt 2` unit values; conjectured `O(1)` |
//!
//! ## Optimal references
//!
//! * [`WorkPqOpt`] / [`ValuePqOpt`] — the paper's simulation yardstick: a
//!   single priority queue over the whole buffer with `n * C` cores.
//! * [`exact_work_opt`] / [`exact_value_opt`] — true clairvoyant optimum on
//!   tiny instances by memoized search, used by the test-suite to verify
//!   Theorem 7's `OPT <= 2 * LWD` exactly.
//!
//! ## Example
//!
//! ```
//! use smbm_core::{Decision, Lwd, WorkRunner};
//! use smbm_switch::{PortId, WorkSwitchConfig};
//!
//! let cfg = WorkSwitchConfig::contiguous(4, 8)?; // ports require 1..=4 cycles
//! let mut runner = WorkRunner::new(cfg, Lwd::new(), 1);
//! for _ in 0..10 {
//!     runner.arrival_to(PortId::new(3))?; // LWD admits while space remains
//! }
//! assert_eq!(runner.switch().occupancy(), 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod combined;
mod decision;
mod index;
mod opt {
    pub mod exact;
    pub mod single_pq;
}
mod ratio;
mod singleq;
mod system;
mod value;
mod work;

pub use combined::{
    combined_policy_by_name, CombinedPolicy, CombinedPqOpt, CombinedRunner, DensityMvd,
    GreedyCombined, LqdCombined, LwdCombined, Wvd, COMBINED_POLICY_NAMES,
};
pub use decision::Decision;
pub use index::ScoreIndex;
pub use opt::exact::{exact_value_opt, exact_work_opt, TooLargeError, MAX_EXACT_ARRIVALS};
pub use opt::single_pq::{ValuePqOpt, WorkPqOpt};
pub use ratio::CompetitiveRatio;
pub use singleq::{FifoAdmission, SingleFifoQueue};
pub use system::{CombinedSystem, ValueSystem, WorkSystem};
pub use value::{
    value_policy_by_name, CappedValue, GreedyValue, LqdValue, Mrd, MrdStrict, Mvd, NestValue,
    NhstValue, ValuePolicy, ValueRunner, VALUE_POLICY_NAMES,
};
pub use work::{
    harmonic, work_policy_by_name, AlphaWd, Bpd, CappedWork, GreedyWork, Lqd, Lwd, LwdTieBreak,
    Nest, Nhdt, NhdtW, Nhst, WorkPolicy, WorkRunner, WORK_POLICY_NAMES,
};
