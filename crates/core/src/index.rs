//! Incremental argmax index over per-port policy scores.
//!
//! Every push-out policy in this crate selects a victim queue as the
//! lexicographic maximum of `(score, tie, port)` over all ports — the scan
//! loops all use `>=`-style updates, so the later port wins exact ties.
//! [`ScoreIndex`] maintains that maximum incrementally: the switch reports
//! which queues changed after each event (see `ValueSwitch::drain_dirty_into`
//! and friends), the policy recomputes just those ports' keys, and victim
//! selection becomes an O(log n) tournament-tree query instead of an O(n)
//! scan.
//!
//! The structure is a flat complete binary tree (`2m` slots for `m =
//! ports.next_power_of_two()`): leaves hold `Option<(key, port)>`, internal
//! nodes the maximum of their children. `Option`'s derived ordering makes
//! absent ports (`None`) lose to every present key, and including the port
//! number in the tuple resolves ties toward the larger index for free —
//! exactly the scans' semantics. Updates rewrite one root-to-leaf path
//! (~log₂ n small array writes, no allocation); queries read the root or walk
//! one sibling path, so even the per-slot storm of queue-change events after
//! a transmission phase stays cheap.
//!
//! The scan loops are kept as `scan()` constructors on each adopting policy
//! and serve as the differential-test oracle (`tests/slab_differential.rs`).

use smbm_switch::PortId;

/// Port count below which the scan beats the index: updating the tree on
/// every queue-change event costs more than an 8- or 16-entry linear scan
/// whose whole working set is two cache lines. Registry-default ("auto")
/// policies only maintain an index at or above this size.
pub(crate) const INDEX_MIN_PORTS: usize = 32;

/// Victim-selection mode of a policy that supports both the incremental
/// [`ScoreIndex`] and its original O(n) scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum SelectMode {
    /// Index on switches with at least [`INDEX_MIN_PORTS`] ports, scan below
    /// (the registry default).
    #[default]
    Auto,
    /// Always maintain and use the index (differential tests, benches).
    Indexed,
    /// Always scan (the differential-test oracle).
    Scan,
}

impl SelectMode {
    /// Whether a switch with `ports` ports should use the index.
    pub(crate) fn use_index(self, ports: usize) -> bool {
        match self {
            SelectMode::Auto => ports >= INDEX_MIN_PORTS,
            SelectMode::Indexed => true,
            SelectMode::Scan => false,
        }
    }
}

/// Applies a batch of queue-change events to `idx`: point updates for small
/// batches, one bottom-up [`ScoreIndex::rebuild_with`] when at least half the
/// ports changed (the post-transmission storm in a congested switch).
pub(crate) fn apply_queue_changes<K: Ord + Copy>(
    idx: &mut ScoreIndex<K>,
    changed: &[PortId],
    mut key: impl FnMut(usize) -> Option<K>,
) {
    if changed.len() * 2 >= idx.ports() {
        idx.rebuild_with(key);
    } else {
        for &p in changed {
            idx.set(p, key(p.index()));
        }
    }
}

/// An incrementally-maintained argmax over per-port keys.
///
/// `K` packs a policy's `(score, tie)` pair into one [`Ord`] value. The index
/// stores at most one key per port; ports without a key (empty queues, for
/// policies that skip them) are simply absent. [`max`](Self::max) and
/// [`max_with`](Self::max_with) resolve ties toward the larger port index,
/// mirroring the `>=` update rule of the replaced scan loops.
#[derive(Debug, Clone, Default)]
pub struct ScoreIndex<K: Ord + Copy> {
    /// 1-indexed tournament tree; `tree[1]` is the overall maximum and the
    /// leaf for port `i` lives at `leaf_base + i`.
    tree: Vec<Option<(K, u32)>>,
    leaf_base: usize,
    ports: usize,
}

impl<K: Ord + Copy> ScoreIndex<K> {
    /// Creates an empty index for `ports` ports.
    pub fn new(ports: usize) -> Self {
        let m = ports.next_power_of_two().max(1);
        ScoreIndex {
            tree: vec![None; 2 * m],
            leaf_base: m,
            ports,
        }
    }

    /// Number of ports the index was built for.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Sets (or clears, with `None`) the key of `port`.
    pub fn set(&mut self, port: PortId, key: Option<K>) {
        let i = port.index();
        let entry = key.map(|k| (k, i as u32));
        let mut node = self.leaf_base + i;
        if self.tree[node] == entry {
            return;
        }
        self.tree[node] = entry;
        while node > 1 {
            node /= 2;
            let merged = self.tree[2 * node].max(self.tree[2 * node + 1]);
            if self.tree[node] == merged {
                break;
            }
            self.tree[node] = merged;
        }
    }

    /// The current key of `port`, if any.
    pub fn key(&self, port: PortId) -> Option<K> {
        self.tree[self.leaf_base + port.index()].map(|(k, _)| k)
    }

    /// The port with the lexicographically maximal `(key, port)` pair.
    pub fn max(&self) -> Option<PortId> {
        self.tree[1].map(|(_, p)| PortId::new(p as usize))
    }

    /// The argmax when `port`'s key is virtually replaced by `virtual_key`
    /// (the "virtual add" of an arrival that has not been admitted yet).
    ///
    /// Equivalent to a scan in which `port` contributes `virtual_key` and
    /// every other port contributes its stored key; ports with no stored key
    /// do not participate. Ties go to the larger port index.
    pub fn max_with(&self, port: PortId, virtual_key: K) -> PortId {
        let own = port.index() as u32;
        // Walk leaf→root, folding in each sibling subtree: together the
        // siblings cover every port except `port`, whose contribution is the
        // virtual entry we start from.
        let mut best = Some((virtual_key, own));
        let mut node = self.leaf_base + port.index();
        while node > 1 {
            best = best.max(self.tree[node ^ 1]);
            node /= 2;
        }
        PortId::new(best.expect("virtual entry always present").1 as usize)
    }

    /// Rebuilds every leaf from `key` and recomputes the internal nodes
    /// bottom-up in one O(n) pass.
    ///
    /// After a transmission phase in a congested switch *every* non-empty
    /// queue has changed, so repairing the tree with `ports` root-to-leaf
    /// [`set`](Self::set) walks costs O(n log n) comparisons; one batch
    /// rebuild costs 2n. Policies use this from their batch
    /// `queues_changed` hook when most ports are dirty.
    pub fn rebuild_with<F: FnMut(usize) -> Option<K>>(&mut self, mut key: F) {
        for i in 0..self.ports {
            self.tree[self.leaf_base + i] = key(i).map(|k| (k, i as u32));
        }
        // Leaves past `ports` are never set and stay `None`.
        for node in (1..self.leaf_base).rev() {
            self.tree[node] = self.tree[2 * node].max(self.tree[2 * node + 1]);
        }
    }

    /// Removes every key.
    pub fn clear(&mut self) {
        self.tree.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_index_has_no_max() {
        let idx: ScoreIndex<u64> = ScoreIndex::new(4);
        assert_eq!(idx.max(), None);
        assert_eq!(idx.ports(), 4);
    }

    #[test]
    fn max_prefers_larger_key_then_larger_port() {
        let mut idx = ScoreIndex::new(4);
        idx.set(PortId::new(0), Some(5u64));
        idx.set(PortId::new(2), Some(7));
        idx.set(PortId::new(1), Some(7));
        assert_eq!(idx.max(), Some(PortId::new(2)));
        idx.set(PortId::new(2), None);
        assert_eq!(idx.max(), Some(PortId::new(1)));
        idx.set(PortId::new(1), Some(4));
        assert_eq!(idx.max(), Some(PortId::new(0)));
    }

    #[test]
    fn set_replaces_previous_key() {
        let mut idx = ScoreIndex::new(2);
        idx.set(PortId::new(0), Some(3u64));
        idx.set(PortId::new(0), Some(9));
        assert_eq!(idx.key(PortId::new(0)), Some(9));
        assert_eq!(idx.max(), Some(PortId::new(0)));
        idx.set(PortId::new(0), Some(1));
        assert_eq!(idx.max(), Some(PortId::new(0)));
        assert_eq!(idx.key(PortId::new(0)), Some(1));
    }

    #[test]
    fn max_with_virtual_self_entry() {
        let mut idx = ScoreIndex::new(4);
        idx.set(PortId::new(1), Some(5u64));
        idx.set(PortId::new(3), Some(8));
        // Virtual key loses to the resident maximum.
        assert_eq!(idx.max_with(PortId::new(0), 7), PortId::new(3));
        // Virtual key wins outright.
        assert_eq!(idx.max_with(PortId::new(0), 9), PortId::new(0));
        // Exact tie: the later port wins, in both directions.
        assert_eq!(idx.max_with(PortId::new(0), 8), PortId::new(3));
        assert_eq!(idx.max_with(PortId::new(3), 5), PortId::new(3));
        // The own port's resident entry is ignored in favour of the virtual
        // key, even when the resident entry is the global maximum.
        idx.set(PortId::new(3), Some(100));
        assert_eq!(idx.max_with(PortId::new(3), 1), PortId::new(1));
    }

    #[test]
    fn max_with_on_otherwise_empty_index_returns_own_port() {
        let idx: ScoreIndex<u64> = ScoreIndex::new(3);
        assert_eq!(idx.max_with(PortId::new(2), 0), PortId::new(2));
        let mut idx = ScoreIndex::new(3);
        idx.set(PortId::new(2), Some(9u64));
        assert_eq!(idx.max_with(PortId::new(2), 0), PortId::new(2));
    }

    #[test]
    fn clear_empties_the_index() {
        let mut idx = ScoreIndex::new(2);
        idx.set(PortId::new(0), Some(1u64));
        idx.set(PortId::new(1), Some(2));
        idx.clear();
        assert_eq!(idx.max(), None);
        assert_eq!(idx.key(PortId::new(1)), None);
    }

    #[test]
    fn non_power_of_two_port_counts() {
        for ports in [1usize, 3, 5, 6, 7, 9] {
            let mut idx = ScoreIndex::new(ports);
            for p in 0..ports {
                idx.set(PortId::new(p), Some(p as u64));
            }
            assert_eq!(idx.max(), Some(PortId::new(ports - 1)), "ports={ports}");
            assert_eq!(
                idx.max_with(PortId::new(0), ports as u64),
                PortId::new(0),
                "ports={ports}"
            );
        }
    }

    #[test]
    fn rebuild_matches_point_updates() {
        for ports in [1usize, 3, 5, 8, 9, 64] {
            let mut point = ScoreIndex::new(ports);
            let mut batch = ScoreIndex::new(ports);
            let key = |i: usize| (!i.is_multiple_of(3)).then_some(((i * 7) % 11) as u64);
            for p in 0..ports {
                point.set(PortId::new(p), key(p));
            }
            batch.rebuild_with(key);
            assert_eq!(point.max(), batch.max(), "ports={ports}");
            for p in 0..ports {
                assert_eq!(
                    point.max_with(PortId::new(p), 100),
                    batch.max_with(PortId::new(p), 100),
                    "ports={ports} p={p}"
                );
            }
        }
    }

    #[test]
    fn apply_queue_changes_rebuilds_large_batches() {
        let ports = 8usize;
        let keys: Vec<Option<u64>> = (0..ports).map(|i| Some(i as u64 * 3 % 7)).collect();
        // Large batch (>= half the ports) takes the rebuild path.
        let mut idx = ScoreIndex::new(ports);
        let all: Vec<PortId> = (0..ports).map(PortId::new).collect();
        apply_queue_changes(&mut idx, &all, |i| keys[i]);
        // Small batch takes the point-update path.
        let mut point = ScoreIndex::new(ports);
        for (p, &key) in keys.iter().enumerate() {
            point.set(PortId::new(p), key);
        }
        assert_eq!(idx.max(), point.max());
        apply_queue_changes(&mut idx, &[PortId::new(2)], |_| Some(99));
        point.set(PortId::new(2), Some(99));
        assert_eq!(idx.max(), point.max());
        assert_eq!(idx.max(), Some(PortId::new(2)));
    }

    #[test]
    fn matches_a_scan_on_random_sequences() {
        // Tiny deterministic LCG so the test needs no external RNG.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let ports = 6usize;
        let mut idx = ScoreIndex::new(ports);
        let mut keys: Vec<Option<u64>> = vec![None; ports];
        for _ in 0..2000 {
            let p = (rng() % ports as u64) as usize;
            let op = rng() % 3;
            let key = if op == 0 { None } else { Some(rng() % 8) };
            idx.set(PortId::new(p), key);
            keys[p] = key;
            // Scan oracle: lexicographic max of (key, port).
            let scan = keys
                .iter()
                .enumerate()
                .filter_map(|(i, k)| k.map(|k| (k, i)))
                .max()
                .map(|(_, i)| PortId::new(i));
            assert_eq!(idx.max(), scan);
            // Virtual-add oracle.
            let vp = (rng() % ports as u64) as usize;
            let vkey = rng() % 8;
            let vscan = keys
                .iter()
                .enumerate()
                .map(|(i, k)| if i == vp { Some(vkey) } else { *k })
                .enumerate()
                .filter_map(|(i, k)| k.map(|k| (k, i)))
                .max()
                .map(|(_, i)| PortId::new(i))
                .unwrap();
            assert_eq!(idx.max_with(PortId::new(vp), vkey), vscan);
        }
    }
}
