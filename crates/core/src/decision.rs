//! Admission decisions and the plumbing that applies them to a switch.

use std::fmt;

use smbm_switch::PortId;

/// A buffer-management policy's verdict on one arriving packet.
///
/// The push-out variant names the queue whose lowest-priority packet (FIFO
/// tail in the processing model, minimal value in the value model) is evicted
/// to make room for the arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Accept the packet into its destination queue (requires free space).
    Accept,
    /// Reject the packet.
    Drop,
    /// Evict from `victim`'s queue, then accept the packet.
    PushOut(PortId),
}

impl Decision {
    /// True unless the packet was dropped.
    pub fn admits(self) -> bool {
        !matches!(self, Decision::Drop)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Accept => write!(f, "accept"),
            Decision::Drop => write!(f, "drop"),
            Decision::PushOut(victim) => write!(f, "push-out {victim}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_classification() {
        assert!(Decision::Accept.admits());
        assert!(Decision::PushOut(PortId::new(0)).admits());
        assert!(!Decision::Drop.admits());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Decision::Accept.to_string(), "accept");
        assert_eq!(Decision::Drop.to_string(), "drop");
        assert_eq!(
            Decision::PushOut(PortId::new(1)).to_string(),
            "push-out port#2"
        );
    }
}
