//! Competitive-ratio bookkeeping.

use std::fmt;

/// An empirical competitive ratio: an optimal (or surrogate-optimal) score
/// against an online algorithm's score on the same arrival sequence.
///
/// Scores are packet counts in the processing model and transmitted value in
/// the value model.
///
/// ```
/// use smbm_core::CompetitiveRatio;
/// let r = CompetitiveRatio::new(200, 100);
/// assert_eq!(r.ratio(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompetitiveRatio {
    opt: u64,
    alg: u64,
}

impl CompetitiveRatio {
    /// Records an OPT score and an algorithm score.
    pub fn new(opt: u64, alg: u64) -> Self {
        CompetitiveRatio { opt, alg }
    }

    /// The OPT score.
    pub fn opt(&self) -> u64 {
        self.opt
    }

    /// The algorithm score.
    pub fn alg(&self) -> u64 {
        self.alg
    }

    /// `opt / alg`. By convention the ratio of two zero scores is 1 (both
    /// did nothing, neither outperformed the other), and a zero algorithm
    /// score against a positive OPT is `+inf`.
    pub fn ratio(&self) -> f64 {
        match (self.opt, self.alg) {
            (0, 0) => 1.0,
            (_, 0) => f64::INFINITY,
            (o, a) => o as f64 / a as f64,
        }
    }
}

impl fmt::Display for CompetitiveRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} (opt={}, alg={})",
            self.ratio(),
            self.opt,
            self.alg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ratio() {
        assert_eq!(CompetitiveRatio::new(3, 2).ratio(), 1.5);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(CompetitiveRatio::new(0, 0).ratio(), 1.0);
        assert_eq!(CompetitiveRatio::new(5, 0).ratio(), f64::INFINITY);
        assert_eq!(CompetitiveRatio::new(0, 5).ratio(), 0.0);
    }

    #[test]
    fn display_shows_components() {
        let s = CompetitiveRatio::new(4, 2).to_string();
        assert!(s.contains("2.0000"));
        assert!(s.contains("opt=4"));
    }
}
