//! Uniform interfaces over "things that receive a packet stream" — policy
//! runners and OPT surrogates — so the simulation engine can drive an
//! algorithm and its yardstick through identical slot phases.

use smbm_switch::{AdmitError, CombinedPacket, ValuePacket, WorkPacket};

use crate::{
    CombinedPolicy, CombinedPqOpt, CombinedRunner, ValuePolicy, ValuePqOpt, ValueRunner,
    WorkPolicy, WorkPqOpt, WorkRunner,
};

/// A system processing work-labelled packets slot by slot.
pub trait WorkSystem {
    /// Human-readable label for reports.
    fn label(&self) -> String;

    /// Presents one arrival during the current slot's arrival phase.
    ///
    /// # Errors
    ///
    /// Propagates an [`AdmitError`] from an inconsistent policy decision.
    fn offer(&mut self, pkt: WorkPacket) -> Result<(), AdmitError>;

    /// Runs the transmission phase; returns packets transmitted.
    fn transmission_phase(&mut self) -> u64;

    /// Marks the end of the slot.
    fn end_slot(&mut self);

    /// Discards all buffered packets (simulation flushout).
    fn flush(&mut self);

    /// Packets transmitted since construction.
    fn transmitted(&self) -> u64;

    /// Packets currently buffered.
    fn occupancy(&self) -> usize;
}

impl<P: WorkPolicy> WorkSystem for WorkRunner<P> {
    fn label(&self) -> String {
        self.policy().name().to_owned()
    }

    fn offer(&mut self, pkt: WorkPacket) -> Result<(), AdmitError> {
        self.arrival(pkt).map(|_| ())
    }

    fn transmission_phase(&mut self) -> u64 {
        self.transmission().transmitted
    }

    fn end_slot(&mut self) {
        WorkRunner::end_slot(self);
    }

    fn flush(&mut self) {
        WorkRunner::flush(self);
    }

    fn transmitted(&self) -> u64 {
        WorkRunner::transmitted(self)
    }

    fn occupancy(&self) -> usize {
        self.switch().occupancy()
    }
}

impl WorkSystem for WorkPqOpt {
    fn label(&self) -> String {
        format!("OPT(pq,{}cores)", self.cores())
    }

    fn offer(&mut self, pkt: WorkPacket) -> Result<(), AdmitError> {
        WorkPqOpt::offer(self, pkt);
        Ok(())
    }

    fn transmission_phase(&mut self) -> u64 {
        WorkPqOpt::transmission(self)
    }

    fn end_slot(&mut self) {}

    fn flush(&mut self) {
        WorkPqOpt::flush(self);
    }

    fn transmitted(&self) -> u64 {
        WorkPqOpt::transmitted(self)
    }

    fn occupancy(&self) -> usize {
        WorkPqOpt::occupancy(self)
    }
}

/// A system processing value-labelled packets slot by slot.
pub trait ValueSystem {
    /// Human-readable label for reports.
    fn label(&self) -> String;

    /// Presents one arrival during the current slot's arrival phase.
    ///
    /// # Errors
    ///
    /// Propagates an [`AdmitError`] from an inconsistent policy decision.
    fn offer(&mut self, pkt: ValuePacket) -> Result<(), AdmitError>;

    /// Runs the transmission phase; returns the value transmitted.
    fn transmission_phase(&mut self) -> u64;

    /// Marks the end of the slot.
    fn end_slot(&mut self);

    /// Discards all buffered packets (simulation flushout).
    fn flush(&mut self);

    /// Total value transmitted since construction.
    fn transmitted_value(&self) -> u64;

    /// Packets currently buffered.
    fn occupancy(&self) -> usize;
}

impl<P: ValuePolicy> ValueSystem for ValueRunner<P> {
    fn label(&self) -> String {
        self.policy().name().to_owned()
    }

    fn offer(&mut self, pkt: ValuePacket) -> Result<(), AdmitError> {
        self.arrival(pkt).map(|_| ())
    }

    fn transmission_phase(&mut self) -> u64 {
        self.transmission().value
    }

    fn end_slot(&mut self) {
        ValueRunner::end_slot(self);
    }

    fn flush(&mut self) {
        ValueRunner::flush(self);
    }

    fn transmitted_value(&self) -> u64 {
        ValueRunner::transmitted_value(self)
    }

    fn occupancy(&self) -> usize {
        self.switch().occupancy()
    }
}

impl ValueSystem for ValuePqOpt {
    fn label(&self) -> String {
        format!("OPT(pq,{}cores)", self.cores())
    }

    fn offer(&mut self, pkt: ValuePacket) -> Result<(), AdmitError> {
        ValuePqOpt::offer(self, pkt);
        Ok(())
    }

    fn transmission_phase(&mut self) -> u64 {
        ValuePqOpt::transmission(self)
    }

    fn end_slot(&mut self) {}

    fn flush(&mut self) {
        ValuePqOpt::flush(self);
    }

    fn transmitted_value(&self) -> u64 {
        ValuePqOpt::transmitted_value(self)
    }

    fn occupancy(&self) -> usize {
        ValuePqOpt::occupancy(self)
    }
}

/// A system processing combined-model packets slot by slot (extension).
pub trait CombinedSystem {
    /// Human-readable label for reports.
    fn label(&self) -> String;

    /// Presents one arrival during the arrival phase.
    ///
    /// # Errors
    ///
    /// Propagates an [`AdmitError`] from an inconsistent policy decision.
    fn offer(&mut self, pkt: CombinedPacket) -> Result<(), AdmitError>;

    /// Runs the transmission phase; returns the value transmitted.
    fn transmission_phase(&mut self) -> u64;

    /// Marks the end of the slot.
    fn end_slot(&mut self);

    /// Discards all buffered packets.
    fn flush(&mut self);

    /// Total value transmitted since construction.
    fn transmitted_value(&self) -> u64;

    /// Packets currently buffered.
    fn occupancy(&self) -> usize;
}

impl<P: CombinedPolicy> CombinedSystem for CombinedRunner<P> {
    fn label(&self) -> String {
        self.policy().name().to_owned()
    }

    fn offer(&mut self, pkt: CombinedPacket) -> Result<(), AdmitError> {
        self.arrival(pkt).map(|_| ())
    }

    fn transmission_phase(&mut self) -> u64 {
        self.transmission().value
    }

    fn end_slot(&mut self) {
        CombinedRunner::end_slot(self);
    }

    fn flush(&mut self) {
        CombinedRunner::flush(self);
    }

    fn transmitted_value(&self) -> u64 {
        CombinedRunner::transmitted_value(self)
    }

    fn occupancy(&self) -> usize {
        self.switch().occupancy()
    }
}

impl CombinedSystem for CombinedPqOpt {
    fn label(&self) -> String {
        format!("OPT(density,{}cores)", self.cores())
    }

    fn offer(&mut self, pkt: CombinedPacket) -> Result<(), AdmitError> {
        CombinedPqOpt::offer(self, pkt);
        Ok(())
    }

    fn transmission_phase(&mut self) -> u64 {
        CombinedPqOpt::transmission(self)
    }

    fn end_slot(&mut self) {}

    fn flush(&mut self) {
        CombinedPqOpt::flush(self);
    }

    fn transmitted_value(&self) -> u64 {
        CombinedPqOpt::transmitted_value(self)
    }

    fn occupancy(&self) -> usize {
        CombinedPqOpt::occupancy(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GreedyValue, Lwd};
    use smbm_switch::{PortId, Value, Work, WorkSwitchConfig, ValueSwitchConfig};

    #[test]
    fn runner_and_opt_share_the_work_interface() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut systems: Vec<Box<dyn WorkSystem>> = vec![
            Box::new(WorkRunner::new(cfg, Lwd::new(), 1)),
            Box::new(WorkPqOpt::new(4, 2)),
        ];
        for sys in systems.iter_mut() {
            sys.offer(WorkPacket::new(PortId::new(0), Work::new(1)))
                .unwrap();
            let sent = sys.transmission_phase();
            sys.end_slot();
            assert_eq!(sent, 1, "{}", sys.label());
            assert_eq!(sys.transmitted(), 1);
            assert_eq!(sys.occupancy(), 0);
        }
    }

    #[test]
    fn runner_and_opt_share_the_value_interface() {
        let cfg = ValueSwitchConfig::new(4, 2).unwrap();
        let mut systems: Vec<Box<dyn ValueSystem>> = vec![
            Box::new(ValueRunner::new(cfg, GreedyValue::new(), 1)),
            Box::new(ValuePqOpt::new(4, 2)),
        ];
        for sys in systems.iter_mut() {
            sys.offer(ValuePacket::new(PortId::new(1), Value::new(7)))
                .unwrap();
            assert_eq!(sys.transmission_phase(), 7, "{}", sys.label());
            sys.end_slot();
            assert_eq!(sys.transmitted_value(), 7);
        }
    }

    #[test]
    fn flush_via_trait_objects() {
        let cfg = WorkSwitchConfig::contiguous(1, 2).unwrap();
        let mut sys: Box<dyn WorkSystem> = Box::new(WorkRunner::new(cfg, Lwd::new(), 1));
        sys.offer(WorkPacket::new(PortId::new(0), Work::new(1)))
            .unwrap();
        sys.flush();
        assert_eq!(sys.occupancy(), 0);
    }

    #[test]
    fn labels_are_informative() {
        let opt = WorkPqOpt::new(2, 3);
        assert_eq!(WorkSystem::label(&opt), "OPT(pq,3cores)");
    }
}
