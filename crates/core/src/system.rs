//! Uniform interfaces over "things that receive a packet stream" — policy
//! runners and OPT surrogates — so the simulation engine can drive an
//! algorithm and its yardstick through identical slot phases.
//!
//! Every hook reports enough detail for instrumentation: [`offer`] returns
//! the packet's fate ([`ArrivalOutcome`]), [`flush`] the number of discarded
//! packets, and [`transmission_phase_into`] appends per-packet completion
//! records for systems that track them (the shared-memory runners do; the
//! aggregate OPT surrogates fall back to the totals-only default).
//!
//! [`offer`]: WorkSystem::offer
//! [`flush`]: WorkSystem::flush
//! [`transmission_phase_into`]: WorkSystem::transmission_phase_into

use smbm_switch::{
    AdmitError, ArrivalOutcome, CombinedPacket, Counters, DropReason, Transmitted, ValuePacket,
    WorkPacket,
};

use crate::{
    CombinedPolicy, CombinedPqOpt, CombinedRunner, Decision, ValuePolicy, ValuePqOpt, ValueRunner,
    WorkPolicy, WorkPqOpt, WorkRunner,
};

/// Classifies a policy decision as an [`ArrivalOutcome`], distinguishing
/// drops forced by a full buffer from voluntary policy rejections.
fn classify(decision: Decision, was_full: bool) -> ArrivalOutcome {
    match decision {
        Decision::Accept => ArrivalOutcome::Admitted,
        Decision::PushOut(victim) => ArrivalOutcome::PushedOut(victim),
        Decision::Drop => ArrivalOutcome::Dropped(if was_full {
            DropReason::BufferFull
        } else {
            DropReason::Policy
        }),
    }
}

/// A system processing work-labelled packets slot by slot.
pub trait WorkSystem {
    /// Human-readable label for reports.
    fn label(&self) -> String;

    /// Presents one arrival during the current slot's arrival phase,
    /// reporting the packet's fate.
    ///
    /// # Errors
    ///
    /// Propagates an [`AdmitError`] from an inconsistent policy decision.
    fn offer(&mut self, pkt: WorkPacket) -> Result<ArrivalOutcome, AdmitError>;

    /// Presents a whole arrival burst, appending one outcome per packet to
    /// `outcomes` in offer order. The default loops over [`WorkSystem::offer`];
    /// batch-oriented callers (the live runtime's ingress path) get a single
    /// virtual dispatch per burst instead of one per packet.
    ///
    /// # Errors
    ///
    /// Stops at the first [`AdmitError`]; outcomes already appended stay.
    fn offer_burst(
        &mut self,
        pkts: &[WorkPacket],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError> {
        outcomes.reserve(pkts.len());
        for &pkt in pkts {
            outcomes.push(self.offer(pkt)?);
        }
        Ok(())
    }

    /// Runs the transmission phase; returns packets transmitted.
    fn transmission_phase(&mut self) -> u64;

    /// Like [`WorkSystem::transmission_phase`], additionally appending
    /// per-packet completion records to `out` when the system tracks them.
    /// The default ignores `out` (aggregate-only systems).
    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        let _ = out;
        self.transmission_phase()
    }

    /// Marks the end of the slot.
    fn end_slot(&mut self);

    /// Discards all buffered packets (simulation flushout); returns how many
    /// were discarded.
    fn flush(&mut self) -> u64;

    /// Packets transmitted since construction.
    fn transmitted(&self) -> u64;

    /// Packets currently buffered.
    fn occupancy(&self) -> usize;

    /// The configured shared buffer limit B. Defaults to 0 for systems
    /// without one (the aggregate OPT surrogates).
    fn buffer_limit(&self) -> usize {
        0
    }

    /// The configured output port count n. Defaults to 0 for systems
    /// without one.
    fn ports(&self) -> usize {
        0
    }

    /// Length of the longest output queue right now. Defaults to 0 for
    /// systems that do not track per-port queues.
    fn max_queue_depth(&self) -> usize {
        0
    }

    /// Snapshot of the switch's lifetime counters. Defaults to empty for
    /// systems that do not keep them.
    fn counters(&self) -> Counters {
        Counters::new()
    }
}

/// A `&mut` borrow drives the underlying system in place, so the engine can
/// run a caller-owned system through the same adapters the runtime uses
/// with owned ones.
impl<S: WorkSystem + ?Sized> WorkSystem for &mut S {
    fn label(&self) -> String {
        (**self).label()
    }

    fn offer(&mut self, pkt: WorkPacket) -> Result<ArrivalOutcome, AdmitError> {
        (**self).offer(pkt)
    }

    fn offer_burst(
        &mut self,
        pkts: &[WorkPacket],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError> {
        (**self).offer_burst(pkts, outcomes)
    }

    fn transmission_phase(&mut self) -> u64 {
        (**self).transmission_phase()
    }

    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        (**self).transmission_phase_into(out)
    }

    fn end_slot(&mut self) {
        (**self).end_slot();
    }

    fn flush(&mut self) -> u64 {
        (**self).flush()
    }

    fn transmitted(&self) -> u64 {
        (**self).transmitted()
    }

    fn occupancy(&self) -> usize {
        (**self).occupancy()
    }

    fn buffer_limit(&self) -> usize {
        (**self).buffer_limit()
    }

    fn ports(&self) -> usize {
        (**self).ports()
    }

    fn max_queue_depth(&self) -> usize {
        (**self).max_queue_depth()
    }

    fn counters(&self) -> Counters {
        (**self).counters()
    }
}

impl<P: WorkPolicy> WorkSystem for WorkRunner<P> {
    fn label(&self) -> String {
        self.policy().name().to_owned()
    }

    fn offer(&mut self, pkt: WorkPacket) -> Result<ArrivalOutcome, AdmitError> {
        let was_full = self.switch().is_full();
        Ok(classify(self.arrival(pkt)?, was_full))
    }

    fn transmission_phase(&mut self) -> u64 {
        self.transmission().transmitted
    }

    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        self.transmission_into(out).transmitted
    }

    fn end_slot(&mut self) {
        WorkRunner::end_slot(self);
    }

    fn flush(&mut self) -> u64 {
        WorkRunner::flush(self)
    }

    fn transmitted(&self) -> u64 {
        WorkRunner::transmitted(self)
    }

    fn occupancy(&self) -> usize {
        self.switch().occupancy()
    }

    fn buffer_limit(&self) -> usize {
        self.switch().buffer()
    }

    fn ports(&self) -> usize {
        self.switch().ports()
    }

    fn max_queue_depth(&self) -> usize {
        self.switch().max_queue_len()
    }

    fn counters(&self) -> Counters {
        *self.switch().counters()
    }
}

impl WorkSystem for WorkPqOpt {
    fn label(&self) -> String {
        format!("OPT(pq,{}cores)", self.cores())
    }

    fn offer(&mut self, pkt: WorkPacket) -> Result<ArrivalOutcome, AdmitError> {
        Ok(WorkPqOpt::offer(self, pkt))
    }

    fn transmission_phase(&mut self) -> u64 {
        WorkPqOpt::transmission(self)
    }

    fn end_slot(&mut self) {}

    fn flush(&mut self) -> u64 {
        WorkPqOpt::flush(self)
    }

    fn transmitted(&self) -> u64 {
        WorkPqOpt::transmitted(self)
    }

    fn occupancy(&self) -> usize {
        WorkPqOpt::occupancy(self)
    }
}

/// A system processing value-labelled packets slot by slot.
pub trait ValueSystem {
    /// Human-readable label for reports.
    fn label(&self) -> String;

    /// Presents one arrival during the current slot's arrival phase,
    /// reporting the packet's fate.
    ///
    /// # Errors
    ///
    /// Propagates an [`AdmitError`] from an inconsistent policy decision.
    fn offer(&mut self, pkt: ValuePacket) -> Result<ArrivalOutcome, AdmitError>;

    /// Presents a whole arrival burst, appending one outcome per packet to
    /// `outcomes` in offer order. The default loops over
    /// [`ValueSystem::offer`]; batch-oriented callers (the live runtime's
    /// ingress path) get a single virtual dispatch per burst instead of one
    /// per packet.
    ///
    /// # Errors
    ///
    /// Stops at the first [`AdmitError`]; outcomes already appended stay.
    fn offer_burst(
        &mut self,
        pkts: &[ValuePacket],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError> {
        outcomes.reserve(pkts.len());
        for &pkt in pkts {
            outcomes.push(self.offer(pkt)?);
        }
        Ok(())
    }

    /// Runs the transmission phase; returns the value transmitted.
    fn transmission_phase(&mut self) -> u64;

    /// Like [`ValueSystem::transmission_phase`], additionally appending
    /// per-packet completion records to `out` when the system tracks them.
    /// The default ignores `out` (aggregate-only systems).
    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        let _ = out;
        self.transmission_phase()
    }

    /// Marks the end of the slot.
    fn end_slot(&mut self);

    /// Discards all buffered packets (simulation flushout); returns how many
    /// were discarded.
    fn flush(&mut self) -> u64;

    /// Total value transmitted since construction.
    fn transmitted_value(&self) -> u64;

    /// Packets currently buffered.
    fn occupancy(&self) -> usize;

    /// The configured shared buffer limit B. Defaults to 0 for systems
    /// without one (the aggregate OPT surrogates).
    fn buffer_limit(&self) -> usize {
        0
    }

    /// The configured output port count n. Defaults to 0 for systems
    /// without one.
    fn ports(&self) -> usize {
        0
    }

    /// Length of the longest output queue right now. Defaults to 0 for
    /// systems that do not track per-port queues.
    fn max_queue_depth(&self) -> usize {
        0
    }

    /// Snapshot of the switch's lifetime counters. Defaults to empty for
    /// systems that do not keep them.
    fn counters(&self) -> Counters {
        Counters::new()
    }
}

/// A `&mut` borrow drives the underlying system in place (see the
/// [`WorkSystem`] blanket impl).
impl<S: ValueSystem + ?Sized> ValueSystem for &mut S {
    fn label(&self) -> String {
        (**self).label()
    }

    fn offer(&mut self, pkt: ValuePacket) -> Result<ArrivalOutcome, AdmitError> {
        (**self).offer(pkt)
    }

    fn offer_burst(
        &mut self,
        pkts: &[ValuePacket],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError> {
        (**self).offer_burst(pkts, outcomes)
    }

    fn transmission_phase(&mut self) -> u64 {
        (**self).transmission_phase()
    }

    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        (**self).transmission_phase_into(out)
    }

    fn end_slot(&mut self) {
        (**self).end_slot();
    }

    fn flush(&mut self) -> u64 {
        (**self).flush()
    }

    fn transmitted_value(&self) -> u64 {
        (**self).transmitted_value()
    }

    fn occupancy(&self) -> usize {
        (**self).occupancy()
    }

    fn buffer_limit(&self) -> usize {
        (**self).buffer_limit()
    }

    fn ports(&self) -> usize {
        (**self).ports()
    }

    fn max_queue_depth(&self) -> usize {
        (**self).max_queue_depth()
    }

    fn counters(&self) -> Counters {
        (**self).counters()
    }
}

impl<P: ValuePolicy> ValueSystem for ValueRunner<P> {
    fn label(&self) -> String {
        self.policy().name().to_owned()
    }

    fn offer(&mut self, pkt: ValuePacket) -> Result<ArrivalOutcome, AdmitError> {
        let was_full = self.switch().is_full();
        Ok(classify(self.arrival(pkt)?, was_full))
    }

    fn transmission_phase(&mut self) -> u64 {
        self.transmission().value
    }

    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        self.transmission_into(out).value
    }

    fn end_slot(&mut self) {
        ValueRunner::end_slot(self);
    }

    fn flush(&mut self) -> u64 {
        ValueRunner::flush(self)
    }

    fn transmitted_value(&self) -> u64 {
        ValueRunner::transmitted_value(self)
    }

    fn occupancy(&self) -> usize {
        self.switch().occupancy()
    }

    fn buffer_limit(&self) -> usize {
        self.switch().buffer()
    }

    fn ports(&self) -> usize {
        self.switch().ports()
    }

    fn max_queue_depth(&self) -> usize {
        self.switch().max_queue_len()
    }

    fn counters(&self) -> Counters {
        *self.switch().counters()
    }
}

impl ValueSystem for ValuePqOpt {
    fn label(&self) -> String {
        format!("OPT(pq,{}cores)", self.cores())
    }

    fn offer(&mut self, pkt: ValuePacket) -> Result<ArrivalOutcome, AdmitError> {
        Ok(ValuePqOpt::offer(self, pkt))
    }

    fn transmission_phase(&mut self) -> u64 {
        ValuePqOpt::transmission(self)
    }

    fn end_slot(&mut self) {}

    fn flush(&mut self) -> u64 {
        ValuePqOpt::flush(self)
    }

    fn transmitted_value(&self) -> u64 {
        ValuePqOpt::transmitted_value(self)
    }

    fn occupancy(&self) -> usize {
        ValuePqOpt::occupancy(self)
    }
}

/// A system processing combined-model packets slot by slot (extension).
pub trait CombinedSystem {
    /// Human-readable label for reports.
    fn label(&self) -> String;

    /// Presents one arrival during the arrival phase, reporting the packet's
    /// fate.
    ///
    /// # Errors
    ///
    /// Propagates an [`AdmitError`] from an inconsistent policy decision.
    fn offer(&mut self, pkt: CombinedPacket) -> Result<ArrivalOutcome, AdmitError>;

    /// Presents a whole arrival burst, appending one outcome per packet to
    /// `outcomes` in offer order. The default loops over
    /// [`CombinedSystem::offer`]; batch-oriented callers (the live runtime's
    /// ingress path) get a single virtual dispatch per burst instead of one
    /// per packet.
    ///
    /// # Errors
    ///
    /// Stops at the first [`AdmitError`]; outcomes already appended stay.
    fn offer_burst(
        &mut self,
        pkts: &[CombinedPacket],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError> {
        outcomes.reserve(pkts.len());
        for &pkt in pkts {
            outcomes.push(self.offer(pkt)?);
        }
        Ok(())
    }

    /// Runs the transmission phase; returns the value transmitted.
    fn transmission_phase(&mut self) -> u64;

    /// Like [`CombinedSystem::transmission_phase`], additionally appending
    /// per-packet completion records to `out` when the system tracks them.
    /// The default ignores `out` (aggregate-only systems).
    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        let _ = out;
        self.transmission_phase()
    }

    /// Marks the end of the slot.
    fn end_slot(&mut self);

    /// Discards all buffered packets; returns how many were discarded.
    fn flush(&mut self) -> u64;

    /// Total value transmitted since construction.
    fn transmitted_value(&self) -> u64;

    /// Packets currently buffered.
    fn occupancy(&self) -> usize;

    /// The configured shared buffer limit B. Defaults to 0 for systems
    /// without one (the aggregate OPT surrogates).
    fn buffer_limit(&self) -> usize {
        0
    }

    /// The configured output port count n. Defaults to 0 for systems
    /// without one.
    fn ports(&self) -> usize {
        0
    }

    /// Length of the longest output queue right now. Defaults to 0 for
    /// systems that do not track per-port queues.
    fn max_queue_depth(&self) -> usize {
        0
    }

    /// Snapshot of the switch's lifetime counters. Defaults to empty for
    /// systems that do not keep them.
    fn counters(&self) -> Counters {
        Counters::new()
    }
}

/// A `&mut` borrow drives the underlying system in place (see the
/// [`WorkSystem`] blanket impl).
impl<S: CombinedSystem + ?Sized> CombinedSystem for &mut S {
    fn label(&self) -> String {
        (**self).label()
    }

    fn offer(&mut self, pkt: CombinedPacket) -> Result<ArrivalOutcome, AdmitError> {
        (**self).offer(pkt)
    }

    fn offer_burst(
        &mut self,
        pkts: &[CombinedPacket],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError> {
        (**self).offer_burst(pkts, outcomes)
    }

    fn transmission_phase(&mut self) -> u64 {
        (**self).transmission_phase()
    }

    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        (**self).transmission_phase_into(out)
    }

    fn end_slot(&mut self) {
        (**self).end_slot();
    }

    fn flush(&mut self) -> u64 {
        (**self).flush()
    }

    fn transmitted_value(&self) -> u64 {
        (**self).transmitted_value()
    }

    fn occupancy(&self) -> usize {
        (**self).occupancy()
    }

    fn buffer_limit(&self) -> usize {
        (**self).buffer_limit()
    }

    fn ports(&self) -> usize {
        (**self).ports()
    }

    fn max_queue_depth(&self) -> usize {
        (**self).max_queue_depth()
    }

    fn counters(&self) -> Counters {
        (**self).counters()
    }
}

impl<P: CombinedPolicy> CombinedSystem for CombinedRunner<P> {
    fn label(&self) -> String {
        self.policy().name().to_owned()
    }

    fn offer(&mut self, pkt: CombinedPacket) -> Result<ArrivalOutcome, AdmitError> {
        let was_full = self.switch().is_full();
        Ok(classify(self.arrival(pkt)?, was_full))
    }

    fn transmission_phase(&mut self) -> u64 {
        self.transmission().value
    }

    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        self.transmission_into(out).value
    }

    fn end_slot(&mut self) {
        CombinedRunner::end_slot(self);
    }

    fn flush(&mut self) -> u64 {
        CombinedRunner::flush(self)
    }

    fn transmitted_value(&self) -> u64 {
        CombinedRunner::transmitted_value(self)
    }

    fn occupancy(&self) -> usize {
        self.switch().occupancy()
    }

    fn buffer_limit(&self) -> usize {
        self.switch().buffer()
    }

    fn ports(&self) -> usize {
        self.switch().ports()
    }

    fn max_queue_depth(&self) -> usize {
        self.switch().max_queue_len()
    }

    fn counters(&self) -> Counters {
        *self.switch().counters()
    }
}

impl CombinedSystem for CombinedPqOpt {
    fn label(&self) -> String {
        format!("OPT(density,{}cores)", self.cores())
    }

    fn offer(&mut self, pkt: CombinedPacket) -> Result<ArrivalOutcome, AdmitError> {
        Ok(CombinedPqOpt::offer(self, pkt))
    }

    fn transmission_phase(&mut self) -> u64 {
        CombinedPqOpt::transmission(self)
    }

    fn end_slot(&mut self) {}

    fn flush(&mut self) -> u64 {
        CombinedPqOpt::flush(self)
    }

    fn transmitted_value(&self) -> u64 {
        CombinedPqOpt::transmitted_value(self)
    }

    fn occupancy(&self) -> usize {
        CombinedPqOpt::occupancy(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GreedyValue, Lwd};
    use smbm_switch::{PortId, Value, ValueSwitchConfig, Work, WorkSwitchConfig};

    #[test]
    fn runner_and_opt_share_the_work_interface() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut systems: Vec<Box<dyn WorkSystem>> = vec![
            Box::new(WorkRunner::new(cfg, Lwd::new(), 1)),
            Box::new(WorkPqOpt::new(4, 2)),
        ];
        for sys in systems.iter_mut() {
            let outcome = sys
                .offer(WorkPacket::new(PortId::new(0), Work::new(1)))
                .unwrap();
            assert_eq!(outcome, ArrivalOutcome::Admitted, "{}", sys.label());
            let sent = sys.transmission_phase();
            sys.end_slot();
            assert_eq!(sent, 1, "{}", sys.label());
            assert_eq!(sys.transmitted(), 1);
            assert_eq!(sys.occupancy(), 0);
        }
    }

    #[test]
    fn runner_and_opt_share_the_value_interface() {
        let cfg = ValueSwitchConfig::new(4, 2).unwrap();
        let mut systems: Vec<Box<dyn ValueSystem>> = vec![
            Box::new(ValueRunner::new(cfg, GreedyValue::new(), 1)),
            Box::new(ValuePqOpt::new(4, 2)),
        ];
        for sys in systems.iter_mut() {
            sys.offer(ValuePacket::new(PortId::new(1), Value::new(7)))
                .unwrap();
            assert_eq!(sys.transmission_phase(), 7, "{}", sys.label());
            sys.end_slot();
            assert_eq!(sys.transmitted_value(), 7);
        }
    }

    #[test]
    fn flush_via_trait_objects() {
        let cfg = WorkSwitchConfig::contiguous(1, 2).unwrap();
        let mut sys: Box<dyn WorkSystem> = Box::new(WorkRunner::new(cfg, Lwd::new(), 1));
        sys.offer(WorkPacket::new(PortId::new(0), Work::new(1)))
            .unwrap();
        assert_eq!(sys.flush(), 1);
        assert_eq!(sys.occupancy(), 0);
    }

    #[test]
    fn runner_distinguishes_drop_reasons() {
        // Buffer 1: the first packet is admitted, the second is rejected
        // because the buffer is full (LWD on a single saturated queue keeps
        // the incumbent when the arrival is not smaller).
        let cfg = WorkSwitchConfig::contiguous(1, 1).unwrap();
        let mut sys = WorkRunner::new(cfg, Lwd::new(), 1);
        let pkt = sys.switch().packet_for(PortId::new(0));
        assert_eq!(
            WorkSystem::offer(&mut sys, pkt).unwrap(),
            ArrivalOutcome::Admitted
        );
        let outcome = WorkSystem::offer(&mut sys, pkt).unwrap();
        assert_eq!(
            outcome,
            ArrivalOutcome::Dropped(DropReason::BufferFull),
            "a drop with the buffer at capacity is a buffer-full drop"
        );
    }

    #[test]
    fn transmission_phase_into_reports_completions() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut sys = WorkRunner::new(cfg, Lwd::new(), 1);
        WorkSystem::offer(&mut sys, WorkPacket::new(PortId::new(0), Work::new(1))).unwrap();
        let mut out = Vec::new();
        let sent = WorkSystem::transmission_phase_into(&mut sys, &mut out);
        assert_eq!(sent, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, PortId::new(0));

        // The aggregate OPT surrogate leaves `out` untouched.
        let mut opt = WorkPqOpt::new(4, 2);
        WorkSystem::offer(&mut opt, WorkPacket::new(PortId::new(0), Work::new(1))).unwrap();
        out.clear();
        assert_eq!(WorkSystem::transmission_phase_into(&mut opt, &mut out), 1);
        assert!(out.is_empty());
    }

    #[test]
    fn offer_burst_matches_per_packet_offers() {
        let cfg = WorkSwitchConfig::contiguous(1, 2).unwrap();
        let mut one = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
        let mut batch = WorkRunner::new(cfg, Lwd::new(), 1);
        let burst: Vec<WorkPacket> = (0..4)
            .map(|_| WorkPacket::new(PortId::new(0), Work::new(1)))
            .collect();
        let singles: Vec<ArrivalOutcome> = burst
            .iter()
            .map(|&p| WorkSystem::offer(&mut one, p).unwrap())
            .collect();
        let mut outcomes = Vec::new();
        WorkSystem::offer_burst(&mut batch, &burst, &mut outcomes).unwrap();
        assert_eq!(outcomes, singles);
        assert_eq!(one.switch().occupancy(), batch.switch().occupancy());
    }

    #[test]
    fn labels_are_informative() {
        let opt = WorkPqOpt::new(2, 3);
        assert_eq!(WorkSystem::label(&opt), "OPT(pq,3cores)");
    }
}
