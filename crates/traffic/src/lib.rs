//! # smbm-traffic
//!
//! Traffic substrate for the shared-memory buffer-management reproduction:
//!
//! * [`Trace`] — per-slot arrival sequences with record/replay and a
//!   line-oriented text format;
//! * [`MmppSource`] / [`MmppBank`] — the paper's on-off Markov-modulated
//!   Poisson sources (Section V-A);
//! * [`MmppScenario`] — builders for the three Fig. 5 traffic settings
//!   (heterogeneous work, uniform values, value==port);
//! * [`adversarial`] — the arrival constructions from every lower-bound
//!   theorem, paired with the proof's scripted OPT admission caps;
//! * samplers ([`Poisson`], [`Geometric`], [`Zipf`], [`Categorical`]) built
//!   on `rand`, since the paper's parameters don't map onto any stock
//!   distribution crate.
//!
//! ## Example
//!
//! ```
//! use smbm_switch::WorkSwitchConfig;
//! use smbm_traffic::{MmppScenario, PortMix};
//!
//! let cfg = WorkSwitchConfig::contiguous(4, 16)?;
//! let scenario = MmppScenario { slots: 100, sources: 10, ..Default::default() };
//! let trace = scenario.work_trace(&cfg, &PortMix::Uniform)?;
//! assert_eq!(trace.slots(), 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
mod dist {
    pub mod categorical;
    pub mod geometric;
    pub mod poisson;
    pub mod zipf;
}
mod mmpp;
mod scenario;
mod stats;
mod trace;

pub use dist::categorical::Categorical;
pub use dist::geometric::Geometric;
pub use dist::poisson::{ParamError, Poisson};
pub use dist::zipf::Zipf;
pub use mmpp::{MmppBank, MmppParams, MmppSource};
pub use scenario::{MmppScenario, PortMix, ValueMix};
pub use stats::{Summarize, TraceStats};
pub use trace::{Batches, ParseTraceError, Trace, TracePacket};
