//! Geometric (Bernoulli-trial) sampling.

use rand::{Rng, RngExt};

use super::poisson::ParamError;

/// A geometric distribution counting the number of failures before the first
/// success of a Bernoulli(`p`) trial (support `0, 1, 2, ...`). Used for
/// sampling on/off sojourn times of MMPP sources.
///
/// ```
/// use rand::SeedableRng;
/// use smbm_traffic::Geometric;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let d = Geometric::new(0.25)?;
/// let _failures = d.sample(&mut rng);
/// # Ok::<(), smbm_traffic::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
    /// `ln(1 - p)`, precomputed for inversion sampling.
    ln_q: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `0 < p <= 1`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !p.is_finite() || p <= 0.0 || p > 1.0 {
            return Err(ParamError::new("geometric probability must be in (0, 1]"));
        }
        Ok(Geometric {
            p,
            ln_q: (1.0 - p).ln(),
        })
    }

    /// The success probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The mean number of failures, `(1 - p) / p`.
    pub fn mean(&self) -> f64 {
        (1.0 - self.p) / self.p
    }

    /// Draws one sample by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let x = u.ln() / self.ln_q;
        // x >= 0 since both logs are negative; floor gives the failure count.
        if x >= u64::MAX as f64 {
            u64::MAX
        } else {
            x as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(-0.5).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::new(f64::NAN).is_err());
    }

    #[test]
    fn p_one_is_always_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Geometric::new(1.0).unwrap();
        for _ in 0..50 {
            assert_eq!(d.sample(&mut rng), 0);
        }
    }

    #[test]
    fn mean_matches_theory() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = Geometric::new(0.2).unwrap();
        let n = 60_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - d.mean()).abs() < 0.1, "mean {mean} vs {}", d.mean());
    }

    #[test]
    fn accessors() {
        let d = Geometric::new(0.5).unwrap();
        assert_eq!(d.p(), 0.5);
        assert_eq!(d.mean(), 1.0);
    }
}
