//! Zipf sampling for skewed port/value popularity.

use rand::{Rng, RngExt};

use super::poisson::ParamError;

/// A Zipf distribution over `{0, 1, ..., n-1}` with exponent `s`: outcome `i`
/// has probability proportional to `1 / (i + 1)^s`. Used for the skewed
/// traffic mixes in the extension experiments (the paper notes MRD's
/// advantage grows "for distributions that prioritize certain values at
/// specific queues").
///
/// Sampling is by inversion over the precomputed CDF (`O(log n)` per draw).
///
/// ```
/// use rand::SeedableRng;
/// use smbm_traffic::Zipf;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let d = Zipf::new(8, 1.0)?;
/// assert!(d.sample(&mut rng) < 8);
/// # Ok::<(), smbm_traffic::ParamError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` outcomes with exponent `s`
    /// (`s = 0` is uniform).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `n == 0` or `s` is not finite and
    /// non-negative.
    pub fn new(n: usize, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("zipf support must be non-empty"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ParamError::new("zipf exponent must be finite and >= 0"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf, s })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Probability of outcome `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn probability(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draws one outcome index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(4, -1.0).is_err());
        assert!(Zipf::new(4, f64::NAN).is_err());
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let d = Zipf::new(4, 0.0).unwrap();
        for i in 0..4 {
            assert!((d.probability(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = Zipf::new(7, 1.3).unwrap();
        let sum: f64 = (0..7).map(|i| d.probability(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_one_dominates() {
        let d = Zipf::new(10, 1.0).unwrap();
        assert!(d.probability(0) > d.probability(1));
        assert!(d.probability(1) > d.probability(9));
    }

    #[test]
    fn empirical_frequencies_match() {
        let d = Zipf::new(5, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut counts = [0u64; 5];
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            assert!(
                (freq - d.probability(i)).abs() < 0.01,
                "outcome {i}: {freq} vs {}",
                d.probability(i)
            );
        }
    }

    #[test]
    fn samples_are_in_range() {
        let d = Zipf::new(3, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) < 3);
        }
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.exponent(), 2.0);
    }
}
