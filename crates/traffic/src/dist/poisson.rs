//! Poisson sampling over a generic [`rand::Rng`].

use rand::{Rng, RngExt};

/// A Poisson distribution with mean `lambda`, sampled with Knuth's product
/// method for small means and a normal approximation for large ones (the
/// MMPP sources of the paper's simulations have small per-slot means, so the
/// exact branch is the hot one).
///
/// ```
/// use rand::SeedableRng;
/// use smbm_traffic::Poisson;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let d = Poisson::new(2.0).expect("positive finite mean");
/// let x = d.sample(&mut rng);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
    /// `exp(-lambda)`, precomputed for the Knuth branch.
    exp_neg_lambda: f64,
}

/// Error creating a distribution with an invalid parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError {
    what: &'static str,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

impl ParamError {
    pub(crate) fn new(what: &'static str) -> Self {
        ParamError { what }
    }
}

/// Mean threshold above which the normal approximation is used.
const NORMAL_APPROX_THRESHOLD: f64 = 30.0;

impl Poisson {
    /// Creates a Poisson distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ParamError::new("poisson mean must be finite and positive"));
        }
        Ok(Poisson {
            lambda,
            exp_neg_lambda: (-lambda).exp(),
        })
    }

    /// The mean `lambda`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < NORMAL_APPROX_THRESHOLD {
            self.sample_knuth(rng)
        } else {
            self.sample_normal(rng)
        }
    }

    fn sample_knuth<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.random::<f64>();
            if p <= self.exp_neg_lambda {
                return k;
            }
            k += 1;
        }
    }

    fn sample_normal<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Box-Muller; mean lambda, stddev sqrt(lambda), half-integer
        // continuity correction, clamped at zero.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let x = self.lambda + self.lambda.sqrt() * z + 0.5;
        if x < 0.0 {
            0
        } else {
            x as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(lambda: f64, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Poisson::new(lambda).unwrap();
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        sum as f64 / n as f64
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
        assert!(!Poisson::new(-1.0).unwrap_err().to_string().is_empty());
    }

    #[test]
    fn small_lambda_mean_is_close() {
        let m = mean_of(0.5, 40_000, 1);
        assert!((m - 0.5).abs() < 0.03, "mean {m}");
    }

    #[test]
    fn moderate_lambda_mean_is_close() {
        let m = mean_of(5.0, 40_000, 2);
        assert!((m - 5.0).abs() < 0.15, "mean {m}");
    }

    #[test]
    fn large_lambda_uses_normal_and_is_close() {
        let m = mean_of(100.0, 40_000, 3);
        assert!((m - 100.0).abs() < 1.0, "mean {m}");
    }

    #[test]
    fn variance_matches_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Poisson::new(3.0).unwrap();
        let xs: Vec<f64> = (0..40_000).map(|_| d.sample(&mut rng) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((var - 3.0).abs() < 0.2, "variance {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let d = Poisson::new(1.5).unwrap();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    fn accessor() {
        assert_eq!(Poisson::new(2.5).unwrap().lambda(), 2.5);
    }
}
