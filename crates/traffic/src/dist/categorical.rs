//! Weighted categorical sampling.

use rand::{Rng, RngExt};

use super::poisson::ParamError;

/// A categorical distribution over `{0, ..., n-1}` with arbitrary positive
/// weights, sampled by inversion over the precomputed CDF. Backs the
/// configurable port/value mixes of the traffic scenarios.
///
/// ```
/// use rand::SeedableRng;
/// use smbm_traffic::Categorical;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let d = Categorical::new(&[1.0, 3.0])?;
/// assert!(d.sample(&mut rng) < 2);
/// # Ok::<(), smbm_traffic::ParamError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from non-negative weights (at
    /// least one must be positive).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for an empty weight vector, negative or
    /// non-finite weights, or an all-zero weight vector.
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("categorical weights must be non-empty"));
        }
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(ParamError::new(
                    "categorical weights must be finite and non-negative",
                ));
            }
            acc += w;
            cdf.push(acc);
        }
        if acc <= 0.0 {
            return Err(ParamError::new("categorical weights must not all be zero"));
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Ok(Categorical { cdf })
    }

    /// A uniform distribution over `n` outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `n == 0`.
    pub fn uniform(n: usize) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("uniform support must be non-empty"));
        }
        Self::new(&vec![1.0; n])
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one outcome index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[1.0, -1.0]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[f64::INFINITY]).is_err());
        assert!(Categorical::uniform(0).is_err());
    }

    #[test]
    fn zero_weight_outcomes_never_drawn() {
        let d = Categorical::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn weighted_frequencies_match() {
        let d = Categorical::new(&[1.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let n = 100_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.75).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn uniform_covers_support() {
        let d = Categorical::uniform(3).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[d.sample(&mut rng)] = true;
        }
        assert_eq!(seen, [true, true, true]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }
}
