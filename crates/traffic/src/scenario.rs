//! Scenario builders: turn MMPP banks into the three traffic settings of the
//! paper's Fig. 5.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use smbm_switch::{CombinedPacket, PortId, Value, ValuePacket, WorkPacket, WorkSwitchConfig};

use crate::dist::poisson::ParamError;
use crate::{Categorical, MmppBank, MmppParams, Trace, Zipf};

/// How a generated packet picks its destination port.
#[derive(Debug, Clone)]
pub enum PortMix {
    /// Uniform over all ports (the paper's base setting).
    Uniform,
    /// Weighted by an explicit distribution over ports.
    Weighted(Vec<f64>),
    /// Zipf-skewed toward low-index ports with the given exponent
    /// (extension experiments).
    Zipf(f64),
}

impl PortMix {
    fn build(&self, ports: usize) -> Result<PortSampler, ParamError> {
        Ok(match self {
            PortMix::Uniform => PortSampler::Categorical(Categorical::uniform(ports)?),
            PortMix::Weighted(w) => PortSampler::Categorical(Categorical::new(w)?),
            PortMix::Zipf(s) => PortSampler::Zipf(Zipf::new(ports, *s)?),
        })
    }
}

#[derive(Debug, Clone)]
enum PortSampler {
    Categorical(Categorical),
    Zipf(Zipf),
}

impl PortSampler {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match self {
            PortSampler::Categorical(c) => c.sample(rng),
            PortSampler::Zipf(z) => z.sample(rng),
        }
    }
}

/// How a generated packet picks its value (value model only).
#[derive(Debug, Clone)]
pub enum ValueMix {
    /// Uniform over `1..=max` independent of the port (Fig. 5 panels 4-6).
    Uniform {
        /// Largest value `k`.
        max: u64,
    },
    /// The value equals the one-based port label (Fig. 5 panels 7-9, and
    /// every Section IV lower-bound construction).
    EqualsPort,
    /// Zipf-skewed over `1..=max`, most mass on the *high* values
    /// (extension experiments).
    ZipfHigh {
        /// Largest value `k`.
        max: u64,
        /// Skew exponent.
        exponent: f64,
    },
}

/// Common knobs for MMPP trace generation.
#[derive(Debug, Clone)]
pub struct MmppScenario {
    /// Number of interleaved sources (the paper uses 500).
    pub sources: usize,
    /// Per-source on-off parameters.
    pub params: MmppParams,
    /// Number of slots to generate.
    pub slots: usize,
    /// RNG seed, making every trace reproducible.
    pub seed: u64,
}

impl Default for MmppScenario {
    fn default() -> Self {
        MmppScenario {
            sources: 100,
            params: MmppParams::default(),
            slots: 50_000,
            seed: 0xB0FFE2,
        }
    }
}

impl MmppScenario {
    /// Generates a work-model trace: each emitted packet draws a destination
    /// port from `mix` and carries that port's configured work requirement.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for invalid MMPP or mix parameters.
    pub fn work_trace(
        &self,
        config: &WorkSwitchConfig,
        mix: &PortMix,
    ) -> Result<Trace<WorkPacket>, ParamError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sampler = mix.build(config.ports())?;
        let mut bank = MmppBank::stationary(self.sources, self.params, &mut rng)?;
        let mut slots = Vec::with_capacity(self.slots);
        for _ in 0..self.slots {
            let n = bank.step(&mut rng);
            let mut burst = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let port = PortId::new(sampler.sample(&mut rng));
                burst.push(WorkPacket::new(port, config.work(port)));
            }
            slots.push(burst);
        }
        Ok(Trace::from_slots(slots))
    }

    /// Generates a value-model trace over `ports` output ports.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for invalid MMPP or mix parameters.
    pub fn value_trace(
        &self,
        ports: usize,
        port_mix: &PortMix,
        value_mix: &ValueMix,
    ) -> Result<Trace<ValuePacket>, ParamError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sampler = port_mix.build(ports)?;
        let value_zipf = match value_mix {
            ValueMix::ZipfHigh { max, exponent } => Some(Zipf::new(*max as usize, *exponent)?),
            ValueMix::Uniform { max } if *max == 0 => {
                return Err(ParamError::new("value range must be non-empty"));
            }
            _ => None,
        };
        let mut bank = MmppBank::stationary(self.sources, self.params, &mut rng)?;
        let mut slots = Vec::with_capacity(self.slots);
        for _ in 0..self.slots {
            let n = bank.step(&mut rng);
            let mut burst = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let port = PortId::new(sampler.sample(&mut rng));
                let value = match value_mix {
                    ValueMix::Uniform { max } => rng.random_range(1..=*max),
                    ValueMix::EqualsPort => port.index() as u64 + 1,
                    ValueMix::ZipfHigh { max, .. } => {
                        // Rank 0 (most likely) maps to the highest value.
                        let rank = value_zipf
                            .as_ref()
                            .expect("zipf built above")
                            .sample(&mut rng) as u64;
                        max - rank
                    }
                };
                burst.push(ValuePacket::new(port, Value::new(value)));
            }
            slots.push(burst);
        }
        Ok(Trace::from_slots(slots))
    }
}

impl MmppScenario {
    /// Generates a combined-model trace (extension): each packet draws a
    /// destination port from `port_mix` (its work requirement follows from
    /// `config`) and a value from `value_mix`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for invalid MMPP or mix parameters.
    pub fn combined_trace(
        &self,
        config: &WorkSwitchConfig,
        port_mix: &PortMix,
        value_mix: &ValueMix,
    ) -> Result<Trace<CombinedPacket>, ParamError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sampler = port_mix.build(config.ports())?;
        let value_zipf = match value_mix {
            ValueMix::ZipfHigh { max, exponent } => Some(Zipf::new(*max as usize, *exponent)?),
            ValueMix::Uniform { max } if *max == 0 => {
                return Err(ParamError::new("value range must be non-empty"));
            }
            _ => None,
        };
        let mut bank = MmppBank::stationary(self.sources, self.params, &mut rng)?;
        let mut slots = Vec::with_capacity(self.slots);
        for _ in 0..self.slots {
            let n = bank.step(&mut rng);
            let mut burst = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let port = PortId::new(sampler.sample(&mut rng));
                let value = match value_mix {
                    ValueMix::Uniform { max } => rng.random_range(1..=*max),
                    ValueMix::EqualsPort => port.index() as u64 + 1,
                    ValueMix::ZipfHigh { max, .. } => {
                        let rank = value_zipf
                            .as_ref()
                            .expect("zipf built above")
                            .sample(&mut rng) as u64;
                        max - rank
                    }
                };
                burst.push(CombinedPacket::new(
                    port,
                    config.work(port),
                    Value::new(value),
                ));
            }
            slots.push(burst);
        }
        Ok(Trace::from_slots(slots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(slots: usize) -> MmppScenario {
        MmppScenario {
            sources: 20,
            params: MmppParams::default(),
            slots,
            seed: 42,
        }
    }

    #[test]
    fn work_trace_has_right_shape() {
        let cfg = WorkSwitchConfig::contiguous(4, 16).unwrap();
        let t = scenario(500).work_trace(&cfg, &PortMix::Uniform).unwrap();
        assert_eq!(t.slots(), 500);
        assert!(t.arrivals() > 0);
        for burst in t.iter() {
            for pkt in burst {
                assert!(pkt.port().index() < 4);
                assert_eq!(pkt.work(), cfg.work(pkt.port()));
            }
        }
    }

    #[test]
    fn work_trace_is_reproducible() {
        let cfg = WorkSwitchConfig::contiguous(3, 9).unwrap();
        let a = scenario(200).work_trace(&cfg, &PortMix::Uniform).unwrap();
        let b = scenario(200).work_trace(&cfg, &PortMix::Uniform).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = WorkSwitchConfig::contiguous(3, 9).unwrap();
        let a = scenario(200).work_trace(&cfg, &PortMix::Uniform).unwrap();
        let mut s = scenario(200);
        s.seed = 43;
        let b = s.work_trace(&cfg, &PortMix::Uniform).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn weighted_mix_respects_zero_weights() {
        let cfg = WorkSwitchConfig::contiguous(3, 9).unwrap();
        let t = scenario(300)
            .work_trace(&cfg, &PortMix::Weighted(vec![1.0, 0.0, 1.0]))
            .unwrap();
        assert!(t.iter().flatten().all(|pkt| pkt.port() != PortId::new(1)));
    }

    #[test]
    fn uniform_value_trace_bounds_values() {
        let t = scenario(300)
            .value_trace(4, &PortMix::Uniform, &ValueMix::Uniform { max: 7 })
            .unwrap();
        assert!(t.arrivals() > 0);
        for pkt in t.iter().flatten() {
            assert!(pkt.value().get() >= 1 && pkt.value().get() <= 7);
            assert!(pkt.port().index() < 4);
        }
    }

    #[test]
    fn port_value_trace_ties_value_to_port() {
        let t = scenario(300)
            .value_trace(5, &PortMix::Uniform, &ValueMix::EqualsPort)
            .unwrap();
        for pkt in t.iter().flatten() {
            assert_eq!(pkt.value().get(), pkt.port().index() as u64 + 1);
        }
    }

    #[test]
    fn zipf_high_value_trace_prefers_large_values() {
        let t = scenario(2000)
            .value_trace(
                4,
                &PortMix::Uniform,
                &ValueMix::ZipfHigh {
                    max: 10,
                    exponent: 1.5,
                },
            )
            .unwrap();
        let values: Vec<u64> = t.iter().flatten().map(|p| p.value().get()).collect();
        assert!(!values.is_empty());
        let high = values.iter().filter(|&&v| v == 10).count();
        let low = values.iter().filter(|&&v| v == 1).count();
        assert!(high > low, "high {high} low {low}");
        assert!(values.iter().all(|&v| (1..=10).contains(&v)));
    }

    #[test]
    fn zipf_port_mix_prefers_low_ports() {
        let cfg = WorkSwitchConfig::contiguous(6, 12).unwrap();
        let t = scenario(2000)
            .work_trace(&cfg, &PortMix::Zipf(1.5))
            .unwrap();
        let p0 = t.iter().flatten().filter(|p| p.port().index() == 0).count();
        let p5 = t.iter().flatten().filter(|p| p.port().index() == 5).count();
        assert!(p0 > p5);
    }

    #[test]
    fn combined_trace_carries_port_work_and_value() {
        let cfg = WorkSwitchConfig::contiguous(4, 16).unwrap();
        let t = scenario(300)
            .combined_trace(&cfg, &PortMix::Uniform, &ValueMix::Uniform { max: 9 })
            .unwrap();
        assert!(t.arrivals() > 0);
        for pkt in t.iter().flatten() {
            assert_eq!(pkt.work(), cfg.work(pkt.port()));
            assert!((1..=9).contains(&pkt.value().get()));
        }
    }

    #[test]
    fn combined_trace_is_reproducible() {
        let cfg = WorkSwitchConfig::contiguous(3, 9).unwrap();
        let a = scenario(100)
            .combined_trace(&cfg, &PortMix::Uniform, &ValueMix::EqualsPort)
            .unwrap();
        let b = scenario(100)
            .combined_trace(&cfg, &PortMix::Uniform, &ValueMix::EqualsPort)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_value_range_is_rejected() {
        let err = scenario(10)
            .value_trace(2, &PortMix::Uniform, &ValueMix::Uniform { max: 0 })
            .unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
