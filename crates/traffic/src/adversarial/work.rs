//! Lower-bound constructions for the heterogeneous-processing model
//! (Theorems 1-6).

use smbm_switch::{PortId, WorkPacket, WorkSwitchConfig};

use super::{harmonic, WorkConstruction};
use crate::Trace;

/// One packet destined to the (zero-based) port of work class `class`
/// (one-based) in a contiguous configuration.
fn class_pkt(config: &WorkSwitchConfig, class: u32) -> WorkPacket {
    let port = PortId::new(class as usize - 1);
    WorkPacket::new(port, config.work(port))
}

/// **Theorem 1 (NHST ≥ kZ).** A burst of `B x [k]` arrives; NHST's static
/// threshold admits only `B/(kZ)` of it while OPT admits everything. Silence
/// until both drain, then repeat.
///
/// The predicted ratio accounts for threshold discreteness at finite `B`:
/// NHST admits `ceil(B/(kZ))` packets, so the exact ratio is
/// `B / ceil(B/(kZ))`, which converges to `kZ` as `B` grows.
pub fn nhst_lower_bound(k: u32, buffer: usize, episodes: usize) -> WorkConstruction {
    let config = WorkSwitchConfig::contiguous(k, buffer).expect("valid parameters");
    let mut episode = Trace::new();
    episode.push_slot(vec![class_pkt(&config, k); buffer]);
    // OPT holds B packets of work k on one port: k*B slots drain everything.
    episode.push_silence(k as usize * buffer);
    let trace = episode.repeated(episodes);
    let z = config.inverse_work_sum();
    let mut opt_caps = vec![0; k as usize];
    opt_caps[k as usize - 1] = buffer;
    let admitted = (buffer as f64 / (f64::from(k) * z)).ceil();
    WorkConstruction {
        name: format!("Thm1 NHST k={k} B={buffer}"),
        target_policy: "NHST",
        config,
        trace,
        opt_caps,
        predicted_ratio: buffer as f64 / admitted,
    }
}

/// **Theorem 2 (NEST ≥ n).** All traffic targets one port; NEST's equal
/// split admits only `B/n` of the burst while OPT admits everything.
pub fn nest_lower_bound(n: usize, buffer: usize, episodes: usize) -> WorkConstruction {
    let config = WorkSwitchConfig::homogeneous(n, buffer).expect("valid parameters");
    let mut episode = Trace::new();
    episode.push_slot(vec![
        WorkPacket::new(
            PortId::new(0),
            config.work(PortId::new(0))
        );
        buffer
    ]);
    episode.push_silence(buffer);
    let trace = episode.repeated(episodes);
    let mut opt_caps = vec![0; n];
    opt_caps[0] = buffer;
    WorkConstruction {
        name: format!("Thm2 NEST n={n} B={buffer}"),
        target_policy: "NEST",
        config,
        trace,
        opt_caps,
        predicted_ratio: n as f64,
    }
}

/// **Theorem 3 (NHDT ≥ (1/2)√(k ln k)).** The heavy classes `m+1, ..., k`
/// (about `√(k/ln k)` of them for the optimal `m = k − √(k/ln k)`) arrive in
/// bursts of `B`, heaviest first, followed by `B x [1]`; NHDT's harmonic
/// thresholds waste most of the buffer on the heavy packets. OPT keeps one
/// packet of each heavy class (replenished every `i` slots) and fills the
/// rest with `1`s. The episode repeats after `B − k + m` slots with *no*
/// drain — NHDT stays clogged.
///
/// The paper's proof text writes the burst classes as `k, ..., k−m`, but its
/// own algebra (OPT's heavy service rate `H_k − H_m`, NHDT admitting
/// `A/(k−m+1)` ones as the `(k−m+1)`-th arriving class) identifies the heavy
/// set as `m+1..=k`; we follow the algebra. The predicted ratio is the
/// proof's pre-asymptotic expression, which converges to `(1/2)√(k ln k)`.
pub fn nhdt_lower_bound(k: u32, buffer: usize, episodes: usize) -> WorkConstruction {
    let config = WorkSwitchConfig::contiguous(k, buffer).expect("valid parameters");
    // m = k - sqrt(k / ln k), clamped to a sane range.
    let m = optimal_m_nhdt(k);
    let mut episode = Trace::new();
    let mut first = Vec::new();
    for class in ((m + 1)..=k).rev() {
        first.extend(std::iter::repeat_n(class_pkt(&config, class), buffer));
    }
    first.extend(std::iter::repeat_n(class_pkt(&config, 1), buffer));
    episode.push_slot(first);
    // Keep OPT's heavy queues busy: class i reappears every i slots.
    let len = (buffer + m as usize).saturating_sub(k as usize);
    for t in 1..len.max(2) {
        let mut burst = Vec::new();
        for class in (m + 1)..=k {
            if t % class as usize == 0 {
                burst.push(class_pkt(&config, class));
            }
        }
        episode.push_slot(burst);
    }
    let trace = episode.repeated(episodes);
    let heavy_classes = (k - m) as usize;
    let mut opt_caps = vec![0; k as usize];
    opt_caps[0] = buffer.saturating_sub(heavy_classes + 1);
    for class in (m + 1)..=k {
        opt_caps[class as usize - 1] = 1;
    }
    // Pre-asymptotic ratio from the proof:
    // (1 + H_k − H_m) / (H_k − H_m + A / ((B − k + m)(k − m + 1))),
    // with A = B / H_k (NHDT's share for the fullest queue).
    let heavy_rate = harmonic(k) - harmonic(m);
    let a = buffer as f64 / harmonic(k);
    let denom_extra = a / (len.max(1) as f64 * f64::from(k - m + 1));
    WorkConstruction {
        name: format!("Thm3 NHDT k={k} B={buffer} m={m}"),
        target_policy: "NHDT",
        config,
        trace,
        opt_caps,
        predicted_ratio: (1.0 + heavy_rate) / (heavy_rate + denom_extra),
    }
}

fn optimal_m_nhdt(k: u32) -> u32 {
    let kf = f64::from(k);
    let m = kf - (kf / kf.ln().max(1.0)).sqrt();
    (m.round() as u32).clamp(1, k - 1)
}

/// **Theorem 4 (LQD ≥ √k).** `B x [1]` plus `B` packets of each of the `m`
/// heaviest classes; LQD balances queue *lengths*, starving the cheap class.
/// OPT keeps one of each heavy class (replenished) and `B - m` cheap ones.
pub fn lqd_work_lower_bound(k: u32, buffer: usize, episodes: usize) -> WorkConstruction {
    let config = WorkSwitchConfig::contiguous(k, buffer).expect("valid parameters");
    let m = (f64::from(k).sqrt().round() as u32).clamp(1, k - 1);
    let mut episode = Trace::new();
    let mut first = Vec::new();
    first.extend(std::iter::repeat_n(class_pkt(&config, 1), buffer));
    for j in 0..m {
        first.extend(std::iter::repeat_n(class_pkt(&config, k - j), buffer));
    }
    episode.push_slot(first);
    for t in 1..buffer {
        let mut burst = Vec::new();
        for class in (k - m + 1)..=k {
            if t % class as usize == 0 {
                burst.push(class_pkt(&config, class));
            }
        }
        episode.push_slot(burst);
    }
    let trace = episode.repeated(episodes);
    let mut opt_caps = vec![0; k as usize];
    opt_caps[0] = buffer.saturating_sub(m as usize);
    for class in (k - m + 1)..=k {
        opt_caps[class as usize - 1] = 1;
    }
    // Pre-asymptotic ratio from the proof, with
    // beta = 1/k + ... + 1/(k-m+1); converges to sqrt(k) at m = sqrt(k).
    let beta = harmonic(k) - harmonic(k - m);
    let mf = f64::from(m);
    let bf = buffer as f64;
    let predicted = 1.0 + ((mf - 1.0) / mf - mf / bf) / (1.0 / mf + (1.0 - mf / bf) * beta);
    WorkConstruction {
        name: format!("Thm4 LQD k={k} B={buffer} m={m}"),
        target_policy: "LQD",
        config,
        trace,
        opt_caps,
        predicted_ratio: predicted,
    }
}

/// **Theorem 5 (BPD ≥ H_k).** Every slot a full set of classes arrives,
/// cheapest first; BPD fills up with `1`s and never lets anything else in,
/// transmitting one packet per slot while OPT's even split transmits `~H_k`
/// packet-equivalents per slot.
pub fn bpd_lower_bound(k: u32, buffer: usize, slots: usize) -> WorkConstruction {
    let config = WorkSwitchConfig::contiguous(k, buffer).expect("valid parameters");
    let per_class = (buffer / k as usize).max(1);
    let mut trace = Trace::new();
    // Slot 0: fill both sides. Cheapest classes first, as in the proof.
    let mut first = Vec::new();
    for class in 1..=k {
        first.extend(std::iter::repeat_n(class_pkt(&config, class), buffer));
    }
    trace.push_slot(first);
    // Steady state: one packet of every class per slot keeps all queues fed.
    for _ in 1..slots {
        let burst: Vec<WorkPacket> = (1..=k).map(|c| class_pkt(&config, c)).collect();
        trace.push_slot(burst);
    }
    let opt_caps = vec![per_class; k as usize];
    WorkConstruction {
        name: format!("Thm5 BPD k={k} B={buffer}"),
        target_policy: "BPD",
        config,
        trace,
        opt_caps,
        predicted_ratio: harmonic(k),
    }
}

/// **Theorem 6 (LWD ≥ 4/3 − 6/B).** The burst `B x [1], B/4 x [2],
/// B/6 x [3], B/12 x [6]` equalises LWD's per-queue work at `B/2`, halving
/// its cheap-class inventory; OPT keeps `B − 3` cheap packets and one of
/// each heavy class (replenished at each class's service rate).
pub fn lwd_lower_bound(buffer: usize, episodes: usize) -> WorkConstruction {
    assert!(
        buffer.is_multiple_of(12),
        "Theorem 6 needs B divisible by 12"
    );
    let works = vec![
        smbm_switch::Work::new(1),
        smbm_switch::Work::new(2),
        smbm_switch::Work::new(3),
        smbm_switch::Work::new(6),
    ];
    let config = WorkSwitchConfig::new(buffer, works).expect("valid parameters");
    let pkt = |port: usize| WorkPacket::new(PortId::new(port), config.work(PortId::new(port)));
    let mut episode = Trace::new();
    let mut first = Vec::new();
    first.extend(std::iter::repeat_n(pkt(0), buffer));
    first.extend(std::iter::repeat_n(pkt(1), buffer / 4));
    first.extend(std::iter::repeat_n(pkt(2), buffer / 6));
    first.extend(std::iter::repeat_n(pkt(3), buffer / 12));
    episode.push_slot(first);
    let len = buffer.saturating_sub(3);
    for t in 1..len {
        let mut burst = Vec::new();
        for (port, period) in [(1usize, 2usize), (2, 3), (3, 6)] {
            if t % period == 0 {
                burst.push(pkt(port));
            }
        }
        episode.push_slot(burst);
    }
    let trace = episode.repeated(episodes);
    let opt_caps = vec![buffer - 3, 1, 1, 1];
    WorkConstruction {
        name: format!("Thm6 LWD B={buffer}"),
        target_policy: "LWD",
        config,
        trace,
        opt_caps,
        predicted_ratio: 4.0 / 3.0 - 6.0 / buffer as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nhst_shape() {
        let c = nhst_lower_bound(4, 12, 2);
        assert_eq!(c.config.ports(), 4);
        // Two episodes, each: 1 burst slot + 4*12 silence.
        assert_eq!(c.trace.slots(), 2 * (1 + 48));
        assert_eq!(c.trace.arrivals(), 2 * 12);
        assert_eq!(c.opt_caps, vec![0, 0, 0, 12]);
        // Z = 25/12, kZ = 25/3; NHST admits ceil(12/(25/3)) = 2 => ratio 6.
        assert!((c.predicted_ratio - 6.0).abs() < 1e-12);
        // Every packet targets the heaviest class.
        for pkt in c.trace.iter().flatten() {
            assert_eq!(pkt.work().cycles(), 4);
        }
    }

    #[test]
    fn nest_shape() {
        let c = nest_lower_bound(3, 9, 2);
        assert_eq!(c.trace.arrivals(), 18);
        assert_eq!(c.predicted_ratio, 3.0);
        assert!(c.config.is_homogeneous());
    }

    #[test]
    fn nhdt_shape() {
        let c = nhdt_lower_bound(16, 64, 1);
        assert!(c.trace.slots() >= 2);
        // First burst: the k - m heavy classes plus the cheap class, B each.
        let heavy = c.opt_caps.iter().filter(|&&cap| cap == 1).count();
        assert!(heavy >= 1);
        assert_eq!(c.trace.burst(0).len(), (heavy + 1) * 64);
        assert!(c.predicted_ratio > 1.0);
        // Heavy packets precede the cheap ones in the burst.
        let first = c.trace.burst(0);
        assert_eq!(first[0].work().cycles(), 16);
        assert_eq!(first.last().unwrap().work().cycles(), 1);
    }

    #[test]
    fn lqd_shape() {
        let c = lqd_work_lower_bound(16, 32, 1);
        // m = 4: burst has B cheap + 4 * B heavy.
        assert_eq!(c.trace.burst(0).len(), 32 * 5);
        assert_eq!(c.opt_caps[0], 28);
        assert_eq!(c.opt_caps.iter().filter(|&&x| x == 1).count(), 4);
        // Pre-asymptotic bound: strictly between 1 and sqrt(k) + 1.
        assert!(c.predicted_ratio > 1.5 && c.predicted_ratio < 5.0);
    }

    #[test]
    fn bpd_shape() {
        let c = bpd_lower_bound(4, 12, 10);
        assert_eq!(c.trace.slots(), 10);
        assert_eq!(c.trace.burst(0).len(), 4 * 12);
        assert_eq!(c.trace.burst(1).len(), 4);
        assert_eq!(c.opt_caps, vec![3, 3, 3, 3]);
        assert!((c.predicted_ratio - harmonic(4)).abs() < 1e-12);
        // Cheapest class arrives first in the initial burst.
        assert_eq!(c.trace.burst(0)[0].work().cycles(), 1);
    }

    #[test]
    fn lwd_shape() {
        let c = lwd_lower_bound(24, 2);
        assert_eq!(c.config.ports(), 4);
        assert_eq!(c.trace.burst(0).len(), 24 + 6 + 4 + 2);
        assert_eq!(c.opt_caps, vec![21, 1, 1, 1]);
        assert!((c.predicted_ratio - (4.0 / 3.0 - 0.25)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "divisible by 12")]
    fn lwd_requires_divisible_buffer() {
        let _ = lwd_lower_bound(10, 1);
    }

    #[test]
    fn optimal_m_is_sane() {
        for k in [4u32, 16, 64, 256] {
            let m = optimal_m_nhdt(k);
            assert!(m >= 1 && m < k, "k={k} m={m}");
        }
    }
}
