//! Lower-bound constructions for the heterogeneous-value model
//! (Theorems 9-11).

use smbm_switch::{PortId, Value, ValuePacket, ValueSwitchConfig};

use super::ValueConstruction;
use crate::Trace;

/// **Theorem 9 (LQD ≥ ∛k).** `B` packets of each value `1..=a` plus `B` of
/// value `k` arrive; LQD balances queue lengths, keeping only `B/(a+1)` of
/// the `k`s, while OPT dedicates almost the whole buffer to them. The cheap
/// values keep arriving so OPT's cheap ports stay busy.
pub fn lqd_value_lower_bound(k: u64, buffer: usize, episodes: usize) -> ValueConstruction {
    let a = (k as f64).cbrt().round().max(1.0) as u64;
    let ports = a as usize + 1; // ports 0..a carry values 1..=a; port a carries k.
    let config = ValueSwitchConfig::new(buffer, ports).expect("valid parameters");
    let cheap = |v: u64| ValuePacket::new(PortId::new(v as usize - 1), Value::new(v));
    let big = ValuePacket::new(PortId::new(ports - 1), Value::new(k));
    let mut episode = Trace::new();
    let mut first = Vec::new();
    for v in 1..=a {
        first.extend(std::iter::repeat_n(cheap(v), buffer));
    }
    first.extend(std::iter::repeat_n(big, buffer));
    episode.push_slot(first);
    for _ in 1..buffer {
        episode.push_slot((1..=a).map(cheap).collect());
    }
    let trace = episode.repeated(episodes);
    let mut opt_caps = vec![1; ports];
    opt_caps[ports - 1] = buffer.saturating_sub(a as usize);
    // Pre-asymptotic ratio from the proof:
    // (a(a-1)/2 + k) / (a(a-1)/2 + k/a); converges to cbrt(k) at a = cbrt(k).
    let af = a as f64;
    let kf = k as f64;
    let cheap = af * (af - 1.0) / 2.0;
    ValueConstruction {
        name: format!("Thm9 LQD k={k} B={buffer} a={a}"),
        target_policy: "LQD",
        config,
        trace,
        opt_caps,
        predicted_ratio: (cheap + kf) / (cheap + kf / af),
    }
}

/// **Greedy is k-competitive** (stated in Section IV's prelude: "fill the
/// buffer with 1s, then send in the ks"). The buffer is filled with
/// unit-value packets for one port; value-`k` packets for another port
/// follow and are all lost to the full buffer. Silence drains, repeat.
pub fn greedy_value_lower_bound(k: u64, buffer: usize, episodes: usize) -> ValueConstruction {
    let config = ValueSwitchConfig::new(buffer, 2).expect("valid parameters");
    let ones = ValuePacket::new(PortId::new(0), Value::new(1));
    let ks = ValuePacket::new(PortId::new(1), Value::new(k));
    let mut episode = Trace::new();
    let mut first = Vec::new();
    first.extend(std::iter::repeat_n(ones, buffer));
    first.extend(std::iter::repeat_n(ks, buffer));
    episode.push_slot(first);
    episode.push_silence(buffer);
    let trace = episode.repeated(episodes);
    // OPT dedicates the whole buffer to the k-packets.
    let opt_caps = vec![0, buffer];
    ValueConstruction {
        name: format!("Greedy k={k} B={buffer}"),
        target_policy: "GREEDY",
        config,
        trace,
        opt_caps,
        predicted_ratio: k as f64,
    }
}

/// **Theorem 10 (MVD ≥ (m−1)/2).** Every slot all values `1..=m` arrive in
/// bulk; MVD hoards only the top class (one port active) while OPT's even
/// split keeps all `m` ports busy.
///
/// The predicted ratio is the even-split yardstick's exact value
/// `(1 + ... + m)/m = (m+1)/2`; the paper states the slightly looser
/// constant `(m−1)/2` — both are `Θ(m)`.
pub fn mvd_lower_bound(k: u64, buffer: usize, slots: usize) -> ValueConstruction {
    let m = k.min(buffer as u64);
    let ports = m as usize;
    let config = ValueSwitchConfig::new(buffer, ports).expect("valid parameters");
    let pkt = |v: u64| ValuePacket::new(PortId::new(v as usize - 1), Value::new(v));
    let mut trace = Trace::new();
    let mut first = Vec::new();
    for v in 1..=m {
        first.extend(std::iter::repeat_n(pkt(v), buffer));
    }
    trace.push_slot(first);
    for _ in 1..slots {
        trace.push_slot((1..=m).map(pkt).collect());
    }
    let per_class = (buffer / ports).max(1);
    let opt_caps = vec![per_class; ports];
    ValueConstruction {
        name: format!("Thm10 MVD k={k} B={buffer} m={m}"),
        target_policy: "MVD",
        config,
        trace,
        opt_caps,
        predicted_ratio: (m as f64 + 1.0) / 2.0,
    }
}

/// **Theorem 11 (MRD ≥ 4/3, value==port).** The burst `B` each of values
/// 1, 2, 3, 6 balances MRD's size-value ratios at `|Q_v| = v·B/12`, halving
/// its stock of `6`s; OPT hoards `B − 3` of them. Values 1, 2, 3 keep
/// arriving so OPT's cheap ports stay busy; the `6`s stop.
pub fn mrd_lower_bound(buffer: usize, episodes: usize) -> ValueConstruction {
    assert!(
        buffer.is_multiple_of(12),
        "Theorem 11 needs B divisible by 12"
    );
    let values = [1u64, 2, 3, 6];
    let config = ValueSwitchConfig::new(buffer, 4).expect("valid parameters");
    let pkt = |i: usize| ValuePacket::new(PortId::new(i), Value::new(values[i]));
    let mut episode = Trace::new();
    let mut first = Vec::new();
    for i in 0..4 {
        first.extend(std::iter::repeat_n(pkt(i), buffer));
    }
    episode.push_slot(first);
    for _ in 1..buffer.saturating_sub(3) {
        episode.push_slot(vec![pkt(0), pkt(1), pkt(2)]);
    }
    let trace = episode.repeated(episodes);
    let opt_caps = vec![1, 1, 1, buffer - 3];
    ValueConstruction {
        name: format!("Thm11 MRD B={buffer}"),
        target_policy: "MRD",
        config,
        trace,
        opt_caps,
        predicted_ratio: 4.0 / 3.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lqd_value_shape() {
        let c = lqd_value_lower_bound(27, 30, 1);
        // a = 3: ports 0..2 carry 1..3, port 3 carries 27.
        assert_eq!(c.config.ports(), 4);
        assert_eq!(c.trace.burst(0).len(), 4 * 30);
        assert_eq!(c.opt_caps, vec![1, 1, 1, 27]);
        // a = 3: (3 + 27) / (3 + 9) = 2.5, the proof's exact expression.
        assert!((c.predicted_ratio - 2.5).abs() < 1e-12);
        // Replenishment slots carry one of each cheap value.
        assert_eq!(c.trace.burst(1).len(), 3);
        assert!(c.trace.burst(1).iter().all(|p| p.value().get() <= 3));
    }

    #[test]
    fn lqd_value_episode_length() {
        let c = lqd_value_lower_bound(8, 10, 3);
        assert_eq!(c.trace.slots(), 3 * 10);
    }

    #[test]
    fn greedy_shape() {
        let c = greedy_value_lower_bound(10, 6, 2);
        assert_eq!(c.config.ports(), 2);
        assert_eq!(c.trace.burst(0).len(), 12);
        assert_eq!(c.opt_caps, vec![0, 6]);
        assert_eq!(c.predicted_ratio, 10.0);
        // Unit packets arrive strictly before the valuable ones.
        assert!(c.trace.burst(0)[..6].iter().all(|p| p.value().get() == 1));
    }

    #[test]
    fn mvd_shape() {
        let c = mvd_lower_bound(5, 20, 8);
        assert_eq!(c.config.ports(), 5);
        assert_eq!(c.trace.slots(), 8);
        assert_eq!(c.trace.burst(0).len(), 5 * 20);
        assert_eq!(c.opt_caps, vec![4; 5]);
        assert_eq!(c.predicted_ratio, 3.0); // (m + 1) / 2 for m = 5
    }

    #[test]
    fn mvd_m_clamped_by_buffer() {
        let c = mvd_lower_bound(100, 8, 4);
        assert_eq!(c.config.ports(), 8);
    }

    #[test]
    fn mrd_shape() {
        let c = mrd_lower_bound(24, 2);
        assert_eq!(c.config.ports(), 4);
        assert_eq!(c.trace.burst(0).len(), 4 * 24);
        assert_eq!(c.opt_caps, vec![1, 1, 1, 21]);
        assert!((c.predicted_ratio - 4.0 / 3.0).abs() < 1e-12);
        // Value 6 never arrives after the burst within an episode.
        for t in 1..21 {
            assert!(c.trace.burst(t).iter().all(|p| p.value().get() < 6));
        }
    }

    #[test]
    #[should_panic(expected = "divisible by 12")]
    fn mrd_requires_divisible_buffer() {
        let _ = mrd_lower_bound(10, 1);
    }

    #[test]
    fn value_port_mapping_is_consistent() {
        let c = mvd_lower_bound(4, 8, 2);
        for pkt in c.trace.iter().flatten() {
            assert_eq!(pkt.value().get(), pkt.port().index() as u64 + 1);
        }
    }
}
