//! Adversarial arrival constructions from the paper's lower-bound proofs.
//!
//! Each theorem's proof builds an explicit arrival sequence together with a
//! description of what OPT admits on it. We reify both: the arrival sequence
//! as a [`Trace`], and the proof's OPT as a vector of static per-queue
//! admission caps (executable via `smbm_core::CappedWork` /
//! `smbm_core::CappedValue`). Running the target policy and the scripted OPT
//! on the same trace reproduces each theorem's bound empirically.

mod value;
mod work;

pub use value::{
    greedy_value_lower_bound, lqd_value_lower_bound, mrd_lower_bound, mvd_lower_bound,
};
pub use work::{
    bpd_lower_bound, lqd_work_lower_bound, lwd_lower_bound, nest_lower_bound, nhdt_lower_bound,
    nhst_lower_bound,
};

use smbm_switch::{ValuePacket, ValueSwitchConfig, WorkPacket, WorkSwitchConfig};

use crate::Trace;

/// A packaged lower-bound instance for the heterogeneous-processing model.
#[derive(Debug, Clone)]
pub struct WorkConstruction {
    /// Which theorem and parameters this instance realizes.
    pub name: String,
    /// Name of the policy the construction targets (registry key).
    pub target_policy: &'static str,
    /// Switch configuration (B and per-port works).
    pub config: WorkSwitchConfig,
    /// The adversarial arrival sequence.
    pub trace: Trace<WorkPacket>,
    /// Per-queue admission caps scripting the proof's OPT.
    pub opt_caps: Vec<usize>,
    /// The theorem's (asymptotic) competitive-ratio bound at these
    /// parameters.
    pub predicted_ratio: f64,
}

/// A packaged lower-bound instance for the heterogeneous-value model.
#[derive(Debug, Clone)]
pub struct ValueConstruction {
    /// Which theorem and parameters this instance realizes.
    pub name: String,
    /// Name of the policy the construction targets (registry key).
    pub target_policy: &'static str,
    /// Switch configuration (B and port count).
    pub config: ValueSwitchConfig,
    /// The adversarial arrival sequence.
    pub trace: Trace<ValuePacket>,
    /// Per-queue admission caps scripting the proof's OPT.
    pub opt_caps: Vec<usize>,
    /// The theorem's (asymptotic) competitive-ratio bound at these
    /// parameters.
    pub predicted_ratio: f64,
}

/// The `m`-th harmonic number.
pub(crate) fn harmonic(m: u32) -> f64 {
    (1..=m).map(|i| 1.0 / f64::from(i)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(3) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
    }
}
