//! Markov-modulated Poisson (on-off) traffic sources.
//!
//! The paper's simulations generate traffic "as the interleaving of 500
//! independent sources", each an on-off bursty process: a two-state Markov
//! chain that emits Poisson(`lambda_on`) packets per slot while "on" and
//! nothing while "off" (Section V-A).

use rand::{Rng, RngExt};

use crate::dist::poisson::ParamError;
use crate::Poisson;

/// Parameters of one on-off MMPP source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmppParams {
    /// Mean packets emitted per slot while in the "on" state.
    pub lambda_on: f64,
    /// Per-slot probability of switching on -> off.
    pub p_on_to_off: f64,
    /// Per-slot probability of switching off -> on.
    pub p_off_to_on: f64,
}

impl MmppParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `lambda_on` is not positive or either
    /// transition probability lies outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), ParamError> {
        Poisson::new(self.lambda_on)?;
        for p in [self.p_on_to_off, self.p_off_to_on] {
            if !p.is_finite() || p <= 0.0 || p > 1.0 {
                return Err(ParamError::new(
                    "MMPP transition probabilities must lie in (0, 1]",
                ));
            }
        }
        Ok(())
    }

    /// The stationary probability of the "on" state,
    /// `p_off_to_on / (p_off_to_on + p_on_to_off)`.
    pub fn on_fraction(&self) -> f64 {
        self.p_off_to_on / (self.p_off_to_on + self.p_on_to_off)
    }

    /// The long-run mean packets per slot, `lambda_on * on_fraction`.
    pub fn mean_rate(&self) -> f64 {
        self.lambda_on * self.on_fraction()
    }
}

impl Default for MmppParams {
    /// Moderately bursty defaults: mean on-period 10 slots, off-period 30
    /// slots, 2 packets per on-slot (long-run rate 0.5 packets/slot).
    fn default() -> Self {
        MmppParams {
            lambda_on: 2.0,
            p_on_to_off: 0.1,
            p_off_to_on: 1.0 / 30.0,
        }
    }
}

/// One on-off source.
#[derive(Debug, Clone)]
pub struct MmppSource {
    params: MmppParams,
    poisson: Poisson,
    on: bool,
}

impl MmppSource {
    /// Creates a source in the given initial state.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for invalid parameters.
    pub fn new(params: MmppParams, initially_on: bool) -> Result<Self, ParamError> {
        params.validate()?;
        Ok(MmppSource {
            poisson: Poisson::new(params.lambda_on)?,
            params,
            on: initially_on,
        })
    }

    /// Creates a source whose initial state is drawn from the stationary
    /// distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for invalid parameters.
    pub fn stationary<R: Rng + ?Sized>(
        params: MmppParams,
        rng: &mut R,
    ) -> Result<Self, ParamError> {
        let on = rng.random::<f64>() < params.on_fraction();
        Self::new(params, on)
    }

    /// The source parameters.
    pub fn params(&self) -> &MmppParams {
        &self.params
    }

    /// Whether the source is currently "on".
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Advances one slot: performs the state transition, then emits packets
    /// according to the (possibly new) state. Returns the number of packets
    /// emitted this slot.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let flip: f64 = rng.random();
        if self.on {
            if flip < self.params.p_on_to_off {
                self.on = false;
            }
        } else if flip < self.params.p_off_to_on {
            self.on = true;
        }
        if self.on {
            self.poisson.sample(rng)
        } else {
            0
        }
    }
}

/// A bank of independent sources whose emissions are interleaved slot by
/// slot, as in the paper's setup.
#[derive(Debug, Clone)]
pub struct MmppBank {
    sources: Vec<MmppSource>,
}

impl MmppBank {
    /// Creates `n` identical-parameter sources, initial states drawn from
    /// the stationary distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for invalid parameters.
    pub fn stationary<R: Rng + ?Sized>(
        n: usize,
        params: MmppParams,
        rng: &mut R,
    ) -> Result<Self, ParamError> {
        let mut sources = Vec::with_capacity(n);
        for _ in 0..n {
            sources.push(MmppSource::stationary(params, rng)?);
        }
        Ok(MmppBank { sources })
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when the bank has no sources.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Advances all sources one slot and returns the total emission count.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        self.sources.iter_mut().map(|s| s.step(rng)).sum()
    }

    /// The long-run mean packets per slot summed over sources.
    pub fn mean_rate(&self) -> f64 {
        self.sources.iter().map(|s| s.params().mean_rate()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_validate() {
        assert!(MmppParams::default().validate().is_ok());
        let bad = MmppParams {
            lambda_on: 0.0,
            ..MmppParams::default()
        };
        assert!(bad.validate().is_err());
        let bad = MmppParams {
            p_on_to_off: 0.0,
            ..MmppParams::default()
        };
        assert!(bad.validate().is_err());
        let bad = MmppParams {
            p_off_to_on: 1.5,
            ..MmppParams::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn stationary_fraction_formula() {
        let p = MmppParams {
            lambda_on: 1.0,
            p_on_to_off: 0.2,
            p_off_to_on: 0.1,
        };
        assert!((p.on_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.mean_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn off_source_emits_nothing_until_switch() {
        let params = MmppParams {
            lambda_on: 5.0,
            p_on_to_off: 0.5,
            p_off_to_on: 1e-9, // effectively never turns on
        };
        let mut s = MmppSource::new(params, false).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..100 {
            assert_eq!(s.step(&mut rng), 0);
        }
        assert!(!s.is_on());
    }

    #[test]
    fn long_run_rate_matches_theory() {
        let params = MmppParams {
            lambda_on: 2.0,
            p_on_to_off: 0.1,
            p_off_to_on: 0.1,
        };
        let mut s = MmppSource::new(params, true).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        let slots = 200_000;
        let total: u64 = (0..slots).map(|_| s.step(&mut rng)).sum();
        let rate = total as f64 / slots as f64;
        assert!(
            (rate - params.mean_rate()).abs() < 0.05,
            "rate {rate} vs {}",
            params.mean_rate()
        );
    }

    #[test]
    fn source_is_bursty() {
        // Emissions cluster: the variance of per-slot counts exceeds the
        // mean (over-dispersion relative to plain Poisson).
        let params = MmppParams {
            lambda_on: 4.0,
            p_on_to_off: 0.05,
            p_off_to_on: 0.05,
        };
        let mut s = MmppSource::new(params, true).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let xs: Vec<f64> = (0..100_000).map(|_| s.step(&mut rng) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(var > 1.5 * mean, "var {var} vs mean {mean}: not bursty");
    }

    #[test]
    fn bank_aggregates_sources() {
        let mut rng = StdRng::seed_from_u64(34);
        let bank = MmppBank::stationary(10, MmppParams::default(), &mut rng).unwrap();
        assert_eq!(bank.len(), 10);
        assert!(!bank.is_empty());
        assert!((bank.mean_rate() - 10.0 * MmppParams::default().mean_rate()).abs() < 1e-9);
    }

    #[test]
    fn bank_step_sums_emissions() {
        let mut rng = StdRng::seed_from_u64(35);
        let mut bank = MmppBank::stationary(50, MmppParams::default(), &mut rng).unwrap();
        let slots = 20_000;
        let total: u64 = (0..slots).map(|_| bank.step(&mut rng)).sum();
        let rate = total as f64 / slots as f64;
        let expect = bank.mean_rate();
        assert!(
            (rate - expect).abs() < 0.25 * expect,
            "rate {rate} vs {expect}"
        );
    }
}
