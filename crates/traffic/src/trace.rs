//! Arrival traces: per-slot bursts of packets, with record/replay support.

use std::fmt;
use std::str::FromStr;

use smbm_switch::{PortId, Value, ValuePacket, Work, WorkPacket};

/// An arrival trace: for each time slot, the packets offered during the
/// arrival phase, in arrival order (the model serves input ports in a fixed
/// order; the order within the slot is therefore part of the trace).
///
/// `Trace<WorkPacket>` drives the heterogeneous-processing model,
/// `Trace<ValuePacket>` the heterogeneous-value model.
///
/// ```
/// use smbm_switch::{PortId, Work, WorkPacket};
/// use smbm_traffic::Trace;
///
/// let mut trace = Trace::new();
/// trace.push_slot(vec![WorkPacket::new(PortId::new(0), Work::new(2))]);
/// trace.push_slot(vec![]);
/// assert_eq!(trace.slots(), 2);
/// assert_eq!(trace.arrivals(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace<P> {
    slots: Vec<Vec<P>>,
}

impl<P> Trace<P> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { slots: Vec::new() }
    }

    /// Creates a trace from per-slot bursts.
    pub fn from_slots(slots: Vec<Vec<P>>) -> Self {
        Trace { slots }
    }

    /// Appends one slot's burst (possibly empty).
    pub fn push_slot(&mut self, burst: Vec<P>) {
        self.slots.push(burst);
    }

    /// Appends `n` arrival-free slots (silence, letting buffers drain).
    pub fn push_silence(&mut self, n: usize) {
        for _ in 0..n {
            self.slots.push(Vec::new());
        }
    }

    /// Appends a packet to the *last* slot (creating slot 0 if empty).
    pub fn push_arrival(&mut self, pkt: P) {
        if self.slots.is_empty() {
            self.slots.push(Vec::new());
        }
        self.slots
            .last_mut()
            .expect("just ensured non-empty")
            .push(pkt);
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Total number of packets across all slots.
    pub fn arrivals(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// The burst arriving during `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.slots()`.
    pub fn burst(&self, slot: usize) -> &[P] {
        &self.slots[slot]
    }

    /// Iterates over per-slot bursts.
    pub fn iter(&self) -> impl Iterator<Item = &[P]> {
        self.slots.iter().map(Vec::as_slice)
    }

    /// The underlying per-slot bursts.
    pub fn as_slots(&self) -> &[Vec<P>] {
        &self.slots
    }

    /// Flattens the trace into arrival-ordered packet batches of at most
    /// `max_packets` each, coalescing small bursts and splitting large ones
    /// (empty slots contribute nothing). Slot boundaries are *not*
    /// preserved: this feeds the live runtime's free-running ingress rings,
    /// where batching amortizes per-transfer cost. Lockstep (slot-exact)
    /// consumers should iterate [`Trace::iter`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `max_packets` is zero.
    pub fn batches(&self, max_packets: usize) -> Batches<'_, P> {
        assert!(max_packets > 0, "batch size must be positive");
        Batches {
            slots: &self.slots,
            slot: 0,
            offset: 0,
            max_packets,
        }
    }

    /// Consumes the trace, returning the per-slot bursts.
    pub fn into_slots(self) -> Vec<Vec<P>> {
        self.slots
    }

    /// Concatenates another trace after this one.
    pub fn extend_with(&mut self, other: Trace<P>) {
        self.slots.extend(other.slots);
    }

    /// Repeats the whole trace `times` times (including the original).
    pub fn repeated(self, times: usize) -> Self
    where
        P: Clone,
    {
        let mut slots = Vec::with_capacity(self.slots.len() * times);
        for _ in 0..times {
            slots.extend(self.slots.iter().cloned());
        }
        Trace { slots }
    }

    /// Randomly thins the trace: each packet of slot `t` is kept with
    /// probability `keep(t)` (clamped to `[0, 1]`). Slot structure is
    /// preserved. Useful for imposing time-varying (e.g. diurnal) load
    /// envelopes on a stationary trace.
    ///
    /// ```
    /// use smbm_switch::{PortId, Work, WorkPacket};
    /// use smbm_traffic::Trace;
    ///
    /// let mut t = Trace::new();
    /// t.push_slot(vec![WorkPacket::new(PortId::new(0), Work::new(1)); 100]);
    /// let halved = t.thin(|_| 0.5, 7);
    /// assert!(halved.arrivals() > 20 && halved.arrivals() < 80);
    /// ```
    pub fn thin<F: Fn(usize) -> f64>(&self, keep: F, seed: u64) -> Self
    where
        P: Clone,
    {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let slots = self
            .slots
            .iter()
            .enumerate()
            .map(|(t, burst)| {
                let p = keep(t).clamp(0.0, 1.0);
                burst
                    .iter()
                    .filter(|_| rng.random::<f64>() < p)
                    .cloned()
                    .collect()
            })
            .collect();
        Trace { slots }
    }
}

/// Iterator over coalesced packet batches, created by [`Trace::batches`].
#[derive(Debug, Clone)]
pub struct Batches<'a, P> {
    slots: &'a [Vec<P>],
    slot: usize,
    offset: usize,
    max_packets: usize,
}

impl<P: Clone> Iterator for Batches<'_, P> {
    type Item = Vec<P>;

    fn next(&mut self) -> Option<Vec<P>> {
        let mut batch = Vec::new();
        while self.slot < self.slots.len() {
            let burst = &self.slots[self.slot];
            let take = (self.max_packets - batch.len()).min(burst.len() - self.offset);
            batch.extend_from_slice(&burst[self.offset..self.offset + take]);
            self.offset += take;
            if self.offset == burst.len() {
                self.slot += 1;
                self.offset = 0;
            }
            if batch.len() == self.max_packets {
                return Some(batch);
            }
        }
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    }
}

impl<P> FromIterator<Vec<P>> for Trace<P> {
    fn from_iter<T: IntoIterator<Item = Vec<P>>>(iter: T) -> Self {
        Trace {
            slots: iter.into_iter().collect(),
        }
    }
}

/// Error parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    what: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ParseTraceError {}

/// A packet that can be serialized in the line-oriented trace format.
///
/// The format is one slot per line: whitespace-separated `port:label` pairs
/// (`label` is the work in cycles or the value), with `#` comments and blank
/// lines for empty slots preserved as empty bursts.
pub trait TracePacket: Sized {
    /// Renders the packet as `port:label` (one-based port, matching
    /// [`PortId`]'s display convention).
    fn to_field(&self) -> String;

    /// Parses a `port:label` field.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    fn from_field(field: &str) -> Result<Self, String>;
}

fn split_field(field: &str) -> Result<(usize, u64), String> {
    let (port, label) = field
        .split_once(':')
        .ok_or_else(|| format!("expected port:label, got {field:?}"))?;
    let port = usize::from_str(port).map_err(|e| format!("bad port in {field:?}: {e}"))?;
    if port == 0 {
        return Err(format!("ports are one-based, got 0 in {field:?}"));
    }
    let label = u64::from_str(label).map_err(|e| format!("bad label in {field:?}: {e}"))?;
    Ok((port - 1, label))
}

impl TracePacket for WorkPacket {
    fn to_field(&self) -> String {
        format!("{}:{}", self.port().index() + 1, self.work().cycles())
    }

    fn from_field(field: &str) -> Result<Self, String> {
        let (port, work) = split_field(field)?;
        let work = u32::try_from(work).map_err(|_| format!("work too large in {field:?}"))?;
        Ok(WorkPacket::new(PortId::new(port), Work::new(work)))
    }
}

impl TracePacket for ValuePacket {
    fn to_field(&self) -> String {
        format!("{}:{}", self.port().index() + 1, self.value().get())
    }

    fn from_field(field: &str) -> Result<Self, String> {
        let (port, value) = split_field(field)?;
        Ok(ValuePacket::new(PortId::new(port), Value::new(value)))
    }
}

impl<P: TracePacket> Trace<P> {
    /// Serializes the trace to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for burst in &self.slots {
            let fields: Vec<String> = burst.iter().map(TracePacket::to_field).collect();
            out.push_str(&fields.join(" "));
            out.push('\n');
        }
        out
    }

    /// Parses a trace from the line-oriented text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] naming the offending line.
    pub fn from_text(text: &str) -> Result<Self, ParseTraceError> {
        let mut slots = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if let Some(stripped) = line.split_once('#') {
                // Comments run to end of line.
                return_line(&mut slots, stripped.0, i)?;
                continue;
            }
            return_line(&mut slots, line, i)?;
        }
        return Ok(Trace { slots });

        fn return_line<P: TracePacket>(
            slots: &mut Vec<Vec<P>>,
            line: &str,
            i: usize,
        ) -> Result<(), ParseTraceError> {
            let mut burst = Vec::new();
            for field in line.split_whitespace() {
                let pkt =
                    P::from_field(field).map_err(|what| ParseTraceError { line: i + 1, what })?;
                burst.push(pkt);
            }
            slots.push(burst);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(port: usize, w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(port), Work::new(w))
    }

    fn vp(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(v))
    }

    #[test]
    fn build_and_measure() {
        let mut t = Trace::new();
        t.push_slot(vec![wp(0, 1), wp(1, 2)]);
        t.push_silence(3);
        t.push_arrival(wp(0, 1));
        assert_eq!(t.slots(), 4);
        assert_eq!(t.arrivals(), 3);
        assert_eq!(t.burst(0).len(), 2);
        assert_eq!(t.burst(3), &[wp(0, 1)]);
    }

    #[test]
    fn push_arrival_creates_first_slot() {
        let mut t = Trace::new();
        t.push_arrival(wp(0, 1));
        assert_eq!(t.slots(), 1);
        assert_eq!(t.arrivals(), 1);
    }

    #[test]
    fn repeated_concatenates() {
        let mut t = Trace::new();
        t.push_slot(vec![wp(0, 1)]);
        t.push_silence(1);
        let r = t.repeated(3);
        assert_eq!(r.slots(), 6);
        assert_eq!(r.arrivals(), 3);
    }

    #[test]
    fn extend_with_appends() {
        let mut a = Trace::new();
        a.push_slot(vec![wp(0, 1)]);
        let mut b = Trace::new();
        b.push_slot(vec![wp(1, 2), wp(1, 2)]);
        a.extend_with(b);
        assert_eq!(a.slots(), 2);
        assert_eq!(a.arrivals(), 3);
    }

    #[test]
    fn thin_zero_and_one_are_extremes() {
        let mut t = Trace::new();
        for _ in 0..5 {
            t.push_slot(vec![wp(0, 1); 10]);
        }
        assert_eq!(t.thin(|_| 0.0, 1).arrivals(), 0);
        assert_eq!(t.thin(|_| 1.0, 1).arrivals(), 50);
        assert_eq!(t.thin(|_| 1.0, 1).slots(), 5);
    }

    #[test]
    fn thin_respects_per_slot_envelope() {
        let mut t = Trace::new();
        for _ in 0..200 {
            t.push_slot(vec![wp(0, 1); 10]);
        }
        // Keep everything in even slots, nothing in odd slots.
        let thinned = t.thin(|slot| if slot % 2 == 0 { 1.0 } else { 0.0 }, 2);
        assert_eq!(thinned.arrivals(), 1000);
        assert!(thinned.burst(1).is_empty());
        assert_eq!(thinned.burst(0).len(), 10);
    }

    #[test]
    fn batches_coalesce_and_split_preserving_order() {
        let mut t = Trace::new();
        t.push_slot(vec![wp(0, 1), wp(1, 2)]);
        t.push_silence(2);
        t.push_slot(vec![wp(2, 3)]);
        t.push_slot(vec![wp(3, 4); 5]);
        let batches: Vec<Vec<WorkPacket>> = t.batches(4).collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0], vec![wp(0, 1), wp(1, 2), wp(2, 3), wp(3, 4)]);
        assert_eq!(batches[1], vec![wp(3, 4); 4]);
        let flat: Vec<WorkPacket> = t.batches(4).flatten().collect();
        let expected: Vec<WorkPacket> = t.iter().flatten().copied().collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn batches_of_empty_trace_are_empty() {
        let t: Trace<WorkPacket> = Trace::new();
        assert_eq!(t.batches(8).count(), 0);
        let mut silent: Trace<WorkPacket> = Trace::new();
        silent.push_silence(10);
        assert_eq!(silent.batches(8).count(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        let t: Trace<WorkPacket> = Trace::new();
        let _ = t.batches(0);
    }

    #[test]
    fn work_trace_roundtrips_through_text() {
        let mut t = Trace::new();
        t.push_slot(vec![wp(0, 1), wp(2, 5)]);
        t.push_slot(vec![]);
        t.push_slot(vec![wp(1, 3)]);
        let text = t.to_text();
        let back: Trace<WorkPacket> = Trace::from_text(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn value_trace_roundtrips_through_text() {
        let mut t = Trace::new();
        t.push_slot(vec![vp(0, 10), vp(1, 2)]);
        t.push_slot(vec![vp(3, 7)]);
        let back: Trace<ValuePacket> = Trace::from_text(&t.to_text()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn text_format_is_one_based() {
        let mut t = Trace::new();
        t.push_slot(vec![wp(0, 4)]);
        assert_eq!(t.to_text(), "1:4\n");
    }

    #[test]
    fn parse_accepts_comments_and_blank_lines() {
        let text = "1:2 2:3 # burst\n\n# a comment-only line is an empty slot\n1:1\n";
        let t: Trace<WorkPacket> = Trace::from_text(text).unwrap();
        assert_eq!(t.slots(), 4);
        assert_eq!(t.burst(0).len(), 2);
        assert_eq!(t.burst(1).len(), 0);
        assert_eq!(t.burst(2).len(), 0);
        assert_eq!(t.burst(3).len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_fields() {
        let bad = ["junk", "0:1", "1:", ":2", "1:notanumber"];
        for b in bad {
            let r: Result<Trace<WorkPacket>, _> = Trace::from_text(b);
            let err = r.unwrap_err();
            assert_eq!(err.line, 1, "{b}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn from_iterator() {
        let t: Trace<WorkPacket> = vec![vec![wp(0, 1)], vec![]].into_iter().collect();
        assert_eq!(t.slots(), 2);
    }
}
