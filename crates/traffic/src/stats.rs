//! Descriptive statistics of arrival traces: offered load, burstiness, and
//! per-port composition — the numbers EXPERIMENTS.md reports alongside each
//! run and `smbm trace-stats` prints.

use std::fmt;

use smbm_switch::{ValuePacket, WorkPacket};

use crate::Trace;

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of slots.
    pub slots: usize,
    /// Total packets offered.
    pub arrivals: usize,
    /// Largest single-slot burst.
    pub peak_burst: usize,
    /// Mean packets per slot.
    pub mean_rate: f64,
    /// Index of dispersion of per-slot counts (variance / mean); 1 for
    /// Poisson, larger for bursty on-off traffic.
    pub dispersion: f64,
    /// Packets per output port, indexed by port.
    pub per_port: Vec<usize>,
    /// Total offered work in cycles (work traces) or value (value traces).
    pub total_weight: u64,
}

impl TraceStats {
    fn from_counts(counts: &[usize], per_port: Vec<usize>, total_weight: u64) -> Self {
        let slots = counts.len();
        let arrivals: usize = counts.iter().sum();
        let peak_burst = counts.iter().copied().max().unwrap_or(0);
        let mean = if slots == 0 {
            0.0
        } else {
            arrivals as f64 / slots as f64
        };
        let variance = if slots == 0 {
            0.0
        } else {
            counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / slots as f64
        };
        let dispersion = if mean > 0.0 { variance / mean } else { 0.0 };
        TraceStats {
            slots,
            arrivals,
            peak_burst,
            mean_rate: mean,
            dispersion,
            per_port,
            total_weight,
        }
    }

    /// The fraction of traffic destined to `port` (zero when empty).
    pub fn port_share(&self, port: usize) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.per_port.get(port).copied().unwrap_or(0) as f64 / self.arrivals as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "slots={} arrivals={} peak_burst={} mean_rate={:.3} dispersion={:.3} total_weight={}",
            self.slots,
            self.arrivals,
            self.peak_burst,
            self.mean_rate,
            self.dispersion,
            self.total_weight
        )?;
        for (i, &n) in self.per_port.iter().enumerate() {
            writeln!(
                f,
                "  port#{}: {} packets ({:.1}%)",
                i + 1,
                n,
                100.0 * self.port_share(i)
            )?;
        }
        Ok(())
    }
}

/// Trace types whose statistics can be summarized.
pub trait Summarize {
    /// Computes [`TraceStats`] in one pass over the trace.
    fn stats(&self) -> TraceStats;
}

impl Summarize for Trace<WorkPacket> {
    fn stats(&self) -> TraceStats {
        let counts: Vec<usize> = self.iter().map(<[WorkPacket]>::len).collect();
        let mut per_port = Vec::new();
        let mut weight = 0u64;
        for pkt in self.iter().flatten() {
            let i = pkt.port().index();
            if per_port.len() <= i {
                per_port.resize(i + 1, 0);
            }
            per_port[i] += 1;
            weight += pkt.work().as_u64();
        }
        TraceStats::from_counts(&counts, per_port, weight)
    }
}

impl Summarize for Trace<ValuePacket> {
    fn stats(&self) -> TraceStats {
        let counts: Vec<usize> = self.iter().map(<[ValuePacket]>::len).collect();
        let mut per_port = Vec::new();
        let mut weight = 0u64;
        for pkt in self.iter().flatten() {
            let i = pkt.port().index();
            if per_port.len() <= i {
                per_port.resize(i + 1, 0);
            }
            per_port[i] += 1;
            weight += pkt.value().get();
        }
        TraceStats::from_counts(&counts, per_port, weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_switch::{PortId, Value, Work};

    fn wp(port: usize, w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(port), Work::new(w))
    }

    #[test]
    fn empty_trace_stats() {
        let t: Trace<WorkPacket> = Trace::new();
        let s = t.stats();
        assert_eq!(s.slots, 0);
        assert_eq!(s.arrivals, 0);
        assert_eq!(s.mean_rate, 0.0);
        assert_eq!(s.dispersion, 0.0);
        assert!(s.per_port.is_empty());
    }

    #[test]
    fn basic_work_stats() {
        let mut t = Trace::new();
        t.push_slot(vec![wp(0, 1), wp(2, 3)]);
        t.push_slot(vec![]);
        t.push_slot(vec![wp(0, 1), wp(0, 1), wp(1, 2), wp(2, 3)]);
        let s = t.stats();
        assert_eq!(s.slots, 3);
        assert_eq!(s.arrivals, 6);
        assert_eq!(s.peak_burst, 4);
        assert_eq!(s.mean_rate, 2.0);
        assert_eq!(s.per_port, vec![3, 1, 2]);
        assert_eq!(s.total_weight, 1 + 3 + 1 + 1 + 2 + 3);
        assert!((s.port_share(0) - 0.5).abs() < 1e-12);
        assert_eq!(s.port_share(9), 0.0);
    }

    #[test]
    fn dispersion_detects_burstiness() {
        // Constant rate: variance 0 -> dispersion 0.
        let mut flat = Trace::new();
        for _ in 0..10 {
            flat.push_slot(vec![wp(0, 1), wp(0, 1)]);
        }
        assert_eq!(flat.stats().dispersion, 0.0);
        // All packets in one slot: strongly over-dispersed.
        let mut bursty = Trace::new();
        bursty.push_slot(vec![wp(0, 1); 20]);
        bursty.push_silence(9);
        assert!(bursty.stats().dispersion > 5.0);
    }

    #[test]
    fn value_stats_weight_is_value() {
        let mut t = Trace::new();
        t.push_slot(vec![
            ValuePacket::new(PortId::new(0), Value::new(7)),
            ValuePacket::new(PortId::new(1), Value::new(2)),
        ]);
        let s = t.stats();
        assert_eq!(s.total_weight, 9);
        assert_eq!(s.per_port, vec![1, 1]);
    }

    #[test]
    fn display_renders_per_port_lines() {
        let mut t = Trace::new();
        t.push_slot(vec![wp(1, 2)]);
        let text = t.stats().to_string();
        assert!(text.contains("arrivals=1"));
        assert!(text.contains("port#2: 1 packets"));
    }

    #[test]
    fn mmpp_traces_are_overdispersed() {
        use crate::{MmppScenario, PortMix};
        let cfg = smbm_switch::WorkSwitchConfig::contiguous(4, 16).unwrap();
        let t = MmppScenario {
            sources: 10,
            slots: 5_000,
            seed: 9,
            ..Default::default()
        }
        .work_trace(&cfg, &PortMix::Uniform)
        .unwrap();
        let s = t.stats();
        assert!(
            s.dispersion > 1.2,
            "MMPP should be burstier than Poisson: {}",
            s.dispersion
        );
    }
}
