//! A tiny dependency-free argument parser: `--key value` flags plus
//! positional arguments.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Flags the `smbm` commands treat as presence-only switches (no value).
pub const SWITCHES: &[&str] = &["profile", "lossy", "json"];

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
    switches: BTreeSet<String>,
}

/// Error parsing or interpreting arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--flag` appeared without a value.
    MissingValue(String),
    /// A flag's value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Raw value.
        value: String,
    },
    /// An unknown flag was supplied.
    UnknownFlag(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "--{flag} requires a value"),
            ArgError::BadValue { flag, value } => {
                write!(f, "--{flag} got unparsable value {value:?}")
            }
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag --{flag}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an iterator of raw arguments. Flags are `--name value`;
    /// everything else is positional.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingValue`] for a trailing `--flag`.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        Self::parse_with_switches(raw, SWITCHES)
    }

    /// Like [`Args::parse`], treating each flag named in `switches` as a
    /// boolean switch that consumes no value (query with [`Args::has`]).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingValue`] for a trailing valued `--flag`.
    pub fn parse_with_switches<I: IntoIterator<Item = String>>(
        raw: I,
        switches: &[&str],
    ) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if switches.contains(&name) {
                    args.switches.insert(name.to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(name.into()))?;
                    args.flags.insert(name.to_string(), value);
                }
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    /// Whether the boolean switch `flag` was supplied.
    pub fn has(&self, flag: &str) -> bool {
        self.switches.contains(flag)
    }

    /// Positional arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The raw value of `flag`, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Parses `flag` as `T`, or returns `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] if present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// Parses `flag` as a rate: a finite, strictly positive `f64`. Returns
    /// `Ok(None)` when the flag is absent.
    ///
    /// Commands use this for `--hz`-style flags so that a zero, negative or
    /// non-finite rate is rejected here as a CLI error instead of reaching
    /// library constructors (e.g. `WallClock::from_hz`) whose panics are
    /// reserved for internal misuse.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] if present but unparsable, not
    /// finite, or not strictly positive.
    pub fn get_positive_f64(&self, flag: &str) -> Result<Option<f64>, ArgError> {
        match self.flags.get(flag) {
            None => Ok(None),
            Some(v) => {
                let bad = || ArgError::BadValue {
                    flag: flag.to_string(),
                    value: v.clone(),
                };
                let parsed: f64 = v.parse().map_err(|_| bad())?;
                if !(parsed.is_finite() && parsed > 0.0) {
                    return Err(bad());
                }
                Ok(Some(parsed))
            }
        }
    }

    /// Parses `flag` as a strictly positive `u64`, or returns `default`
    /// when absent.
    ///
    /// Commands use this for count-like flags (`--slots`, `--shards`,
    /// `--clients`, ...) where zero is always a configuration error: the
    /// rejection happens here, naming the flag, instead of deep inside a
    /// library validator.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] if present but unparsable or zero.
    pub fn get_positive_u64(&self, flag: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => {
                let bad = || ArgError::BadValue {
                    flag: flag.to_string(),
                    value: v.clone(),
                };
                let parsed: u64 = v.parse().map_err(|_| bad())?;
                if parsed == 0 {
                    return Err(bad());
                }
                Ok(parsed)
            }
        }
    }

    /// The value of `flag`, rejecting an empty (or all-whitespace) string,
    /// or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] if the supplied value is empty.
    pub fn get_nonempty_str(&self, flag: &str, default: &str) -> Result<String, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default.to_string()),
            Some(v) if v.trim().is_empty() => Err(ArgError::BadValue {
                flag: flag.to_string(),
                value: v.clone(),
            }),
            Some(v) => Ok(v.clone()),
        }
    }

    /// Ensures every supplied flag is in `allowed`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::UnknownFlag`] naming the first stray flag.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for flag in self.flags.keys().chain(self.switches.iter()) {
            if !allowed.contains(&flag.as_str()) {
                return Err(ArgError::UnknownFlag(flag.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[&str]) -> Result<Args, ArgError> {
        Args::parse(raw.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positional_and_flags() {
        let a = parse(&["run", "--k", "8", "extra"]).unwrap();
        assert_eq!(a.positional(), &["run".to_string(), "extra".to_string()]);
        assert_eq!(a.get("k"), Some("8"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn typed_defaults() {
        let a = parse(&["--k", "8"]).unwrap();
        assert_eq!(a.get_or("k", 1u32).unwrap(), 8);
        assert_eq!(a.get_or("b", 64usize).unwrap(), 64);
    }

    #[test]
    fn bad_value_reported() {
        let a = parse(&["--k", "eight"]).unwrap();
        let err = a.get_or("k", 1u32).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
        assert!(err.to_string().contains("eight"));
    }

    #[test]
    fn missing_value_reported() {
        let err = parse(&["--k"]).unwrap_err();
        assert_eq!(err, ArgError::MissingValue("k".into()));
    }

    #[test]
    fn switches_take_no_value() {
        let a = Args::parse_with_switches(
            ["--profile", "--k", "8"].iter().map(|s| s.to_string()),
            &["profile"],
        )
        .unwrap();
        assert!(a.has("profile"));
        assert!(!a.has("k"));
        assert_eq!(a.get("k"), Some("8"));
        // Switches still count for expect_only.
        assert!(a.expect_only(&["k"]).is_err());
        assert!(a.expect_only(&["k", "profile"]).is_ok());
    }

    #[test]
    fn default_parse_knows_the_standard_switches() {
        let a = parse(&["work-run", "--profile"]).unwrap();
        assert!(a.has("profile"));
    }

    #[test]
    fn positive_f64_accepts_rates_and_rejects_the_rest() {
        assert_eq!(
            parse(&["--hz", "1000"]).unwrap().get_positive_f64("hz"),
            Ok(Some(1000.0))
        );
        assert_eq!(
            parse(&["--hz", "0.5"]).unwrap().get_positive_f64("hz"),
            Ok(Some(0.5))
        );
        assert_eq!(parse(&[]).unwrap().get_positive_f64("hz"), Ok(None));
        for bad in ["0", "-3", "nan", "inf", "-inf", "fast"] {
            let err = parse(&["--hz", bad])
                .unwrap()
                .get_positive_f64("hz")
                .unwrap_err();
            assert!(
                matches!(&err, ArgError::BadValue { flag, value }
                    if flag == "hz" && value == bad),
                "{bad:?} -> {err}"
            );
        }
    }

    #[test]
    fn positive_u64_accepts_counts_and_rejects_the_rest() {
        assert_eq!(
            parse(&["--slots", "500"])
                .unwrap()
                .get_positive_u64("slots", 1),
            Ok(500)
        );
        assert_eq!(parse(&[]).unwrap().get_positive_u64("slots", 42), Ok(42));
        for bad in ["0", "-1", "3.5", "many", ""] {
            let err = parse(&["--slots", bad])
                .unwrap()
                .get_positive_u64("slots", 1)
                .unwrap_err();
            assert!(
                matches!(&err, ArgError::BadValue { flag, value }
                    if flag == "slots" && value == bad),
                "{bad:?} -> {err}"
            );
            assert_eq!(
                err.to_string(),
                format!("--slots got unparsable value {bad:?}")
            );
        }
    }

    #[test]
    fn nonempty_str_rejects_blank_values() {
        let a = parse(&["--policy", "CDT"]).unwrap();
        assert_eq!(a.get_nonempty_str("policy", "LWD"), Ok("CDT".to_string()));
        assert_eq!(
            parse(&[]).unwrap().get_nonempty_str("policy", "LWD"),
            Ok("LWD".to_string())
        );
        for blank in ["", "   "] {
            let err = parse(&["--policy", blank])
                .unwrap()
                .get_nonempty_str("policy", "LWD")
                .unwrap_err();
            assert!(
                matches!(&err, ArgError::BadValue { flag, .. } if flag == "policy"),
                "{blank:?} -> {err}"
            );
            assert_eq!(
                err.to_string(),
                format!("--policy got unparsable value {blank:?}")
            );
        }
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = parse(&["--k", "1", "--oops", "2"]).unwrap();
        assert!(a.expect_only(&["k"]).is_err());
        assert!(a.expect_only(&["k", "oops"]).is_ok());
    }
}
