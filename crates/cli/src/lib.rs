//! # smbm-cli
//!
//! Library backing the `smbm` command-line tool: every command is a pure
//! function from parsed arguments to output text, so the whole surface is
//! unit-testable; `main.rs` only does I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{execute, HELP};
