//! The `smbm` commands as pure functions: parsed arguments in, report text
//! out.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use smbm_obs::{HistogramRecorder, PhaseProfiler, RingEventLog, TelemetryConfig};
use smbm_runtime::{FaultPlan, FlightConfig};
use smbm_sim::{
    measure_value_construction, measure_work_construction, ValueExperiment, WorkExperiment,
};
use smbm_switch::{ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{adversarial, MmppScenario, PortMix, Summarize, Trace, ValueMix};

use crate::args::Args;

/// The top-level help text.
pub const HELP: &str = "\
smbm — shared-memory buffer management simulator (ICDCS 2014 reproduction)

commands:
  work-run    run the heterogeneous-processing roster on MMPP traffic
  value-run   run the heterogeneous-value roster on MMPP traffic
  bounds      replay theorem lower-bound constructions
  combined-run run the combined work+value roster (extension)
  panel       regenerate a Fig. 5 panel as CSV (--panel 1..9, --jobs N)
  trace-gen   generate a work-model MMPP trace (text format) on stdout
  trace-stats summarize a work-model trace (--file PATH, or text via stdin)
  serve       replay a trace through the live datapath, lockstep with the
              sim engine (--file PATH or text via stdin; --model work|value)
              — or, with --listen ADDR[,ADDR...], serve the datapath over
              real UDP sockets until every expected client has FINed
  netgen      drive MMPP traffic at a `serve --listen` server over UDP
              (--targets HOST:PORT[,..], --clients N, --json)
  loadgen     drive the live sharded datapath with MMPP traffic and report
              throughput, drop breakdown, and ingress latency percentiles
  help        show this message

flags are `--name value`; see the crate README for the full list.
observability (work-run, value-run, combined-run):
  --events-out PATH   write per-policy engine events as JSON Lines
  --metrics-out PATH  write per-policy histogram metrics as JSON
  --profile           print per-phase wall-clock profiles
runtime (serve, loadgen):
  --hz RATE           pace shard cycles at RATE per second (default unpaced)
  --lossy             loadgen: full rings reject batches as backpressure
  --json              loadgen: emit the report as one JSON object
  --faults SPEC       inject faults: comma-separated KIND@SLOT[*PARAM][#SHARD]
                      with KIND one of panic, stall, sat, skew — or
                      random:SEED for one generated fault per shard
  --restarts N        shard restart budget before the supervisor gives up
                      (default 3)
network (serve --listen, netgen):
  --listen ADDR       serve: bind ADDR[,ADDR...]; one receive thread each
  --targets ADDRS     netgen: server sockets; client i targets the i-th,
                      round-robin
  --clients N         serve: clients expected before shutdown; netgen:
                      concurrent client threads (default 1)
  --fanout MODE       serve: packet-to-shard routing, port|hash
                      (default port)
  --idle-timeout S    serve: exit a receive loop idle for S seconds
                      (default 10)
  --net-batch N       serve: decoded packets buffered per shard before being
                      published as one ring batch (default 256)
  --window N          netgen: data datagrams between SYNC flow-control
                      barriers (default 32)
  --garbage N         netgen: header-corrupt datagrams per client (decode
                      errors on the server, no declared frames)
telemetry (serve, loadgen):
  --stats-out PATH    append one telemetry snapshot per sample as JSON Lines
  --stats-interval S  sampling cadence in seconds (default 0.25)
  --prom-out PATH     rewrite PATH with a Prometheus text-format dump each
                      sample (atomic rename; point a scraper at the file)
  --stats-ring N      in-memory samples retained in the report (default 1024)
  --flight-out PATH   write flight-recorder post-mortem dumps (JSONL) on
                      every shard death
  --flight-cap N      events retained per shard's flight ring (default 256)";

/// Executes one command. `stdin` supplies the input text for commands that
/// read a stream (currently `trace-stats` without `--file`).
///
/// # Errors
///
/// Returns a user-facing message on bad arguments or failed runs.
pub fn execute(args: &Args, stdin: &str) -> Result<String, String> {
    match args.positional().first().map(String::as_str) {
        Some("work-run") => work_run(args),
        Some("value-run") => value_run(args),
        Some("combined-run") => combined_run(args),
        Some("bounds") => bounds(args),
        Some("panel") => panel(args),
        Some("trace-gen") => trace_gen(args),
        Some("trace-stats") => trace_stats(args, stdin),
        Some("serve") => serve(args, stdin),
        Some("netgen") => netgen(args),
        Some("loadgen") => loadgen(args),
        Some("help") | None => Ok(HELP.to_string()),
        Some(other) => Err(format!("unknown command {other:?}; try `smbm help`")),
    }
}

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

fn scenario_from(args: &Args, default_sources: usize) -> Result<MmppScenario, String> {
    Ok(MmppScenario {
        sources: args.get_or("sources", default_sources).map_err(err)?,
        slots: args.get_or("slots", 50_000usize).map_err(err)?,
        seed: args.get_or("seed", 1u64).map_err(err)?,
        ..Default::default()
    })
}

fn roster(args: &Args, default: &[&str]) -> Vec<String> {
    match args.get("policies") {
        Some(spec) => spec.split(',').map(|s| s.trim().to_string()).collect(),
        None => default.iter().map(|s| s.to_string()).collect(),
    }
}

/// Events retained per policy when `--events-out` is set: enough to keep the
/// interesting tail of a long run without unbounded memory.
const EVENT_CAPACITY: usize = 1 << 16;

/// The per-policy observer stack behind the observability flags. Each layer
/// is `Some` only when its flag was supplied, so unrequested instrumentation
/// costs nothing.
type CliObserver = (
    Option<RingEventLog>,
    (Option<HistogramRecorder>, Option<PhaseProfiler>),
);

/// The observability flags of a run command, parsed once.
struct ObsFlags {
    events_out: Option<String>,
    metrics_out: Option<String>,
    profile: bool,
}

impl ObsFlags {
    fn from(args: &Args) -> Self {
        ObsFlags {
            events_out: args.get("events-out").map(str::to_string),
            metrics_out: args.get("metrics-out").map(str::to_string),
            profile: args.has("profile"),
        }
    }

    fn observers(&self, n: usize) -> Vec<CliObserver> {
        (0..n)
            .map(|_| {
                (
                    self.events_out
                        .as_ref()
                        .map(|_| RingEventLog::new(EVENT_CAPACITY)),
                    (
                        self.metrics_out.as_ref().map(|_| HistogramRecorder::new()),
                        self.profile.then(PhaseProfiler::new),
                    ),
                )
            })
            .collect()
    }

    /// Writes the requested artifacts and appends any inline report lines to
    /// `out`. `model` tags the metrics file; `names` parallels `observers`.
    fn finish(
        &self,
        model: &str,
        names: &[String],
        observers: &[CliObserver],
        out: &mut String,
    ) -> Result<(), String> {
        if let Some(path) = &self.events_out {
            let mut jsonl = String::new();
            for (name, (log, _)) in names.iter().zip(observers) {
                let log = log.as_ref().expect("events flag implies a log");
                jsonl.push_str(&log.to_jsonl_with(&[("policy", name)]));
            }
            std::fs::write(path, jsonl).map_err(|e| format!("writing {path}: {e}"))?;
            let _ = writeln!(out, "# events written to {path}");
        }
        if let Some(path) = &self.metrics_out {
            let mut json = format!("{{\"model\":\"{model}\",\"policies\":{{");
            for (i, (name, (_, (hist, _)))) in names.iter().zip(observers).enumerate() {
                let hist = hist.as_ref().expect("metrics flag implies a recorder");
                if i > 0 {
                    json.push(',');
                }
                let _ = write!(json, "\"{name}\":{}", hist.to_json());
            }
            json.push_str("}}\n");
            std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            let _ = writeln!(out, "# metrics written to {path}");
        }
        if self.profile {
            for (name, (_, (_, prof))) in names.iter().zip(observers) {
                let prof = prof.as_ref().expect("profile flag implies a profiler");
                let _ = writeln!(out, "# profile {name}: {}", prof.report());
            }
        }
        Ok(())
    }
}

fn work_run(args: &Args) -> Result<String, String> {
    args.expect_only(&[
        "k",
        "buffer",
        "speedup",
        "slots",
        "sources",
        "seed",
        "policies",
        "events-out",
        "metrics-out",
        "profile",
    ])
    .map_err(err)?;
    let k: u32 = args.get_or("k", 8).map_err(err)?;
    let buffer: usize = args.get_or("buffer", 64).map_err(err)?;
    let speedup: u32 = args.get_or("speedup", 1).map_err(err)?;
    let cfg = WorkSwitchConfig::contiguous(k, buffer).map_err(err)?;
    let trace = scenario_from(args, 12)?
        .work_trace(&cfg, &PortMix::Uniform)
        .map_err(err)?;
    let mut exp = WorkExperiment::full_roster(cfg, speedup);
    exp.policies = roster(args, smbm_core::WORK_POLICY_NAMES);
    let obs_flags = ObsFlags::from(args);
    let mut observers = obs_flags.observers(exp.policies.len());
    let report = exp.run_observed(&trace, &mut observers).map_err(err)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# work model: k={k} B={buffer} C={speedup} arrivals={}",
        trace.arrivals()
    );
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>10} {:>10} {:>9}",
        "policy", "packets", "ratio", "latency", "goodput"
    );
    let _ = writeln!(out, "{:<8} {:>12} {:>10}", "OPT(pq)", report.opt_score, 1.0);
    for row in &report.rows {
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>10.4} {:>10.2} {:>9.4}",
            row.policy, row.score, row.ratio, row.mean_latency, row.goodput
        );
    }
    obs_flags.finish("work", &exp.policies, &observers, &mut out)?;
    Ok(out)
}

fn value_run(args: &Args) -> Result<String, String> {
    args.expect_only(&[
        "ports",
        "buffer",
        "max-value",
        "speedup",
        "mix",
        "slots",
        "sources",
        "seed",
        "policies",
        "events-out",
        "metrics-out",
        "profile",
    ])
    .map_err(err)?;
    let ports: usize = args.get_or("ports", 8).map_err(err)?;
    let buffer: usize = args.get_or("buffer", 64).map_err(err)?;
    let max_value: u64 = args.get_or("max-value", 16).map_err(err)?;
    let speedup: u32 = args.get_or("speedup", 1).map_err(err)?;
    let mix = match args.get("mix").unwrap_or("uniform") {
        "uniform" => ValueMix::Uniform { max: max_value },
        "port" => ValueMix::EqualsPort,
        other => return Err(format!("unknown --mix {other:?}; use uniform|port")),
    };
    let cfg = ValueSwitchConfig::new(buffer, ports).map_err(err)?;
    let trace = scenario_from(args, 32)?
        .value_trace(ports, &PortMix::Uniform, &mix)
        .map_err(err)?;
    let mut exp = ValueExperiment::full_roster(cfg, speedup);
    exp.policies = roster(args, smbm_core::VALUE_POLICY_NAMES);
    let obs_flags = ObsFlags::from(args);
    let mut observers = obs_flags.observers(exp.policies.len());
    let report = exp.run_observed(&trace, &mut observers).map_err(err)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# value model: n={ports} B={buffer} C={speedup} mix={} arrivals={}",
        args.get("mix").unwrap_or("uniform"),
        trace.arrivals()
    );
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>10} {:>10} {:>9}",
        "policy", "value", "ratio", "latency", "goodput"
    );
    let _ = writeln!(out, "{:<8} {:>12} {:>10}", "OPT(pq)", report.opt_score, 1.0);
    for row in &report.rows {
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>10.4} {:>10.2} {:>9.4}",
            row.policy, row.score, row.ratio, row.mean_latency, row.goodput
        );
    }
    obs_flags.finish("value", &exp.policies, &observers, &mut out)?;
    Ok(out)
}

fn combined_run(args: &Args) -> Result<String, String> {
    use smbm_core::{combined_policy_by_name, CombinedPqOpt, CombinedRunner};
    use smbm_sim::{run_combined, run_combined_observed, EngineConfig};
    args.expect_only(&[
        "k",
        "buffer",
        "max-value",
        "speedup",
        "mix",
        "slots",
        "sources",
        "seed",
        "policies",
        "events-out",
        "metrics-out",
        "profile",
    ])
    .map_err(err)?;
    let k: u32 = args.get_or("k", 8).map_err(err)?;
    let buffer: usize = args.get_or("buffer", 64).map_err(err)?;
    let max_value: u64 = args.get_or("max-value", 16).map_err(err)?;
    let speedup: u32 = args.get_or("speedup", 1).map_err(err)?;
    let mix = match args.get("mix").unwrap_or("uniform") {
        "uniform" => ValueMix::Uniform { max: max_value },
        "port" => ValueMix::EqualsPort,
        other => return Err(format!("unknown --mix {other:?}; use uniform|port")),
    };
    let cfg = WorkSwitchConfig::contiguous(k, buffer).map_err(err)?;
    let trace = scenario_from(args, 12)?
        .combined_trace(&cfg, &PortMix::Uniform, &mix)
        .map_err(err)?;
    let mut opt = CombinedPqOpt::new(buffer, k * speedup);
    let engine = EngineConfig::draining();
    let opt_score = run_combined(&mut opt, &trace, &engine).map_err(err)?.score;
    let names: Vec<String> = roster(args, smbm_core::COMBINED_POLICY_NAMES);
    let obs_flags = ObsFlags::from(args);
    let mut observers = obs_flags.observers(names.len());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# combined model: k={k} B={buffer} C={speedup} arrivals={}",
        trace.arrivals()
    );
    let _ = writeln!(out, "{:<8} {:>14} {:>8}", "policy", "value", "ratio");
    let _ = writeln!(out, "{:<8} {:>14} {:>8}", "OPT(den)", opt_score, 1.0);
    for (name, obs) in names.iter().zip(observers.iter_mut()) {
        let policy = combined_policy_by_name(name)
            .ok_or_else(|| format!("unknown combined policy {name:?}"))?;
        let mut runner = CombinedRunner::new(cfg.clone(), policy, speedup);
        let score = run_combined_observed(&mut runner, &trace, &engine, obs)
            .map_err(err)?
            .score;
        let _ = writeln!(
            out,
            "{:<8} {:>14} {:>8.4}",
            name,
            score,
            opt_score as f64 / score.max(1) as f64
        );
    }
    obs_flags.finish("combined", &names, &observers, &mut out)?;
    Ok(out)
}

fn bounds(args: &Args) -> Result<String, String> {
    args.expect_only(&[]).map_err(err)?;
    let selected: Vec<&str> = args.positional()[1..].iter().map(String::as_str).collect();
    let all = [
        "nhst",
        "nest",
        "nhdt",
        "lqd-work",
        "bpd",
        "lwd",
        "lqd-value",
        "mvd",
        "mrd",
    ];
    let names: Vec<&str> = if selected.is_empty() {
        all.to_vec()
    } else {
        selected
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<30} {:>8} {:>10} {:>10}",
        "construction", "policy", "measured", "predicted"
    );
    for name in names {
        let report = match name {
            "nhst" => measure_work_construction(&adversarial::nhst_lower_bound(8, 192, 10)),
            "nest" => measure_work_construction(&adversarial::nest_lower_bound(8, 48, 10)),
            "nhdt" => measure_work_construction(&adversarial::nhdt_lower_bound(64, 512, 4)),
            "lqd-work" => measure_work_construction(&adversarial::lqd_work_lower_bound(64, 256, 4)),
            "bpd" => measure_work_construction(&adversarial::bpd_lower_bound(16, 64, 10_000)),
            "lwd" => measure_work_construction(&adversarial::lwd_lower_bound(120, 20)),
            "lqd-value" => {
                measure_value_construction(&adversarial::lqd_value_lower_bound(64, 128, 10))
            }
            "mvd" => measure_value_construction(&adversarial::mvd_lower_bound(16, 64, 10_000)),
            "mrd" => measure_value_construction(&adversarial::mrd_lower_bound(120, 20)),
            other => return Err(format!("unknown construction {other:?}")),
        }
        .map_err(err)?;
        let _ = writeln!(
            out,
            "{:<30} {:>8} {:>10.3} {:>10.3}",
            report.name,
            report.policy,
            report.ratio(),
            report.predicted
        );
    }
    Ok(out)
}

fn panel(args: &Args) -> Result<String, String> {
    use smbm_bench::{Panel, PanelScale};
    args.expect_only(&["panel", "scale", "seed", "repeats", "jobs"])
        .map_err(err)?;
    let number: u8 = args.get_or("panel", 1).map_err(err)?;
    let p = Panel::new(number).ok_or_else(|| format!("--panel must be 1..9, got {number}"))?;
    let scale = match args.get("scale").unwrap_or("default") {
        "smoke" => PanelScale::Smoke,
        "default" => PanelScale::Default,
        "paper" => PanelScale::Paper,
        other => {
            return Err(format!(
                "unknown --scale {other:?}; use smoke|default|paper"
            ))
        }
    };
    let seed: u64 = args.get_or("seed", 0xB0FFE2u64).map_err(err)?;
    let repeats = u32::try_from(args.get_positive_u64("repeats", 1).map_err(err)?)
        .map_err(|_| "--repeats is out of range".to_string())?;
    let jobs: Option<usize> = match args.get("jobs") {
        Some(_) => Some(args.get_positive_u64("jobs", 1).map_err(err)? as usize),
        None => None,
    };
    let (series, spread) =
        smbm_bench::run_panel_averaged_with_jobs(p, scale, seed, repeats, jobs).map_err(err)?;
    let mut out = format!(
        "# Fig.5({}) {} [scale {:?}, seed {}, repeats {}, max half-spread {:.4}]\n",
        p.number(),
        p.caption(),
        scale,
        seed,
        repeats,
        spread
    );
    out.push_str(&smbm_sim::series_to_csv(p.x_label(), &series));
    Ok(out)
}

fn trace_gen(args: &Args) -> Result<String, String> {
    args.expect_only(&["k", "buffer", "slots", "sources", "seed"])
        .map_err(err)?;
    let k: u32 = args.get_or("k", 8).map_err(err)?;
    let buffer: usize = args.get_or("buffer", 64).map_err(err)?;
    let cfg = WorkSwitchConfig::contiguous(k, buffer).map_err(err)?;
    let mut scenario = scenario_from(args, 12)?;
    scenario.slots = args.get_or("slots", 1_000usize).map_err(err)?;
    let trace = scenario.work_trace(&cfg, &PortMix::Uniform).map_err(err)?;
    Ok(trace.to_text())
}

/// Parses the optional `--hz` pacing rate shared by `serve` and `loadgen`,
/// rejecting zero/negative/non-finite rates here so they surface as CLI
/// errors rather than `WallClock::from_hz` panics.
fn pace_from(args: &Args) -> Result<Option<f64>, String> {
    args.get_positive_f64("hz").map_err(|_| {
        format!(
            "--hz must be a positive rate, got {:?}",
            args.get("hz").unwrap_or_default()
        )
    })
}

/// Parses the telemetry-plane flags shared by `serve` and `loadgen`. The
/// plane is enabled when any of them is supplied; numeric values are
/// validated here so `--stats-interval 0` is a CLI error, not a clamped
/// surprise or a library panic.
fn telemetry_from(args: &Args) -> Result<Option<TelemetryConfig>, String> {
    let stats_out = args.get("stats-out").map(PathBuf::from);
    let prom_out = args.get("prom-out").map(PathBuf::from);
    let interval = args.get_positive_f64("stats-interval").map_err(|_| {
        format!(
            "--stats-interval must be a positive number of seconds, got {:?}",
            args.get("stats-interval").unwrap_or_default()
        )
    })?;
    let has_ring = args.get("stats-ring").is_some();
    let mut cfg = TelemetryConfig {
        stats_out,
        prom_out,
        ..TelemetryConfig::default()
    };
    cfg.ring_capacity = args
        .get_positive_u64("stats-ring", cfg.ring_capacity as u64)
        .map_err(err)? as usize;
    if cfg.stats_out.is_none() && cfg.prom_out.is_none() && interval.is_none() && !has_ring {
        return Ok(None);
    }
    if let Some(secs) = interval {
        cfg.interval = Duration::from_secs_f64(secs);
    }
    Ok(Some(cfg))
}

/// Parses the flight-recorder flags shared by `serve` and `loadgen`.
fn flight_from(args: &Args) -> Result<Option<FlightConfig>, String> {
    let Some(path) = args.get("flight-out") else {
        if args.get("flight-cap").is_some() {
            return Err("--flight-cap requires --flight-out".into());
        }
        return Ok(None);
    };
    let mut cfg = FlightConfig::new(path);
    cfg.capacity = args
        .get_positive_u64("flight-cap", cfg.capacity as u64)
        .map_err(err)? as usize;
    Ok(Some(cfg))
}

/// The sink-location summary lines appended to human-readable runtime
/// reports, so users see where their telemetry artifacts landed.
fn sink_summary(telemetry: &Option<TelemetryConfig>, flight: &Option<FlightConfig>) -> String {
    let mut out = String::new();
    if let Some(t) = telemetry {
        if let Some(p) = &t.stats_out {
            let _ = writeln!(out, "# live stats (JSONL) -> {}", p.display());
        }
        if let Some(p) = &t.prom_out {
            let _ = writeln!(out, "# prometheus dump -> {}", p.display());
        }
    }
    if let Some(f) = flight {
        let _ = writeln!(out, "# flight post-mortem -> {}", f.path.display());
    }
    out
}

/// Parses `--faults` for `serve` and `loadgen`: the scripted grammar
/// (`panic@100,stall@50*200#1`) or `random:SEED`, which generates one
/// deterministic fault per shard within the first `horizon` slots.
fn faults_from(args: &Args, shards: usize, horizon: u64) -> Result<FaultPlan, String> {
    match args.get("faults") {
        None => Ok(FaultPlan::none()),
        Some(spec) => match spec.strip_prefix("random:") {
            Some(seed) => {
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| format!("--faults random:SEED expects a number, got {seed:?}"))?;
                Ok(FaultPlan::random(seed, shards, horizon))
            }
            None => FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}")),
        },
    }
}

/// Runs one lockstep shard over per-slot bursts — the live replica of the
/// offline engine's slot loop (empty slots included, so flush schedules and
/// counters line up exactly).
fn serve_trace<S: smbm_runtime::Service + 'static>(
    slots: Vec<Vec<S::Packet>>,
    hz: Option<f64>,
    faults: FaultPlan,
    restart_budget: u32,
    telemetry: Option<TelemetryConfig>,
    flight: Option<FlightConfig>,
    factory: impl Fn() -> S + Send + 'static,
) -> smbm_runtime::RuntimeReport {
    use smbm_runtime::{
        AnyClock, RuntimeBuilder, RuntimeConfig, ShardConfig, SupervisionConfig, VirtualClock,
        WallClock,
    };
    let mut builder = RuntimeBuilder::new(RuntimeConfig {
        ring_capacity: 64,
        shard: ShardConfig::lockstep(),
        faults,
        supervision: SupervisionConfig {
            restart_budget,
            ..SupervisionConfig::default()
        },
        telemetry,
        flight,
        ..RuntimeConfig::default()
    });
    let id = builder.add_shard(factory);
    builder.add_producer(id, move |handle| {
        for burst in slots {
            if !handle.send(burst) {
                break;
            }
        }
    });
    builder.run(move |_| match hz {
        Some(hz) => AnyClock::Wall(WallClock::from_hz(hz)),
        None => AnyClock::Virtual(VirtualClock::new()),
    })
}

/// Formats a serve run: the shard's counters plus datapath throughput.
fn render_serve(
    header: String,
    score_label: &str,
    report: &smbm_runtime::RuntimeReport,
) -> Result<String, String> {
    let shard = report
        .shards
        .first()
        .ok_or("the shard thread panicked without a report")?;
    if let Some(e) = &shard.error {
        return Err(format!("datapath rejected the trace: {e}"));
    }
    if shard.drain_stalled {
        return Err("final drain stalled: packets left that never transmit".into());
    }
    let c = &shard.counters;
    let mut out = header;
    out.push('\n');
    let _ = writeln!(
        out,
        "slots={} arrived={} admitted={} dropped={} pushed_out={} transmitted={}",
        shard.slots,
        c.arrived(),
        c.admitted(),
        c.dropped(),
        c.pushed_out(),
        c.transmitted()
    );
    let _ = writeln!(
        out,
        "score={} ({score_label}) mean_latency={:.2} occupancy mean={:.1} max={}",
        shard.score,
        c.mean_latency(),
        shard.mean_occupancy,
        shard.max_occupancy
    );
    let _ = writeln!(
        out,
        "throughput={:.0} packets/sec elapsed={:.3} ms",
        report.processed_per_sec(),
        report.elapsed.as_secs_f64() * 1e3
    );
    if shard.restarts > 0 || shard.gave_up {
        let _ = writeln!(
            out,
            "# supervision: shard {} panicked; {} restart(s), {} orphaned packet(s), \
             {} shard-failure drop(s){}",
            shard.shard,
            shard.restarts,
            shard.orphaned_packets,
            c.dropped_shard_failure(),
            if shard.gave_up { "; gave up" } else { "" }
        );
    }
    if report.lost_packets() > 0 {
        let _ = writeln!(out, "# {} packets lost mid-send", report.lost_packets());
    }
    if let Some(t) = &report.telemetry {
        let _ = writeln!(
            out,
            "# telemetry: {} sample(s) retained over {} tick(s)",
            t.samples.len(),
            t.ticks
        );
    }
    if report.flight_dumps() > 0 {
        let _ = writeln!(
            out,
            "# flight recorder: {} post-mortem dump(s)",
            report.flight_dumps()
        );
    }
    for e in &report.obs_errors {
        let _ = writeln!(out, "# observability error: {e}");
    }
    Ok(out)
}

fn serve(args: &Args, stdin: &str) -> Result<String, String> {
    use smbm_runtime::{ValueService, WorkService};
    if args.get("listen").is_some() {
        return serve_listen(args);
    }
    args.expect_only(&[
        "model",
        "file",
        "policy",
        "k",
        "ports",
        "buffer",
        "speedup",
        "hz",
        "faults",
        "restarts",
        "stats-out",
        "stats-interval",
        "prom-out",
        "stats-ring",
        "flight-out",
        "flight-cap",
    ])
    .map_err(err)?;
    let text = match args.get("file") {
        Some(path) => std::fs::read_to_string(path).map_err(err)?,
        None => stdin.to_string(),
    };
    let buffer: usize = args.get_or("buffer", 64).map_err(err)?;
    let speedup = u32::try_from(args.get_positive_u64("speedup", 1).map_err(err)?)
        .map_err(|_| "--speedup is out of range".to_string())?;
    let hz = pace_from(args)?;
    let restart_budget: u32 = args.get_or("restarts", 3).map_err(err)?;
    let telemetry = telemetry_from(args)?;
    let flight = flight_from(args)?;
    let sinks = sink_summary(&telemetry, &flight);
    let pacing = match hz {
        Some(hz) => format!(" paced at {hz} Hz"),
        None => String::new(),
    };
    match args.get("model").unwrap_or("work") {
        "work" => {
            let k: u32 = args.get_or("k", 8).map_err(err)?;
            let trace: Trace<smbm_switch::WorkPacket> = Trace::from_text(&text).map_err(err)?;
            let name = args.get("policy").unwrap_or("LWD");
            let canonical = smbm_core::work_policy_by_name(name)
                .ok_or_else(|| format!("unknown work policy {name:?}"))?
                .name()
                .to_owned();
            let cfg = WorkSwitchConfig::contiguous(k, buffer).map_err(err)?;
            let header = format!(
                "# serve work model: policy {canonical} k={k} B={buffer} C={speedup}{pacing}"
            );
            let faults = faults_from(args, 1, trace.as_slots().len() as u64)?;
            let factory_name = canonical.clone();
            let report = serve_trace(
                trace.as_slots().to_vec(),
                hz,
                faults,
                restart_budget,
                telemetry,
                flight,
                move || {
                    let policy = smbm_core::work_policy_by_name(&factory_name).expect("validated");
                    WorkService::new(smbm_core::WorkRunner::new(cfg.clone(), policy, speedup))
                },
            );
            render_serve(header, "packets", &report).map(|out| out + &sinks)
        }
        "value" => {
            let ports: usize = args.get_or("ports", 8).map_err(err)?;
            let trace: Trace<smbm_switch::ValuePacket> = Trace::from_text(&text).map_err(err)?;
            let name = args.get("policy").unwrap_or("MRD");
            let canonical = smbm_core::value_policy_by_name(name)
                .ok_or_else(|| format!("unknown value policy {name:?}"))?
                .name()
                .to_owned();
            let cfg = ValueSwitchConfig::new(buffer, ports).map_err(err)?;
            let header = format!(
                "# serve value model: policy {canonical} n={ports} B={buffer} C={speedup}{pacing}"
            );
            let faults = faults_from(args, 1, trace.as_slots().len() as u64)?;
            let factory_name = canonical.clone();
            let report = serve_trace(
                trace.as_slots().to_vec(),
                hz,
                faults,
                restart_budget,
                telemetry,
                flight,
                move || {
                    let policy = smbm_core::value_policy_by_name(&factory_name).expect("validated");
                    ValueService::new(smbm_core::ValueRunner::new(cfg, policy, speedup))
                },
            );
            render_serve(header, "value", &report).map(|out| out + &sinks)
        }
        other => Err(format!("unknown --model {other:?}; use work|value")),
    }
}

/// Parses a comma-separated `HOST:PORT[,HOST:PORT...]` list, resolving
/// names through the system resolver (first address wins).
fn parse_addrs(flag: &str, spec: &str) -> Result<Vec<std::net::SocketAddr>, String> {
    use std::net::ToSocketAddrs;
    spec.split(',')
        .map(str::trim)
        .map(|part| {
            part.to_socket_addrs()
                .map_err(|e| format!("--{flag}: bad address {part:?}: {e}"))?
                .next()
                .ok_or_else(|| format!("--{flag}: {part:?} resolved to no address"))
        })
        .collect()
}

/// `serve --listen`: the datapath served over real UDP sockets. Runs until
/// every expected client has FINed (or the ingress idles out).
fn serve_listen(args: &Args) -> Result<String, String> {
    use smbm_net::{run_server, Fanout, NetConfig, ServeConfig};
    use smbm_runtime::Model;
    args.expect_only(&[
        "listen",
        "model",
        "policy",
        "ports",
        "buffer",
        "speedup",
        "shards",
        "ring",
        "clients",
        "fanout",
        "idle-timeout",
        "net-batch",
        "lossy",
        "json",
        "faults",
        "restarts",
        "stats-out",
        "stats-interval",
        "prom-out",
        "stats-ring",
        "flight-out",
        "flight-cap",
    ])
    .map_err(err)?;
    let listen = parse_addrs(
        "listen",
        args.get("listen").expect("dispatched on presence"),
    )?;
    let model_name = args.get_nonempty_str("model", "work").map_err(err)?;
    let model = Model::parse(&model_name)
        .ok_or_else(|| format!("unknown --model {model_name:?}; use work|value"))?;
    let default_policy = match model {
        Model::Work => "LWD",
        Model::Value => "MRD",
        Model::Combined => "WVD",
    };
    let defaults = ServeConfig::default();
    let shards = args
        .get_positive_u64("shards", defaults.shards as u64)
        .map_err(err)? as usize;
    let fanout_label = args.get_nonempty_str("fanout", "port").map_err(err)?;
    let fanout = Fanout::parse(&fanout_label)
        .ok_or_else(|| format!("unknown --fanout {fanout_label:?}; use port|hash"))?;
    let mut net = NetConfig {
        listen,
        fanout,
        expected_clients: args.get_positive_u64("clients", 1).map_err(err)? as usize,
        lossy: args.has("lossy"),
        ..NetConfig::default()
    };
    net.batch = args
        .get_positive_u64("net-batch", net.batch as u64)
        .map_err(err)? as usize;
    if let Some(secs) = args.get_positive_f64("idle-timeout").map_err(err)? {
        net.idle_timeout = Duration::from_secs_f64(secs);
    }
    let config = ServeConfig {
        model,
        policy: args
            .get_nonempty_str("policy", default_policy)
            .map_err(err)?,
        ports: args
            .get_positive_u64("ports", defaults.ports as u64)
            .map_err(err)? as usize,
        buffer: args
            .get_positive_u64("buffer", defaults.buffer as u64)
            .map_err(err)? as usize,
        speedup: u32::try_from(
            args.get_positive_u64("speedup", u64::from(defaults.speedup))
                .map_err(err)?,
        )
        .map_err(|_| "--speedup is out of range".to_string())?,
        shards,
        ring_capacity: args
            .get_positive_u64("ring", defaults.ring_capacity as u64)
            .map_err(err)? as usize,
        net,
        // Net serve has no trace length; give `--faults random:SEED` the
        // same horizon loadgen's default slot count would.
        faults: faults_from(args, shards, 2_000)?,
        restart_budget: args
            .get_or("restarts", defaults.restart_budget)
            .map_err(err)?,
        telemetry: telemetry_from(args)?,
        flight: flight_from(args)?,
    };
    let report = run_server(&config).map_err(err)?;
    if args.has("json") {
        Ok(report.to_json())
    } else {
        let mut out = report.to_string();
        let sinks = sink_summary(&config.telemetry, &config.flight);
        if !sinks.is_empty() {
            out.push_str(sinks.trim_end());
            out.push('\n');
        }
        Ok(out)
    }
}

/// `netgen`: drive MMPP traffic at a `serve --listen` server over UDP.
fn netgen(args: &Args) -> Result<String, String> {
    use smbm_net::{run_netgen, NetGenConfig};
    use smbm_runtime::Model;
    args.expect_only(&[
        "targets",
        "model",
        "clients",
        "ports",
        "slots",
        "sources",
        "seed",
        "max-value",
        "batch",
        "window",
        "bad-frames",
        "truncated",
        "garbage",
        "json",
    ])
    .map_err(err)?;
    let spec = args
        .get("targets")
        .ok_or("netgen requires --targets HOST:PORT[,HOST:PORT...]")?;
    let model_name = args.get_nonempty_str("model", "work").map_err(err)?;
    let model = Model::parse(&model_name)
        .ok_or_else(|| format!("unknown --model {model_name:?}; use work|value"))?;
    let defaults = NetGenConfig::default();
    let config = NetGenConfig {
        model,
        targets: parse_addrs("targets", spec)?,
        clients: args
            .get_positive_u64("clients", defaults.clients as u64)
            .map_err(err)? as usize,
        ports: args
            .get_positive_u64("ports", defaults.ports as u64)
            .map_err(err)? as usize,
        slots: args
            .get_positive_u64("slots", defaults.slots as u64)
            .map_err(err)? as usize,
        sources: args
            .get_positive_u64("sources", defaults.sources as u64)
            .map_err(err)? as usize,
        seed: args.get_or("seed", defaults.seed).map_err(err)?,
        max_value: args
            .get_positive_u64("max-value", defaults.max_value)
            .map_err(err)?,
        batch: args
            .get_positive_u64("batch", defaults.batch as u64)
            .map_err(err)? as usize,
        window: args
            .get_positive_u64("window", defaults.window as u64)
            .map_err(err)? as usize,
        bad_frames: args.get_or("bad-frames", 0usize).map_err(err)?,
        truncated_datagrams: args.get_or("truncated", 0usize).map_err(err)?,
        garbage_datagrams: args.get_or("garbage", 0usize).map_err(err)?,
        ..defaults
    };
    let report = run_netgen(&config).map_err(err)?;
    let rendered = if args.has("json") {
        report.to_json()
    } else {
        report.to_string()
    };
    if report.all_completed() {
        Ok(rendered)
    } else {
        // An unfinished handshake means the server never accounted some
        // frames; surface it as a failing exit.
        Err(format!("netgen did not complete every client\n{rendered}"))
    }
}

fn loadgen(args: &Args) -> Result<String, String> {
    use smbm_runtime::{run_loadgen, LoadgenConfig, Model};
    args.expect_only(&[
        "model",
        "policy",
        "ports",
        "buffer",
        "speedup",
        "shards",
        "slots",
        "sources",
        "seed",
        "batch",
        "ring",
        "hz",
        "max-value",
        "lossy",
        "json",
        "faults",
        "restarts",
        "stats-out",
        "stats-interval",
        "prom-out",
        "stats-ring",
        "flight-out",
        "flight-cap",
    ])
    .map_err(err)?;
    let model_name = args.get("model").unwrap_or("work");
    let model = Model::parse(model_name)
        .ok_or_else(|| format!("unknown --model {model_name:?}; use work|value|combined"))?;
    let default_policy = match model {
        Model::Work => "LWD",
        Model::Value => "MRD",
        Model::Combined => "WVD",
    };
    let defaults = LoadgenConfig::default();
    let shards: usize = args.get_or("shards", defaults.shards).map_err(err)?;
    let slots: usize = args.get_or("slots", defaults.slots).map_err(err)?;
    let config = LoadgenConfig {
        model,
        policy: args.get("policy").unwrap_or(default_policy).to_owned(),
        ports: args.get_or("ports", defaults.ports).map_err(err)?,
        buffer: args.get_or("buffer", defaults.buffer).map_err(err)?,
        speedup: args.get_or("speedup", defaults.speedup).map_err(err)?,
        shards,
        slots,
        sources: args.get_or("sources", defaults.sources).map_err(err)?,
        seed: args.get_or("seed", defaults.seed).map_err(err)?,
        batch: args.get_or("batch", defaults.batch).map_err(err)?,
        ring_capacity: args.get_or("ring", defaults.ring_capacity).map_err(err)?,
        pace_hz: pace_from(args)?,
        max_value: args.get_or("max-value", defaults.max_value).map_err(err)?,
        flush: None,
        lossy: args.has("lossy"),
        record_metrics: false,
        faults: faults_from(args, shards, slots as u64)?,
        restart_budget: args
            .get_or("restarts", defaults.restart_budget)
            .map_err(err)?,
        telemetry: telemetry_from(args)?,
        flight: flight_from(args)?,
    };
    let report = run_loadgen(&config).map_err(err)?;
    for shard in &report.runtime.shards {
        if let Some(e) = &shard.error {
            return Err(format!("shard {:?} failed: {e}", shard.label));
        }
    }
    if args.has("json") {
        Ok(report.to_json())
    } else {
        let mut out = report.to_string();
        let sinks = sink_summary(&config.telemetry, &config.flight);
        if !sinks.is_empty() {
            out.push('\n');
            out.push_str(sinks.trim_end());
        }
        Ok(out)
    }
}

fn trace_stats(args: &Args, stdin: &str) -> Result<String, String> {
    args.expect_only(&["file"]).map_err(err)?;
    let text = match args.get("file") {
        Some(path) => std::fs::read_to_string(path).map_err(err)?,
        None => stdin.to_string(),
    };
    let trace: Trace<smbm_switch::WorkPacket> = Trace::from_text(&text).map_err(err)?;
    Ok(trace.stats().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<String, String> {
        run_with_stdin(argv, "")
    }

    fn run_with_stdin(argv: &[&str], stdin: &str) -> Result<String, String> {
        let args = Args::parse(argv.iter().map(|s| s.to_string())).map_err(err)?;
        execute(&args, stdin)
    }

    #[test]
    fn help_on_empty_and_help() {
        assert!(run(&[]).unwrap().contains("commands:"));
        assert!(run(&["help"]).unwrap().contains("work-run"));
    }

    #[test]
    fn unknown_command_is_rejected() {
        let e = run(&["frobnicate"]).unwrap_err();
        assert!(e.contains("frobnicate"));
    }

    #[test]
    fn work_run_small() {
        let out = run(&["work-run", "--slots", "500", "--k", "4", "--buffer", "16"]).unwrap();
        assert!(out.contains("# work model: k=4 B=16"));
        assert!(out.contains("LWD"));
        assert!(out.contains("OPT(pq)"));
    }

    #[test]
    fn work_run_policy_subset() {
        let out = run(&["work-run", "--slots", "500", "--policies", "LWD,LQD"]).unwrap();
        assert!(out.contains("LWD"));
        assert!(out.contains("LQD"));
        assert!(!out.contains("NHDT"));
    }

    #[test]
    fn work_run_rejects_unknown_flag() {
        let e = run(&["work-run", "--bogus", "1"]).unwrap_err();
        assert!(e.contains("bogus"));
    }

    #[test]
    fn value_run_small_port_mix() {
        let out = run(&[
            "value-run",
            "--slots",
            "500",
            "--ports",
            "4",
            "--buffer",
            "16",
            "--mix",
            "port",
        ])
        .unwrap();
        assert!(out.contains("mix=port"));
        assert!(out.contains("MRD"));
    }

    #[test]
    fn value_run_rejects_bad_mix() {
        let e = run(&["value-run", "--mix", "sideways"]).unwrap_err();
        assert!(e.contains("sideways"));
    }

    #[test]
    fn combined_run_small() {
        let out = run(&[
            "combined-run",
            "--slots",
            "500",
            "--k",
            "4",
            "--buffer",
            "16",
            "--mix",
            "port",
        ])
        .unwrap();
        assert!(out.contains("# combined model: k=4 B=16"));
        assert!(out.contains("WVD"));
        assert!(out.contains("OPT(den)"));
    }

    #[test]
    fn combined_run_rejects_unknown_policy() {
        let e = run(&["combined-run", "--slots", "100", "--policies", "ZZZ"]).unwrap_err();
        assert!(e.contains("ZZZ"));
    }

    #[test]
    fn bounds_single_construction() {
        let out = run(&["bounds", "nest"]).unwrap();
        assert!(out.contains("Thm2 NEST"));
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn bounds_rejects_unknown() {
        let e = run(&["bounds", "thmX"]).unwrap_err();
        assert!(e.contains("thmX"));
    }

    #[test]
    fn work_run_writes_events_and_metrics_and_profiles() {
        let dir = std::env::temp_dir();
        let events = dir.join("smbm_cli_test_events.jsonl");
        let metrics = dir.join("smbm_cli_test_metrics.json");
        let out = run(&[
            "work-run",
            "--slots",
            "200",
            "--k",
            "4",
            "--buffer",
            "16",
            "--policies",
            "LWD,LQD",
            "--events-out",
            events.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--profile",
        ])
        .unwrap();
        assert!(out.contains("# events written to"));
        assert!(out.contains("# metrics written to"));
        assert!(out.contains("# profile LWD:"), "{out}");
        assert!(out.contains("slots/s"));

        let jsonl = std::fs::read_to_string(&events).unwrap();
        assert!(jsonl.lines().count() > 10);
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"policy\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":\""), "{line}");
        }
        assert!(jsonl.contains("\"policy\":\"LQD\""));

        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.starts_with("{\"model\":\"work\""), "{json}");
        assert!(json.contains("\"LWD\":{"));
        assert!(json.contains("\"p99\":"));
        assert!(json.contains("\"drops\":{\"buffer_full\":"));
        let _ = std::fs::remove_file(events);
        let _ = std::fs::remove_file(metrics);
    }

    #[test]
    fn observability_flags_do_not_change_scores() {
        let base = run(&["work-run", "--slots", "300", "--policies", "LWD"]).unwrap();
        let metrics = std::env::temp_dir().join("smbm_cli_test_scores.json");
        let observed = run(&[
            "work-run",
            "--slots",
            "300",
            "--policies",
            "LWD",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        let _ = std::fs::remove_file(metrics);
        let base_row = base.lines().find(|l| l.starts_with("LWD")).unwrap();
        let obs_row = observed.lines().find(|l| l.starts_with("LWD")).unwrap();
        assert_eq!(base_row, obs_row);
    }

    #[test]
    fn combined_run_metrics_sidecar() {
        let metrics = std::env::temp_dir().join("smbm_cli_test_combined.json");
        let out = run(&[
            "combined-run",
            "--slots",
            "200",
            "--k",
            "4",
            "--buffer",
            "16",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("# metrics written to"));
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.starts_with("{\"model\":\"combined\""));
        assert!(json.contains("\"WVD\":{"));
        let _ = std::fs::remove_file(metrics);
    }

    #[test]
    fn panel_smoke_renders_csv() {
        let out = run(&["panel", "--panel", "1", "--scale", "smoke", "--jobs", "2"]).unwrap();
        assert!(out.starts_with("# Fig.5(1)"), "{out}");
        assert!(out.contains("k,"), "{out}");
        assert!(out.contains("LWD"), "{out}");
    }

    #[test]
    fn panel_jobs_cap_is_deterministic() {
        let a = run(&["panel", "--panel", "7", "--scale", "smoke", "--jobs", "1"]).unwrap();
        let b = run(&["panel", "--panel", "7", "--scale", "smoke", "--jobs", "4"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn panel_rejects_bad_arguments() {
        assert!(run(&["panel", "--panel", "0"])
            .unwrap_err()
            .contains("1..9"));
        assert!(run(&["panel", "--jobs", "0"])
            .unwrap_err()
            .contains("--jobs"));
        assert!(run(&["panel", "--scale", "huge"])
            .unwrap_err()
            .contains("huge"));
    }

    #[test]
    fn trace_gen_then_stats_roundtrip() {
        let text = run(&["trace-gen", "--slots", "40", "--seed", "9"]).unwrap();
        assert!(text.lines().count() == 40);
        let stats = run_with_stdin(&["trace-stats"], &text).unwrap();
        assert!(stats.contains("slots=40"), "{stats}");
        assert!(stats.contains("port#1"));
    }

    #[test]
    fn trace_stats_rejects_garbage() {
        let e = run_with_stdin(&["trace-stats"], "not a trace").unwrap_err();
        assert!(e.contains("line 1"));
    }

    #[test]
    fn serve_replays_a_generated_trace() {
        let text = run(&["trace-gen", "--slots", "200", "--seed", "7"]).unwrap();
        let out = run_with_stdin(&["serve"], &text).unwrap();
        assert!(
            out.contains("# serve work model: policy LWD k=8 B=64 C=1"),
            "{out}"
        );
        // The slot count includes the final drain, so it exceeds the trace.
        assert!(out.contains("slots=2"), "{out}");
        assert!(out.contains("score="), "{out}");
        assert!(out.contains("packets/sec"), "{out}");
    }

    #[test]
    fn serve_accepts_policy_and_rejects_unknowns() {
        let text = run(&["trace-gen", "--slots", "50", "--seed", "3"]).unwrap();
        let out = run_with_stdin(&["serve", "--policy", "lqd"], &text).unwrap();
        assert!(out.contains("policy LQD"), "{out}");
        let e = run_with_stdin(&["serve", "--policy", "zzz"], &text).unwrap_err();
        assert!(e.contains("zzz"));
        let e = run_with_stdin(&["serve", "--model", "sideways"], "").unwrap_err();
        assert!(e.contains("sideways"));
    }

    #[test]
    fn serve_value_model_round_trips() {
        // One 2-slot value trace in the text format: one-based port:value.
        let text = "1:5 2:9\n2:2\n";
        let out = run_with_stdin(&["serve", "--model", "value", "--ports", "4"], text).unwrap();
        assert!(out.contains("# serve value model: policy MRD n=4"), "{out}");
        assert!(out.contains("arrived=3"), "{out}");
        assert!(out.contains("score=16 (value)"), "{out}");
    }

    #[test]
    fn loadgen_reports_throughput() {
        let out = run(&[
            "loadgen",
            "--policy",
            "lwd",
            "--ports",
            "4",
            "--buffer",
            "16",
            "--slots",
            "300",
            "--sources",
            "10",
        ])
        .unwrap();
        assert!(out.contains("policy LWD"), "{out}");
        assert!(out.contains("packets/sec"), "{out}");
        assert!(out.contains("backpressure"), "{out}");
    }

    #[test]
    fn loadgen_json_and_lossy_mode() {
        let out = run(&[
            "loadgen",
            "--model",
            "value",
            "--ports",
            "4",
            "--buffer",
            "16",
            "--slots",
            "200",
            "--sources",
            "8",
            "--shards",
            "2",
            "--lossy",
            "--json",
        ])
        .unwrap();
        assert!(out.starts_with("{\"model\":\"value\""), "{out}");
        assert!(out.contains("\"policy\":\"MRD\""), "{out}");
        assert!(out.contains("\"shards\":2"), "{out}");
        assert!(out.contains("\"packets_per_sec\""), "{out}");
    }

    #[test]
    fn loadgen_rejects_bad_arguments() {
        let e = run(&["loadgen", "--policy", "zzz"]).unwrap_err();
        assert!(e.contains("zzz"));
        let e = run(&["loadgen", "--model", "bogus"]).unwrap_err();
        assert!(e.contains("bogus"));
        let e = run(&["loadgen", "--hz", "-3"]).unwrap_err();
        assert!(e.contains("--hz"));
    }

    #[test]
    fn telemetry_flags_reject_zero_and_garbage_values() {
        // Mirrors the --hz 0 fix: bad durations/sizes are CLI errors, never
        // clamps or library panics. All of these fail before anything runs.
        for bad in ["0", "-0.5", "nan", "soon"] {
            let e = run(&["loadgen", "--stats-interval", bad]).unwrap_err();
            assert!(e.contains("--stats-interval"), "{bad:?} -> {e}");
            let e = run_with_stdin(&["serve", "--stats-interval", bad], "").unwrap_err();
            assert!(e.contains("--stats-interval"), "{bad:?} -> {e}");
        }
        let e = run(&["loadgen", "--stats-ring", "0"]).unwrap_err();
        assert!(e.contains("--stats-ring"));
        let e = run(&["loadgen", "--stats-ring", "many"]).unwrap_err();
        assert!(e.contains("many"));
        let e = run(&["loadgen", "--flight-out", "/tmp/x", "--flight-cap", "0"]).unwrap_err();
        assert!(e.contains("--flight-cap"));
        let e = run(&["loadgen", "--flight-cap", "8"]).unwrap_err();
        assert!(e.contains("requires --flight-out"));
    }

    #[test]
    fn loadgen_telemetry_flags_write_both_sinks() {
        let dir = std::env::temp_dir();
        let stats = dir.join("smbm_cli_test_stats.jsonl");
        let prom = dir.join("smbm_cli_test_prom.txt");
        let out = run(&[
            "loadgen",
            "--ports",
            "4",
            "--buffer",
            "16",
            "--slots",
            "300",
            "--sources",
            "10",
            "--stats-interval",
            "0.01",
            "--stats-out",
            stats.to_str().unwrap(),
            "--prom-out",
            prom.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("telemetry:"), "{out}");
        assert!(out.contains("# live stats (JSONL) ->"), "{out}");
        assert!(out.contains("# prometheus dump ->"), "{out}");

        let jsonl = std::fs::read_to_string(&stats).unwrap();
        assert!(jsonl.lines().count() >= 2, "initial + final sample");
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"type\":\"telemetry\""), "{line}");
        }
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("# TYPE smbm_packets_total counter"), "{text}");
        assert!(text.contains("smbm_latency_slots{"), "{text}");
        let _ = std::fs::remove_file(stats);
        let _ = std::fs::remove_file(prom);
    }

    #[test]
    fn serve_listen_and_netgen_round_trip_over_loopback() {
        // A fixed loopback port: CLI strings cannot carry an ephemeral
        // port back, so pick one unlikely to clash (distinct per test).
        let addr = "127.0.0.1:47631";
        let server = std::thread::spawn(move || {
            run(&[
                "serve",
                "--listen",
                addr,
                "--clients",
                "2",
                "--shards",
                "2",
                "--ports",
                "8",
                "--buffer",
                "32",
                "--json",
            ])
        });
        let gen = run(&[
            "netgen",
            "--targets",
            addr,
            "--clients",
            "2",
            "--ports",
            "8",
            "--slots",
            "200",
            "--sources",
            "8",
            "--batch",
            "32",
            "--window",
            "8",
            "--json",
        ])
        .unwrap();
        let out = server.join().unwrap().unwrap();
        assert!(gen.starts_with("{\"model\":\"work\""), "{gen}");
        assert!(gen.contains("\"completed\":true"), "{gen}");
        assert!(
            out.starts_with("{\"model\":\"work\",\"policy\":\"LWD\""),
            "{out}"
        );
        assert!(out.contains("\"shards\":2"), "{out}");
        assert!(out.contains("\"net\":{\"datagrams\":"), "{out}");
        assert!(out.contains("\"net_decode\":0"), "{out}");
    }

    #[test]
    fn serve_listen_rejects_bad_arguments() {
        let e = run(&["serve", "--listen", "not-an-address"]).unwrap_err();
        assert!(e.contains("not-an-address"), "{e}");
        let e = run(&["serve", "--listen", "127.0.0.1:0", "--fanout", "spiral"]).unwrap_err();
        assert!(e.contains("spiral"), "{e}");
        let e = run(&["serve", "--listen", "127.0.0.1:0", "--policy", "zzz"]).unwrap_err();
        assert!(e.contains("zzz"), "{e}");
        let e = run(&["serve", "--listen", "127.0.0.1:0", "--clients", "0"]).unwrap_err();
        assert!(e.contains("--clients"), "{e}");
        let e = run(&["serve", "--listen", "127.0.0.1:0", "--model", "combined"]).unwrap_err();
        assert!(e.contains("wire format"), "{e}");
    }

    #[test]
    fn netgen_rejects_bad_arguments() {
        let e = run(&["netgen"]).unwrap_err();
        assert!(e.contains("--targets"), "{e}");
        let e = run(&["netgen", "--targets", "nowhere"]).unwrap_err();
        assert!(e.contains("nowhere"), "{e}");
        let e = run(&["netgen", "--targets", "127.0.0.1:9", "--model", "sideways"]).unwrap_err();
        assert!(e.contains("sideways"), "{e}");
        let e = run(&["netgen", "--targets", "127.0.0.1:9", "--window", "0"]).unwrap_err();
        assert!(e.contains("--window"), "{e}");
    }

    #[test]
    fn serve_flight_out_dumps_on_injected_panic() {
        let dir = std::env::temp_dir();
        let flight = dir.join("smbm_cli_test_flight.jsonl");
        let text = run(&["trace-gen", "--slots", "50", "--seed", "3"]).unwrap();
        let out = run_with_stdin(
            &[
                "serve",
                "--faults",
                "panic@5",
                "--restarts",
                "1",
                "--flight-out",
                flight.to_str().unwrap(),
                "--flight-cap",
                "32",
            ],
            &text,
        )
        .unwrap();
        assert!(
            out.contains("# flight recorder: 1 post-mortem dump(s)"),
            "{out}"
        );
        assert!(out.contains("# flight post-mortem ->"), "{out}");
        let dump = std::fs::read_to_string(&flight).unwrap();
        let _ = std::fs::remove_file(flight);
        assert!(dump.starts_with("{\"type\":\"flight_dump\""), "{dump}");
        assert!(dump.contains("\"shard\":0"), "{dump}");
        assert!(dump.contains("\"reason\":\"panic\""), "{dump}");
    }
}
