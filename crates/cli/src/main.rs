//! `smbm` — command-line front end for the shared-memory buffer-management
//! simulator. All logic lives in the library (`smbm_cli::execute`); this
//! binary only parses `argv`, wires stdin, and prints.

use std::io::Read;
use std::process::ExitCode;

use smbm_cli::{execute, Args};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Only trace-stats and offline serve without --file consume stdin; read
    // lazily. `serve --listen` sources traffic from sockets, so slurping
    // stdin there would block a backgrounded server (inherited terminal
    // stdin never reaches EOF) before it ever binds.
    let needs_stdin = matches!(
        args.positional().first().map(String::as_str),
        Some("trace-stats") | Some("serve")
    ) && args.get("file").is_none()
        && args.get("listen").is_none();
    let stdin = if needs_stdin {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("failed to read stdin: {e}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        String::new()
    };
    match execute(&args, &stdin) {
        Ok(out) => {
            print!("{out}");
            if !out.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
