//! The crash flight recorder: a bounded per-shard ring of recent observer
//! events that the runtime supervisor dumps post-mortem when a shard dies,
//! so every `ShardFailure` ships with its trailing event context.

use crate::{escape_json, DropReason, Event, NetCounts, Observer, RingEventLog};
use smbm_switch::PortId;

/// A fixed-size ring of the last N structured events on one shard.
///
/// The recorder is an ordinary [`Observer`]: compose it into the shard's
/// observer stack and it passively tracks the tail of the event stream at
/// O(1) per event. It records nothing to disk on its own — the supervisor
/// calls [`FlightRecorder::render_dump`] when the shard panics or exhausts
/// its restart budget and appends the result to the post-mortem JSONL file.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    shard: usize,
    ring: RingEventLog,
}

impl FlightRecorder {
    /// Creates a recorder for `shard` keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(shard: usize, capacity: usize) -> Self {
        FlightRecorder {
            shard,
            ring: RingEventLog::new(capacity),
        }
    }

    /// The shard this recorder belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The underlying event ring.
    pub fn ring(&self) -> &RingEventLog {
        &self.ring
    }

    /// Renders a post-mortem dump: one header line naming the dead shard
    /// and why it died, followed by the retained events (oldest first),
    /// each tagged with the shard id. `attempt` is the restart attempt the
    /// death occurred on (0 for the first incarnation) and `orphans` the
    /// ring backlog stranded by the death.
    pub fn render_dump(&self, reason: &str, slot: u64, attempt: u64, orphans: u64) -> String {
        self.render_dump_with_net(reason, slot, attempt, orphans, None)
    }

    /// Like [`FlightRecorder::render_dump`], but the header additionally
    /// carries the net ingress tallies of the sockets feeding the dead
    /// shard — so a post-mortem of a network-fed shard shows how much wire
    /// traffic (and how many decode failures) preceded the death.
    pub fn render_dump_with_net(
        &self,
        reason: &str,
        slot: u64,
        attempt: u64,
        orphans: u64,
        net: Option<&NetCounts>,
    ) -> String {
        let shard_label = self.shard.to_string();
        let net_field = match net {
            Some(n) => format!(",\"net\":{}", n.to_json()),
            None => String::new(),
        };
        let mut out = format!(
            "{{\"type\":\"flight_dump\",\"shard\":{},\"reason\":\"{}\",\"slot\":{},\
             \"attempt\":{},\"orphans\":{},\"events\":{},\"events_dropped\":{}{}}}\n",
            self.shard,
            escape_json(reason),
            slot,
            attempt,
            orphans,
            self.ring.len(),
            self.ring
                .total_recorded()
                .saturating_sub(self.ring.len() as u64),
            net_field,
        );
        out.push_str(&self.ring.to_jsonl_with(&[("shard", &shard_label)]));
        out
    }
}

impl Observer for FlightRecorder {
    fn arrival(&mut self, slot: u64, port: PortId, work: u32, value: u64) {
        self.ring.push(Event::Arrival {
            slot,
            port,
            work,
            value,
        });
    }

    fn admitted(&mut self, slot: u64, port: PortId) {
        self.ring.push(Event::Admitted { slot, port });
    }

    fn dropped(&mut self, slot: u64, port: PortId, reason: DropReason) {
        self.ring.push(Event::Dropped { slot, port, reason });
    }

    fn backpressure(&mut self, slot: u64, packets: u64) {
        self.ring.push(Event::Backpressure { slot, packets });
    }

    fn pushed_out(&mut self, slot: u64, victim: PortId) {
        self.ring.push(Event::PushedOut { slot, victim });
    }

    fn transmitted(&mut self, slot: u64, port: PortId, latency: u64, value: u64) {
        self.ring.push(Event::Transmitted {
            slot,
            port,
            latency,
            value,
        });
    }

    fn flush(&mut self, slot: u64, discarded: u64) {
        self.ring.push(Event::Flush { slot, discarded });
    }

    fn drain_start(&mut self, slot: u64) {
        self.ring.push(Event::DrainStart { slot });
    }

    fn drain_end(&mut self, slot: u64) {
        self.ring.push(Event::DrainEnd { slot });
    }

    fn slot_end(&mut self, slot: u64, occupancy: usize) {
        self.ring.push(Event::SlotEnd {
            slot,
            occupancy: occupancy as u64,
        });
    }

    fn shard_panicked(&mut self, slot: u64, orphans: u64) {
        self.ring.push(Event::ShardPanic { slot, orphans });
    }

    fn shard_restarted(&mut self, slot: u64, attempt: u64) {
        self.ring.push(Event::ShardRestart { slot, attempt });
    }

    fn shard_failed(&mut self, slot: u64, orphans: u64) {
        self.ring.push(Event::ShardFailed { slot, orphans });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_names_the_dead_shard_and_tags_events() {
        let mut fr = FlightRecorder::new(3, 8);
        fr.arrival(10, PortId::new(1), 1, 4);
        fr.admitted(10, PortId::new(1));
        fr.shard_panicked(10, 2);
        let dump = fr.render_dump("panic", 10, 1, 2);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            "{\"type\":\"flight_dump\",\"shard\":3,\"reason\":\"panic\",\"slot\":10,\
             \"attempt\":1,\"orphans\":2,\"events\":3,\"events_dropped\":0}"
        );
        assert!(lines[1].starts_with("{\"shard\":\"3\",\"type\":\"arrival\""));
        assert_eq!(
            lines[3],
            "{\"shard\":\"3\",\"type\":\"shard_panic\",\"slot\":10,\"orphans\":2}"
        );
    }

    #[test]
    fn dump_header_carries_net_counts_when_given() {
        let mut fr = FlightRecorder::new(1, 4);
        fr.shard_panicked(5, 0);
        let net = NetCounts {
            datagrams: 9,
            frames: 72,
            decode_errors: 3,
            truncations: 1,
        };
        let dump = fr.render_dump_with_net("panic", 5, 0, 0, Some(&net));
        let header = dump.lines().next().unwrap();
        assert!(
            header.contains(
                "\"net\":{\"datagrams\":9,\"frames\":72,\"decode_errors\":3,\"truncations\":1}"
            ),
            "{header}"
        );
        // The plain form stays byte-identical to the pre-net format.
        let plain = fr.render_dump("panic", 5, 0, 0);
        assert!(!plain.contains("\"net\""));
    }

    #[test]
    fn ring_keeps_the_newest_tail() {
        let mut fr = FlightRecorder::new(0, 4);
        for slot in 0..10 {
            fr.slot_end(slot, 0);
        }
        let dump = fr.render_dump("gave_up", 9, 2, 0);
        assert!(dump.starts_with(
            "{\"type\":\"flight_dump\",\"shard\":0,\"reason\":\"gave_up\",\"slot\":9,\
             \"attempt\":2,\"orphans\":0,\"events\":4,\"events_dropped\":6}"
        ));
        assert!(dump.contains("\"slot\":6"));
        assert!(!dump.contains("\"slot\":5,"), "oldest events evicted");
        assert_eq!(fr.shard(), 0);
        assert_eq!(fr.ring().len(), 4);
    }
}
