//! # smbm-obs
//!
//! Observability layer for the simulation engine: a zero-cost [`Observer`]
//! trait with per-slot and per-packet hooks, plus batteries-included
//! implementations:
//!
//! * [`NullObserver`] — the default; every hook is an empty inlined no-op,
//!   so the uninstrumented engine pays nothing;
//! * [`RingEventLog`] — a bounded in-memory structured event buffer with
//!   JSONL export;
//! * [`HistogramRecorder`] — log-bucketed histograms of latency, buffer
//!   occupancy, queue length and burst size, plus drop-reason counts;
//! * [`PhaseProfiler`] — wall-clock timing of the arrival, transmission,
//!   flush and drain phases and end-to-end slot throughput;
//! * the live telemetry plane — per-shard [`StatCell`]s written lock-free
//!   from the hot loop, a [`TelemetrySampler`] background thread turning
//!   them into a bounded time-series with JSONL and Prometheus exposition;
//! * [`FlightRecorder`] — a bounded per-shard ring of recent events the
//!   runtime supervisor dumps post-mortem when a shard dies.
//!
//! Observers are passive: they never influence admission decisions or the
//! slot loop, so an instrumented run produces bit-identical results to an
//! uninstrumented one (the engine's integration tests pin this).
//!
//! ## Example
//!
//! ```
//! use smbm_obs::{HistogramRecorder, Observer};
//! use smbm_switch::PortId;
//!
//! let mut rec = HistogramRecorder::new();
//! rec.slot_start(0);
//! rec.arrival(0, PortId::new(0), 1, 5);
//! rec.admitted(0, PortId::new(0));
//! rec.transmitted(0, PortId::new(0), 3, 5);
//! rec.slot_end(0, 0);
//! assert_eq!(rec.transmitted_packets(), 1);
//! assert!(rec.to_json().contains("\"latency\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod flight;
mod hist;
mod profile;
mod sink;
mod telemetry;

pub use event::{Event, RingEventLog};
pub use flight::FlightRecorder;
pub use hist::{HistogramRecorder, LogHistogram};
pub use profile::{PhaseProfiler, PhaseReport};
pub use sink::JsonlWriter;
pub use telemetry::{
    NetCounts, SampleRates, StatCell, StatSnapshot, TelemetryConfig, TelemetryObserver,
    TelemetryReport, TelemetrySample, TelemetrySampler,
};

use smbm_switch::PortId;
pub use smbm_switch::{ArrivalOutcome, DropReason};

/// A phase of the slot loop, reported to [`Observer::phase_start`] /
/// [`Observer::phase_end`].
///
/// Drain slots report only [`Phase::Drain`] (not `Transmission`), so the
/// four phase timings partition the profiled wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Popping arrival batches from ingress rings (runtime datapath only;
    /// the offline engine reads its trace for free).
    Ingress,
    /// Offering the slot's burst to the admission policy.
    Arrival,
    /// The transmission phase of a regular (trace-driven) slot.
    Transmission,
    /// A periodic flushout discarding the buffer.
    Flush,
    /// Extra slots run with no arrivals to empty the buffer (periodic
    /// drain-mode flush or the final drain).
    Drain,
    /// Supervised shard recovery: accounting a dead incarnation, draining
    /// or re-homing its orphaned ring backlog, and restarting the shard
    /// (runtime datapath only).
    Recovery,
}

impl Phase {
    /// A stable lowercase label, used in profile reports.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Ingress => "ingress",
            Phase::Arrival => "arrival",
            Phase::Transmission => "transmission",
            Phase::Flush => "flush",
            Phase::Drain => "drain",
            Phase::Recovery => "recovery",
        }
    }

    pub(crate) const COUNT: usize = 6;

    pub(crate) fn index(self) -> usize {
        match self {
            Phase::Ingress => 0,
            Phase::Arrival => 1,
            Phase::Transmission => 2,
            Phase::Flush => 3,
            Phase::Drain => 4,
            Phase::Recovery => 5,
        }
    }

    pub(crate) fn all() -> [Phase; Phase::COUNT] {
        [
            Phase::Ingress,
            Phase::Arrival,
            Phase::Transmission,
            Phase::Flush,
            Phase::Drain,
            Phase::Recovery,
        ]
    }
}

/// Per-slot / per-packet instrumentation hooks called by the simulation
/// engine.
///
/// Every hook has an empty default body, so implementors only override what
/// they care about and [`NullObserver`] compiles down to nothing. `slot` is
/// the engine's running slot counter; it keeps increasing through drain
/// slots, matching [`smbm_sim::RunSummary::slots`] semantics.
///
/// [`smbm_sim::RunSummary::slots`]: ../smbm_sim/struct.RunSummary.html
#[allow(unused_variables)]
pub trait Observer {
    /// A new slot begins.
    fn slot_start(&mut self, slot: u64) {}

    /// A packet is offered to the admission policy. `work` is its required
    /// processing (1 in the value model) and `value` its intrinsic value
    /// (1 in the processing model).
    fn arrival(&mut self, slot: u64, port: PortId, work: u32, value: u64) {}

    /// The offered packet entered the buffer.
    fn admitted(&mut self, slot: u64, port: PortId) {}

    /// The offered packet was rejected.
    fn dropped(&mut self, slot: u64, port: PortId, reason: DropReason) {}

    /// A full ingress ring rejected `packets` packets destined into the
    /// runtime before they reached admission control (runtime datapath
    /// only). Distinct from [`Observer::dropped`] with
    /// [`DropReason::Backpressure`], which reports per-packet attribution
    /// when the caller has it.
    fn backpressure(&mut self, slot: u64, packets: u64) {}

    /// A resident packet queued for `victim` was evicted to make room
    /// (always followed by [`Observer::admitted`] for the arrival).
    fn pushed_out(&mut self, slot: u64, victim: PortId) {}

    /// A packet left the switch after `latency` slots in the buffer.
    fn transmitted(&mut self, slot: u64, port: PortId, latency: u64, value: u64) {}

    /// A periodic flushout discarded `discarded` resident packets.
    fn flush(&mut self, slot: u64, discarded: u64) {}

    /// A drain (zero-arrival slot sequence) begins.
    fn drain_start(&mut self, slot: u64) {}

    /// The drain finished; the buffer is empty.
    fn drain_end(&mut self, slot: u64) {}

    /// The slot ended with `occupancy` packets resident.
    fn slot_end(&mut self, slot: u64, occupancy: usize) {}

    /// The deepest per-port queue held `depth` packets at the end of the
    /// slot (runtime datapath only; feeds the telemetry plane's queue-depth
    /// gauge and high-watermark).
    fn queue_depth(&mut self, slot: u64, depth: u64) {}

    /// A shard (re)started serving a switch with the given shared buffer
    /// limit and port count (runtime datapath only; feeds the telemetry
    /// plane's configuration gauges).
    fn shard_started(&mut self, buffer_limit: usize, ports: usize) {}

    /// A phase of the slot loop begins.
    fn phase_start(&mut self, phase: Phase) {}

    /// The phase ends.
    fn phase_end(&mut self, phase: Phase) {}

    /// A supervised shard incarnation died at `slot` with `orphans` packets
    /// still queued in its ingress rings (runtime datapath only).
    fn shard_panicked(&mut self, slot: u64, orphans: u64) {}

    /// The supervisor rebuilt the dead shard from its service config;
    /// `attempt` is the 1-based restart count against the budget.
    fn shard_restarted(&mut self, slot: u64, attempt: u64) {}

    /// The supervisor exhausted its restart budget and abandoned the shard,
    /// dropping `orphans` ring packets as shard-failure losses.
    fn shard_failed(&mut self, slot: u64, orphans: u64) {}
}

/// The zero-cost default observer: every hook is a no-op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {}

impl<O: Observer> Observer for &mut O {
    fn slot_start(&mut self, slot: u64) {
        (**self).slot_start(slot);
    }
    fn arrival(&mut self, slot: u64, port: PortId, work: u32, value: u64) {
        (**self).arrival(slot, port, work, value);
    }
    fn admitted(&mut self, slot: u64, port: PortId) {
        (**self).admitted(slot, port);
    }
    fn dropped(&mut self, slot: u64, port: PortId, reason: DropReason) {
        (**self).dropped(slot, port, reason);
    }
    fn backpressure(&mut self, slot: u64, packets: u64) {
        (**self).backpressure(slot, packets);
    }
    fn pushed_out(&mut self, slot: u64, victim: PortId) {
        (**self).pushed_out(slot, victim);
    }
    fn transmitted(&mut self, slot: u64, port: PortId, latency: u64, value: u64) {
        (**self).transmitted(slot, port, latency, value);
    }
    fn flush(&mut self, slot: u64, discarded: u64) {
        (**self).flush(slot, discarded);
    }
    fn drain_start(&mut self, slot: u64) {
        (**self).drain_start(slot);
    }
    fn drain_end(&mut self, slot: u64) {
        (**self).drain_end(slot);
    }
    fn slot_end(&mut self, slot: u64, occupancy: usize) {
        (**self).slot_end(slot, occupancy);
    }
    fn queue_depth(&mut self, slot: u64, depth: u64) {
        (**self).queue_depth(slot, depth);
    }
    fn shard_started(&mut self, buffer_limit: usize, ports: usize) {
        (**self).shard_started(buffer_limit, ports);
    }
    fn phase_start(&mut self, phase: Phase) {
        (**self).phase_start(phase);
    }
    fn phase_end(&mut self, phase: Phase) {
        (**self).phase_end(phase);
    }
    fn shard_panicked(&mut self, slot: u64, orphans: u64) {
        (**self).shard_panicked(slot, orphans);
    }
    fn shard_restarted(&mut self, slot: u64, attempt: u64) {
        (**self).shard_restarted(slot, attempt);
    }
    fn shard_failed(&mut self, slot: u64, orphans: u64) {
        (**self).shard_failed(slot, orphans);
    }
}

/// Absent observers are no-ops, so optional instrumentation (CLI flags) can
/// compose statically without boxing.
impl<O: Observer> Observer for Option<O> {
    fn slot_start(&mut self, slot: u64) {
        if let Some(o) = self {
            o.slot_start(slot);
        }
    }
    fn arrival(&mut self, slot: u64, port: PortId, work: u32, value: u64) {
        if let Some(o) = self {
            o.arrival(slot, port, work, value);
        }
    }
    fn admitted(&mut self, slot: u64, port: PortId) {
        if let Some(o) = self {
            o.admitted(slot, port);
        }
    }
    fn dropped(&mut self, slot: u64, port: PortId, reason: DropReason) {
        if let Some(o) = self {
            o.dropped(slot, port, reason);
        }
    }
    fn backpressure(&mut self, slot: u64, packets: u64) {
        if let Some(o) = self {
            o.backpressure(slot, packets);
        }
    }
    fn pushed_out(&mut self, slot: u64, victim: PortId) {
        if let Some(o) = self {
            o.pushed_out(slot, victim);
        }
    }
    fn transmitted(&mut self, slot: u64, port: PortId, latency: u64, value: u64) {
        if let Some(o) = self {
            o.transmitted(slot, port, latency, value);
        }
    }
    fn flush(&mut self, slot: u64, discarded: u64) {
        if let Some(o) = self {
            o.flush(slot, discarded);
        }
    }
    fn drain_start(&mut self, slot: u64) {
        if let Some(o) = self {
            o.drain_start(slot);
        }
    }
    fn drain_end(&mut self, slot: u64) {
        if let Some(o) = self {
            o.drain_end(slot);
        }
    }
    fn slot_end(&mut self, slot: u64, occupancy: usize) {
        if let Some(o) = self {
            o.slot_end(slot, occupancy);
        }
    }
    fn queue_depth(&mut self, slot: u64, depth: u64) {
        if let Some(o) = self {
            o.queue_depth(slot, depth);
        }
    }
    fn shard_started(&mut self, buffer_limit: usize, ports: usize) {
        if let Some(o) = self {
            o.shard_started(buffer_limit, ports);
        }
    }
    fn phase_start(&mut self, phase: Phase) {
        if let Some(o) = self {
            o.phase_start(phase);
        }
    }
    fn phase_end(&mut self, phase: Phase) {
        if let Some(o) = self {
            o.phase_end(phase);
        }
    }
    fn shard_panicked(&mut self, slot: u64, orphans: u64) {
        if let Some(o) = self {
            o.shard_panicked(slot, orphans);
        }
    }
    fn shard_restarted(&mut self, slot: u64, attempt: u64) {
        if let Some(o) = self {
            o.shard_restarted(slot, attempt);
        }
    }
    fn shard_failed(&mut self, slot: u64, orphans: u64) {
        if let Some(o) = self {
            o.shard_failed(slot, orphans);
        }
    }
}

/// Pairs fan every hook out to both members; nest pairs for wider fan-out.
impl<A: Observer, B: Observer> Observer for (A, B) {
    fn slot_start(&mut self, slot: u64) {
        self.0.slot_start(slot);
        self.1.slot_start(slot);
    }
    fn arrival(&mut self, slot: u64, port: PortId, work: u32, value: u64) {
        self.0.arrival(slot, port, work, value);
        self.1.arrival(slot, port, work, value);
    }
    fn admitted(&mut self, slot: u64, port: PortId) {
        self.0.admitted(slot, port);
        self.1.admitted(slot, port);
    }
    fn dropped(&mut self, slot: u64, port: PortId, reason: DropReason) {
        self.0.dropped(slot, port, reason);
        self.1.dropped(slot, port, reason);
    }
    fn backpressure(&mut self, slot: u64, packets: u64) {
        self.0.backpressure(slot, packets);
        self.1.backpressure(slot, packets);
    }
    fn pushed_out(&mut self, slot: u64, victim: PortId) {
        self.0.pushed_out(slot, victim);
        self.1.pushed_out(slot, victim);
    }
    fn transmitted(&mut self, slot: u64, port: PortId, latency: u64, value: u64) {
        self.0.transmitted(slot, port, latency, value);
        self.1.transmitted(slot, port, latency, value);
    }
    fn flush(&mut self, slot: u64, discarded: u64) {
        self.0.flush(slot, discarded);
        self.1.flush(slot, discarded);
    }
    fn drain_start(&mut self, slot: u64) {
        self.0.drain_start(slot);
        self.1.drain_start(slot);
    }
    fn drain_end(&mut self, slot: u64) {
        self.0.drain_end(slot);
        self.1.drain_end(slot);
    }
    fn slot_end(&mut self, slot: u64, occupancy: usize) {
        self.0.slot_end(slot, occupancy);
        self.1.slot_end(slot, occupancy);
    }
    fn queue_depth(&mut self, slot: u64, depth: u64) {
        self.0.queue_depth(slot, depth);
        self.1.queue_depth(slot, depth);
    }
    fn shard_started(&mut self, buffer_limit: usize, ports: usize) {
        self.0.shard_started(buffer_limit, ports);
        self.1.shard_started(buffer_limit, ports);
    }
    fn phase_start(&mut self, phase: Phase) {
        self.0.phase_start(phase);
        self.1.phase_start(phase);
    }
    fn phase_end(&mut self, phase: Phase) {
        self.0.phase_end(phase);
        self.1.phase_end(phase);
    }
    fn shard_panicked(&mut self, slot: u64, orphans: u64) {
        self.0.shard_panicked(slot, orphans);
        self.1.shard_panicked(slot, orphans);
    }
    fn shard_restarted(&mut self, slot: u64, attempt: u64) {
        self.0.shard_restarted(slot, attempt);
        self.1.shard_restarted(slot, attempt);
    }
    fn shard_failed(&mut self, slot: u64, orphans: u64) {
        self.0.shard_failed(slot, orphans);
        self.1.shard_failed(slot, orphans);
    }
}

/// Minimal JSON string escaping for labels embedded in event/metric output
/// (policy names are alphanumeric, but correctness is cheap).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_callable() {
        let mut o = NullObserver;
        o.slot_start(0);
        o.arrival(0, PortId::new(1), 1, 1);
        o.slot_end(0, 0);
    }

    #[test]
    fn pair_and_option_compose() {
        let mut o = (Some(HistogramRecorder::new()), NullObserver);
        o.slot_start(0);
        o.arrival(0, PortId::new(0), 1, 2);
        o.admitted(0, PortId::new(0));
        o.slot_end(0, 1);
        assert_eq!(o.0.as_ref().unwrap().arrivals(), 1);
    }

    #[test]
    fn phase_labels_are_stable() {
        assert_eq!(Phase::Arrival.label(), "arrival");
        assert_eq!(Phase::Drain.label(), "drain");
        assert_eq!(Phase::Recovery.label(), "recovery");
    }

    #[test]
    fn phase_index_matches_all() {
        for (i, p) in Phase::all().into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
