//! Wall-clock profiling of the slot loop's phases.

use std::time::{Duration, Instant};

use crate::{Observer, Phase};

/// An [`Observer`] accumulating wall-clock time per [`Phase`] plus overall
/// slot throughput.
///
/// The engine reports disjoint phases (drain slots carry only
/// [`Phase::Drain`]), so the per-phase totals partition the instrumented
/// portion of the run. Timing costs two `Instant::now()` calls per phase
/// and per slot — opt in via `--profile`, don't pay by default.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    started: [Option<Instant>; Phase::COUNT],
    totals: [Duration; Phase::COUNT],
    entries: [u64; Phase::COUNT],
    run_started: Option<Instant>,
    run_elapsed: Duration,
    slots: u64,
}

/// A finished profile: per-phase totals and slot throughput, detached from
/// the live profiler so it can be rendered after the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseReport {
    /// Total time popping ingress rings (runtime datapath only; zero for
    /// simulation runs).
    pub ingress: Duration,
    /// Total time in the arrival phase.
    pub arrival: Duration,
    /// Total time in trace-slot transmission phases.
    pub transmission: Duration,
    /// Total time spent flushing.
    pub flush: Duration,
    /// Total time in drain slots.
    pub drain: Duration,
    /// Total time in supervised shard recovery (runtime datapath only).
    pub recovery: Duration,
    /// Wall-clock span from the first slot start to the last slot end.
    pub wall: Duration,
    /// Slots executed (trace and drain).
    pub slots: u64,
}

impl PhaseReport {
    /// Slots per wall-clock second, 0.0 before any slot completes.
    pub fn slots_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.slots as f64 / secs
        } else {
            0.0
        }
    }

    /// Renders the report as one JSON object (times in nanoseconds).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ingress_ns\":{},\"arrival_ns\":{},\"transmission_ns\":{},\"flush_ns\":{},\
             \"drain_ns\":{},\"recovery_ns\":{},\"wall_ns\":{},\"slots\":{},\"slots_per_sec\":{:.1}}}",
            self.ingress.as_nanos(),
            self.arrival.as_nanos(),
            self.transmission.as_nanos(),
            self.flush.as_nanos(),
            self.drain.as_nanos(),
            self.recovery.as_nanos(),
            self.wall.as_nanos(),
            self.slots,
            self.slots_per_sec()
        )
    }
}

impl std::fmt::Display for PhaseReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ingress {:.3?}, arrival {:.3?}, transmission {:.3?}, flush {:.3?}, drain {:.3?}, recovery {:.3?} | {} slots in {:.3?} ({:.0} slots/s)",
            self.ingress,
            self.arrival,
            self.transmission,
            self.flush,
            self.drain,
            self.recovery,
            self.slots,
            self.wall,
            self.slots_per_sec()
        )
    }
}

impl PhaseProfiler {
    /// Creates an idle profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Slots observed so far.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Times a phase has been entered.
    pub fn entries(&self, phase: Phase) -> u64 {
        self.entries[phase.index()]
    }

    /// Accumulated time in a phase.
    pub fn total(&self, phase: Phase) -> Duration {
        self.totals[phase.index()]
    }

    /// Snapshots the profile.
    pub fn report(&self) -> PhaseReport {
        let [ingress, arrival, transmission, flush, drain, recovery] =
            Phase::all().map(|p| self.totals[p.index()]);
        PhaseReport {
            ingress,
            arrival,
            transmission,
            flush,
            drain,
            recovery,
            wall: self.run_elapsed,
            slots: self.slots,
        }
    }
}

impl Observer for PhaseProfiler {
    fn slot_start(&mut self, _slot: u64) {
        if self.run_started.is_none() {
            self.run_started = Some(Instant::now());
        }
    }

    fn slot_end(&mut self, _slot: u64, _occupancy: usize) {
        self.slots += 1;
        if let Some(start) = self.run_started {
            self.run_elapsed = start.elapsed();
        }
    }

    fn phase_start(&mut self, phase: Phase) {
        self.started[phase.index()] = Some(Instant::now());
    }

    fn phase_end(&mut self, phase: Phase) {
        if let Some(start) = self.started[phase.index()].take() {
            self.totals[phase.index()] += start.elapsed();
            self.entries[phase.index()] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_phase_time_and_slots() {
        let mut p = PhaseProfiler::new();
        p.slot_start(0);
        p.phase_start(Phase::Arrival);
        std::thread::sleep(Duration::from_millis(2));
        p.phase_end(Phase::Arrival);
        p.phase_start(Phase::Transmission);
        p.phase_end(Phase::Transmission);
        p.slot_end(0, 0);

        assert_eq!(p.slots(), 1);
        assert_eq!(p.entries(Phase::Arrival), 1);
        let report = p.report();
        assert!(report.arrival >= Duration::from_millis(2));
        assert!(report.wall >= report.arrival);
        assert!(report.slots_per_sec() > 0.0);
        assert!(report.to_json().contains("\"slots\":1"));
        assert!(report.to_string().contains("slots/s"));
    }

    #[test]
    fn unmatched_phase_end_is_ignored() {
        let mut p = PhaseProfiler::new();
        p.phase_end(Phase::Flush);
        assert_eq!(p.entries(Phase::Flush), 0);
        assert_eq!(p.report().slots_per_sec(), 0.0);
    }
}
