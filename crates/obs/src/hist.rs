//! Log-bucketed histograms and the metric-recording observer.

use crate::{DropReason, Observer};
use smbm_switch::PortId;

/// Number of buckets: one for zero plus one per power of two of `u64`.
pub(crate) const BUCKETS: usize = 65;

/// A histogram over `u64` samples with logarithmic (power-of-two) buckets:
/// bucket 0 holds zeros, bucket `i >= 1` holds samples in
/// `[2^(i-1), 2^i)`. Percentiles are answered from the bucket boundaries
/// (clamped to the observed maximum), which is exact for small samples and
/// within a factor of two for large ones — plenty for latency/occupancy
/// tail reporting at O(1) memory.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Reassembles a histogram from raw parts (the telemetry plane's
    /// seqlock-snapshotted atomic cells). `min` uses the `u64::MAX` empty
    /// sentinel, exactly like a live histogram.
    pub(crate) fn from_raw(
        counts: [u64; BUCKETS],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Self {
        LogHistogram {
            counts,
            count,
            sum,
            min,
            max,
        }
    }

    /// The bucket index a sample falls into.
    pub(crate) fn bucket(sample: u64) -> usize {
        if sample == 0 {
            0
        } else {
            64 - sample.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.counts[Self::bucket(sample)] += 1;
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The raw per-bucket counts: index 0 holds zeros, index `i >= 1` the
    /// samples in `[2^(i-1), 2^i)`. Exposed for exposition sinks and for
    /// consistency checks (`count()` always equals the bucket sum).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Smallest sample, 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the inclusive upper bound of the
    /// bucket where the cumulative count crosses `q * count`, clamped to
    /// the observed extrema. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Median (`percentile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Adds every bucket and summary statistic of `other` into `self`, as if
    /// both histograms had recorded into one. Used to aggregate per-shard
    /// runtime histograms into a datapath-wide view.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Renders the summary statistics as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{:.4},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            self.count,
            self.mean(),
            self.min(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

/// An [`Observer`] aggregating engine activity into log-bucketed histograms:
///
/// * **latency** — buffer sojourn of every transmitted packet (slots);
/// * **occupancy** — buffer occupancy at every slot end;
/// * **queue length** — the longest per-port queue at every slot end
///   (tracked from admission/eviction/transmission events);
/// * **burst size** — arrivals per trace slot (drain slots excluded);
///
/// plus drop counts per [`DropReason`] and totals for every event kind.
#[derive(Debug, Clone, Default)]
pub struct HistogramRecorder {
    latency: LogHistogram,
    occupancy: LogHistogram,
    queue_len: LogHistogram,
    burst: LogHistogram,
    queue_lens: Vec<u64>,
    arrivals_this_slot: u64,
    slot_had_arrival_phase: bool,
    arrivals: u64,
    admitted: u64,
    dropped_full: u64,
    dropped_policy: u64,
    dropped_backpressure: u64,
    dropped_shard_failure: u64,
    dropped_net_decode: u64,
    pushed_out: u64,
    transmitted: u64,
    transmitted_value: u64,
    flushed: u64,
    shard_restarts: u64,
}

impl HistogramRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn queue_slot(&mut self, port: PortId) -> &mut u64 {
        let i = port.index();
        if i >= self.queue_lens.len() {
            self.queue_lens.resize(i + 1, 0);
        }
        &mut self.queue_lens[i]
    }

    /// Packets offered.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Packets admitted.
    pub fn admitted_packets(&self) -> u64 {
        self.admitted
    }

    /// Packets dropped for the given reason.
    pub fn drop_count(&self, reason: DropReason) -> u64 {
        match reason {
            DropReason::BufferFull => self.dropped_full,
            DropReason::Policy => self.dropped_policy,
            DropReason::Backpressure => self.dropped_backpressure,
            DropReason::ShardFailure => self.dropped_shard_failure,
            DropReason::NetDecode => self.dropped_net_decode,
        }
    }

    /// Supervised shard restarts observed.
    pub fn shard_restarts(&self) -> u64 {
        self.shard_restarts
    }

    /// Packets evicted after admission (excluding flushes).
    pub fn pushed_out_packets(&self) -> u64 {
        self.pushed_out
    }

    /// Packets transmitted.
    pub fn transmitted_packets(&self) -> u64 {
        self.transmitted
    }

    /// Total value transmitted.
    pub fn transmitted_value(&self) -> u64 {
        self.transmitted_value
    }

    /// Packets discarded by periodic flushes.
    pub fn flushed_packets(&self) -> u64 {
        self.flushed
    }

    /// Latency histogram (transmitted packets' buffer sojourn, in slots).
    pub fn latency(&self) -> &LogHistogram {
        &self.latency
    }

    /// Occupancy histogram (buffer occupancy at slot end).
    pub fn occupancy(&self) -> &LogHistogram {
        &self.occupancy
    }

    /// Queue-length histogram (longest queue at slot end).
    pub fn queue_len(&self) -> &LogHistogram {
        &self.queue_len
    }

    /// Burst-size histogram (arrivals per trace slot).
    pub fn burst(&self) -> &LogHistogram {
        &self.burst
    }

    /// Renders every histogram and counter as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"arrived\":{},\"admitted\":{},\"pushed_out\":{},\"transmitted\":{},\
             \"transmitted_value\":{},\"flushed\":{},\
             \"drops\":{{\"buffer_full\":{},\"policy\":{},\"backpressure\":{},\"shard_failure\":{}}},\
             \"shard_restarts\":{},\
             \"latency\":{},\"occupancy\":{},\"queue_len\":{},\"burst\":{}}}",
            self.arrivals,
            self.admitted,
            self.pushed_out,
            self.transmitted,
            self.transmitted_value,
            self.flushed,
            self.dropped_full,
            self.dropped_policy,
            self.dropped_backpressure,
            self.dropped_shard_failure,
            self.shard_restarts,
            self.latency.to_json(),
            self.occupancy.to_json(),
            self.queue_len.to_json(),
            self.burst.to_json()
        )
    }
}

impl Observer for HistogramRecorder {
    fn slot_start(&mut self, _slot: u64) {
        self.arrivals_this_slot = 0;
        self.slot_had_arrival_phase = false;
    }

    fn arrival(&mut self, _slot: u64, _port: PortId, _work: u32, _value: u64) {
        self.arrivals += 1;
        self.arrivals_this_slot += 1;
        self.slot_had_arrival_phase = true;
    }

    fn admitted(&mut self, _slot: u64, port: PortId) {
        self.admitted += 1;
        *self.queue_slot(port) += 1;
    }

    fn dropped(&mut self, _slot: u64, _port: PortId, reason: DropReason) {
        match reason {
            DropReason::BufferFull => self.dropped_full += 1,
            DropReason::Policy => self.dropped_policy += 1,
            DropReason::Backpressure => self.dropped_backpressure += 1,
            DropReason::ShardFailure => self.dropped_shard_failure += 1,
            DropReason::NetDecode => self.dropped_net_decode += 1,
        }
    }

    fn backpressure(&mut self, _slot: u64, packets: u64) {
        self.dropped_backpressure += packets;
    }

    fn pushed_out(&mut self, _slot: u64, victim: PortId) {
        self.pushed_out += 1;
        let q = self.queue_slot(victim);
        *q = q.saturating_sub(1);
    }

    fn transmitted(&mut self, _slot: u64, port: PortId, latency: u64, value: u64) {
        self.transmitted += 1;
        self.transmitted_value += value;
        self.latency.record(latency);
        let q = self.queue_slot(port);
        *q = q.saturating_sub(1);
    }

    fn flush(&mut self, _slot: u64, discarded: u64) {
        self.flushed += discarded;
        self.queue_lens.fill(0);
    }

    fn slot_end(&mut self, _slot: u64, occupancy: usize) {
        self.occupancy.record(occupancy as u64);
        self.queue_len
            .record(self.queue_lens.iter().copied().max().unwrap_or(0));
        // Burst sizes only describe trace slots; a drain slot has no
        // arrival phase at all and would skew the histogram toward zero.
        if self.slot_had_arrival_phase {
            self.burst.record(self.arrivals_this_slot);
        }
    }

    fn shard_restarted(&mut self, _slot: u64, _attempt: u64) {
        self.shard_restarts += 1;
    }

    fn shard_failed(&mut self, _slot: u64, orphans: u64) {
        self.dropped_shard_failure += orphans;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_split_at_powers_of_two() {
        assert_eq!(LogHistogram::bucket(0), 0);
        assert_eq!(LogHistogram::bucket(1), 1);
        assert_eq!(LogHistogram::bucket(2), 2);
        assert_eq!(LogHistogram::bucket(3), 2);
        assert_eq!(LogHistogram::bucket(4), 3);
        assert_eq!(LogHistogram::bucket(1023), 10);
        assert_eq!(LogHistogram::bucket(1024), 11);
        assert_eq!(LogHistogram::bucket(u64::MAX), 64);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = LogHistogram::new();
        h.record(37);
        assert_eq!(h.p50(), 37);
        assert_eq!(h.p99(), 37);
        assert_eq!(h.min(), 37);
        assert_eq!(h.max(), 37);
        assert_eq!(h.mean(), 37.0);
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let mut h = LogHistogram::new();
        // 90 zeros, 9 samples of 5, one of 1000.
        for _ in 0..90 {
            h.record(0);
        }
        for _ in 0..9 {
            h.record(5);
        }
        h.record(1000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p90(), 0);
        // 99th falls in the [4, 8) bucket: upper bound 7.
        assert_eq!(h.percentile(0.99), 7);
        // The tail sample caps at the observed max.
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn percentile_upper_bounds_clamp_to_observed_range() {
        let mut h = LogHistogram::new();
        h.record(9); // bucket [8, 16), upper bound 15 > max 9
        h.record(9);
        assert_eq!(h.p50(), 9);
        let mut lo = LogHistogram::new();
        lo.record(40);
        lo.record(41); // both in [32, 64); bucket bound 63 clamps to max 41
        assert_eq!(lo.p50(), 41);
    }

    #[test]
    fn merge_combines_histograms() {
        let mut a = LogHistogram::new();
        a.record(3);
        a.record(9);
        let mut b = LogHistogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 3);
        assert_eq!(a.max(), 100);
        assert!((a.mean() - (3.0 + 9.0 + 100.0) / 3.0).abs() < 1e-12);
        // Merging an empty histogram changes nothing.
        let before = a.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.min(), before.min());
    }

    #[test]
    fn merge_into_empty_receiver_adopts_other_extrema() {
        // The empty receiver's min is the u64::MAX sentinel; a merge must
        // replace it with the donor's real min, not keep the sentinel or
        // report 0.
        let mut empty = LogHistogram::new();
        let mut donor = LogHistogram::new();
        donor.record(12);
        donor.record(700);
        empty.merge(&donor);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.min(), 12);
        assert_eq!(empty.max(), 700);
        assert_eq!(empty.percentile(1.0), 700);
        assert!((empty.mean() - 356.0).abs() < 1e-12);
    }

    #[test]
    fn merge_of_empty_donor_keeps_receiver_extrema() {
        let mut a = LogHistogram::new();
        a.record(5);
        a.merge(&LogHistogram::new());
        // An empty donor carries the u64::MAX min sentinel and max 0;
        // neither may leak into the receiver.
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 5);
        assert_eq!(a.p50(), 5);
    }

    #[test]
    fn merge_propagates_lower_min_and_higher_max() {
        let mut a = LogHistogram::new();
        a.record(50);
        a.record(60);
        let mut below = LogHistogram::new();
        below.record(2);
        a.merge(&below);
        assert_eq!(a.min(), 2, "merged-in min below the receiver's");
        assert_eq!(a.max(), 60);
        let mut above = LogHistogram::new();
        above.record(9_000);
        a.merge(&above);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 9_000, "merged-in max above the receiver's");
        // Percentile clamping relies on the merged extrema: every quantile
        // must stay inside [min, max].
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let p = a.percentile(q);
            assert!((2..=9_000).contains(&p), "percentile({q}) = {p} escaped");
        }
    }

    #[test]
    fn merge_with_overlapping_range_keeps_tighter_receiver_extrema() {
        let mut a = LogHistogram::new();
        a.record(1);
        a.record(1_000_000);
        let mut inner = LogHistogram::new();
        inner.record(500);
        a.merge(&inner);
        // The donor's range nests inside the receiver's: extrema unchanged.
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn recorder_tracks_queue_lengths_and_bursts() {
        let p0 = PortId::new(0);
        let p1 = PortId::new(1);
        let mut r = HistogramRecorder::new();
        r.slot_start(0);
        for _ in 0..3 {
            r.arrival(0, p0, 1, 1);
            r.admitted(0, p0);
        }
        r.arrival(0, p1, 1, 1);
        r.dropped(0, p1, DropReason::Policy);
        r.transmitted(0, p0, 0, 1);
        r.slot_end(0, 2);
        // Longest queue after 3 admissions and 1 transmission on port 0.
        assert_eq!(r.queue_len().max(), 2);
        assert_eq!(r.burst().max(), 4);
        assert_eq!(r.drop_count(DropReason::Policy), 1);
        assert_eq!(r.drop_count(DropReason::BufferFull), 0);
        r.backpressure(0, 5);
        r.dropped(0, p1, DropReason::Backpressure);
        assert_eq!(r.drop_count(DropReason::Backpressure), 6);

        // A drain slot (no arrivals) leaves the burst histogram untouched.
        r.slot_start(1);
        r.transmitted(1, p0, 1, 1);
        r.slot_end(1, 1);
        assert_eq!(r.burst().count(), 1);
        assert_eq!(r.occupancy().count(), 2);

        // Flush zeroes the tracked queues.
        r.flush(2, 1);
        assert_eq!(r.flushed_packets(), 1);
        r.slot_start(3);
        r.slot_end(3, 0);
        assert_eq!(r.queue_len().min(), 0);
    }

    #[test]
    fn recorder_json_contains_all_sections() {
        let mut r = HistogramRecorder::new();
        r.slot_start(0);
        r.arrival(0, PortId::new(0), 1, 3);
        r.admitted(0, PortId::new(0));
        r.slot_end(0, 1);
        let json = r.to_json();
        for key in [
            "\"arrived\":1",
            "\"admitted\":1",
            "\"drops\"",
            "\"buffer_full\":0",
            "\"policy\":0",
            "\"backpressure\":0",
            "\"shard_failure\":0",
            "\"shard_restarts\":0",
            "\"latency\"",
            "\"occupancy\"",
            "\"queue_len\"",
            "\"burst\"",
            "\"p99\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    /// Exact quantile of a sample set, matching the histogram's convention:
    /// the smallest element whose rank reaches `ceil(q * n)`.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        assert!(!sorted.is_empty());
        let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[target.min(sorted.len()) - 1]
    }

    /// Asserts the histogram's p50/p95/p99 are within the documented factor
    /// of two of the exact sorted-sample quantiles and inside the observed
    /// range.
    fn assert_quantiles_accurate(samples: &[u64], label: &str) {
        let mut h = LogHistogram::new();
        for &s in samples {
            h.record(s);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        for (q, got) in [(0.50, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
            let exact = exact_quantile(&sorted, q);
            assert!(
                got >= exact / 2 && (exact == 0 || got <= exact.saturating_mul(2)),
                "{label}: p{:.0} = {got} not within 2x of exact {exact}",
                q * 100.0
            );
            assert!(
                (h.min()..=h.max()).contains(&got),
                "{label}: p{:.0} = {got} escaped [{}, {}]",
                q * 100.0,
                h.min(),
                h.max()
            );
        }
    }

    #[test]
    fn quantiles_accurate_on_uniform_distribution() {
        // Deterministic LCG over [1, 1000].
        let mut x = 12345u64;
        let samples: Vec<u64> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 1000 + 1
            })
            .collect();
        assert_quantiles_accurate(&samples, "uniform");
    }

    #[test]
    fn quantiles_accurate_on_bimodal_distribution() {
        // Half fast-path at 3 slots, half slow-path at 900 slots: the exact
        // p50 sits on the mode boundary, p95/p99 deep in the slow mode.
        let mut samples = vec![3u64; 5_000];
        samples.extend(std::iter::repeat_n(900u64, 5_000));
        assert_quantiles_accurate(&samples, "bimodal");
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        // The upper mode is the max, so tail quantiles are exact.
        assert_eq!(h.p95(), 900);
        assert_eq!(h.p99(), 900);
    }

    #[test]
    fn quantiles_accurate_on_single_bucket_distribution() {
        // All samples inside one power-of-two bucket [32, 64): every
        // quantile answers from the same bucket, clamped to the extrema.
        let samples: Vec<u64> = (0..1_000).map(|i| 40 + i % 8).collect();
        assert_quantiles_accurate(&samples, "single-bucket");
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.50, 0.95, 0.99] {
            let p = h.percentile(q);
            assert!((40..=47).contains(&p), "percentile({q}) = {p}");
        }
    }

    #[test]
    fn recorder_tracks_supervision_events() {
        let mut r = HistogramRecorder::new();
        r.shard_panicked(10, 4);
        r.shard_restarted(10, 1);
        r.shard_restarted(25, 2);
        r.shard_failed(40, 7);
        r.dropped(40, PortId::new(0), DropReason::ShardFailure);
        assert_eq!(r.shard_restarts(), 2);
        assert_eq!(r.drop_count(DropReason::ShardFailure), 8);
        assert!(r.to_json().contains("\"shard_restarts\":2"));
    }
}
