//! The live telemetry plane: lock-free per-shard stat cells, a background
//! sampler turning them into a bounded time-series, and two std-only
//! exposition sinks (periodic JSONL snapshots and Prometheus text format).
//!
//! ## Design
//!
//! Each shard owns one [`StatCell`]: a cache-line-padded block of atomic
//! counters and gauges plus a mergeable latency histogram guarded by a
//! seqlock-style epoch. The shard hot loop never takes a lock and never
//! issues a stronger-than-release atomic: the [`TelemetryObserver`]
//! accumulates per-packet tallies in plain (non-atomic) locals and folds
//! them into the cell once per slot with relaxed read-modify-writes, so the
//! per-packet cost of telemetry is an ordinary register increment.
//!
//! The [`TelemetrySampler`] thread snapshots every cell at a configurable
//! interval. Counter loads are relaxed: each field is individually monotone
//! (per-location modification order), but a mid-run sample may observe
//! fields of the *same* cell at slightly different instants — e.g.
//! `admitted` momentarily ahead of `arrived`. The final sample is taken
//! after the runtime joins its shard threads, so thread-join's
//! happens-before edge makes it exact. The latency histogram needs
//! multi-word consistency even mid-run (its `count` must equal the bucket
//! sum for quantiles to make sense), so it sits behind a seqlock epoch:
//! writers bump the epoch to odd, merge, bump back to even; readers retry
//! while the epoch is odd or changed underneath them.

use std::collections::VecDeque;
use std::ffi::OsString;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::hist::BUCKETS;
use crate::sink::JsonlWriter;
use crate::{DropReason, LogHistogram, Observer};
use smbm_switch::PortId;

/// Consecutive failed snapshot attempts before the reader yields its
/// timeslice (the writer may be descheduled mid-write-section; spinning
/// against it would just burn the core the writer needs).
const SEQLOCK_SPINS_BEFORE_YIELD: u32 = 64;

/// A [`LogHistogram`] shared between one writer (the shard thread) and any
/// number of snapshotting readers, guarded by a seqlock-style epoch.
///
/// All storage is atomic, so even a lost seqlock race yields a merely stale
/// or torn histogram — never undefined behavior (`smbm-obs` forbids
/// `unsafe`). The epoch protocol is the classic one: the writer bumps the
/// epoch to odd, applies relaxed updates, then bumps it back to even with
/// release ordering; readers pair an acquire load with an acquire fence and
/// retry on an odd or moved epoch.
#[derive(Debug)]
pub(crate) struct AtomicLogHistogram {
    epoch: AtomicU64,
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicLogHistogram {
    pub(crate) fn new() -> Self {
        AtomicLogHistogram {
            epoch: AtomicU64::new(0),
            counts: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Folds a plain single-threaded delta histogram into the shared cells
    /// under one seqlock write section. Single-writer: only the owning
    /// shard thread calls this.
    pub(crate) fn merge_delta(&self, delta: &LogHistogram) {
        if delta.count() == 0 {
            return;
        }
        self.epoch.fetch_add(1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (i, &c) in delta.bucket_counts().iter().enumerate() {
            if c != 0 {
                self.counts[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(delta.count(), Ordering::Relaxed);
        self.sum.fetch_add(delta.sum(), Ordering::Relaxed);
        self.min.fetch_min(delta.min(), Ordering::Relaxed);
        self.max.fetch_max(delta.max(), Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    fn read_relaxed(&self) -> LogHistogram {
        let mut counts = [0u64; BUCKETS];
        for (dst, src) in counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        LogHistogram::from_raw(
            counts,
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// A consistent snapshot. Retries until a read completes without the
    /// epoch moving; termination is guaranteed because write sections are
    /// short and bounded (one merge per slot), so the reader always finds a
    /// gap between them.
    pub(crate) fn snapshot(&self) -> LogHistogram {
        let mut attempts: u32 = 0;
        loop {
            let before = self.epoch.load(Ordering::Acquire);
            if before & 1 == 0 {
                let hist = self.read_relaxed();
                fence(Ordering::Acquire);
                if self.epoch.load(Ordering::Relaxed) == before {
                    return hist;
                }
            }
            attempts += 1;
            if attempts.is_multiple_of(SEQLOCK_SPINS_BEFORE_YIELD) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// Per-socket network ingress tallies: how many datagrams and frames a
/// socket received and how many frames it failed to decode.
///
/// Lives in `smbm-obs` so the stat cells, the flight recorder, and the
/// network plane's own reports all speak the same counter vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetCounts {
    /// Datagrams received.
    pub datagrams: u64,
    /// Frames successfully decoded into packets.
    pub frames: u64,
    /// Frames (or whole datagrams) that failed decoding.
    pub decode_errors: u64,
    /// Datagrams truncated mid-frame (their missing frames also count as
    /// decode errors).
    pub truncations: u64,
}

impl NetCounts {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &NetCounts) {
        self.datagrams += other.datagrams;
        self.frames += other.frames;
        self.decode_errors += other.decode_errors;
        self.truncations += other.truncations;
    }

    /// Renders the tallies as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"datagrams\":{},\"frames\":{},\"decode_errors\":{},\"truncations\":{}}}",
            self.datagrams, self.frames, self.decode_errors, self.truncations
        )
    }
}

/// One shard's live statistics: atomic counters and gauges written by the
/// shard thread with relaxed ordering and read by the [`TelemetrySampler`].
///
/// Padded to two 64-byte cache lines' alignment so neighbouring shards'
/// cells never false-share, which is what keeps the hot-loop writes cheap.
#[derive(Debug)]
#[repr(align(128))]
pub struct StatCell {
    // Counters (monotone).
    arrived: AtomicU64,
    arrived_value: AtomicU64,
    admitted: AtomicU64,
    dropped_buffer_full: AtomicU64,
    dropped_policy: AtomicU64,
    dropped_backpressure: AtomicU64,
    dropped_shard_failure: AtomicU64,
    dropped_net_decode: AtomicU64,
    pushed_out: AtomicU64,
    transmitted: AtomicU64,
    transmitted_value: AtomicU64,
    flushed: AtomicU64,
    // Net ingress counters. Unlike the single-writer fields above these are
    // written by the *socket* thread(s) feeding the shard, not the shard
    // thread itself; plain relaxed fetch_adds are multi-writer safe.
    net_datagrams: AtomicU64,
    net_frames: AtomicU64,
    net_decode_errors: AtomicU64,
    net_truncations: AtomicU64,
    slots: AtomicU64,
    restarts: AtomicU64,
    panics: AtomicU64,
    failures: AtomicU64,
    // Gauges (latest value; queue_hwm is monotone max).
    occupancy: AtomicU64,
    queue_depth: AtomicU64,
    queue_hwm: AtomicU64,
    buffer_limit: AtomicU64,
    ports: AtomicU64,
    latency: AtomicLogHistogram,
}

impl Default for StatCell {
    fn default() -> Self {
        Self::new()
    }
}

impl StatCell {
    /// Creates a zeroed cell.
    pub fn new() -> Self {
        StatCell {
            arrived: AtomicU64::new(0),
            arrived_value: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            dropped_buffer_full: AtomicU64::new(0),
            dropped_policy: AtomicU64::new(0),
            dropped_backpressure: AtomicU64::new(0),
            dropped_shard_failure: AtomicU64::new(0),
            dropped_net_decode: AtomicU64::new(0),
            pushed_out: AtomicU64::new(0),
            transmitted: AtomicU64::new(0),
            transmitted_value: AtomicU64::new(0),
            flushed: AtomicU64::new(0),
            net_datagrams: AtomicU64::new(0),
            net_frames: AtomicU64::new(0),
            net_decode_errors: AtomicU64::new(0),
            net_truncations: AtomicU64::new(0),
            slots: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            occupancy: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
            buffer_limit: AtomicU64::new(0),
            ports: AtomicU64::new(0),
            latency: AtomicLogHistogram::new(),
        }
    }

    /// Records socket-level receive activity and decode losses from a net
    /// ingress thread feeding this shard. Safe to call from any thread —
    /// these counters are multi-writer by design (relaxed `fetch_add`s),
    /// unlike the single-writer shard-loop fields. `dropped_frames` is the
    /// [`crate::DropReason::NetDecode`] drop count: frames from well-formed
    /// datagrams that were lost to truncation or failed validation.
    pub fn record_net(&self, counts: NetCounts, dropped_frames: u64) {
        let r = Ordering::Relaxed;
        if counts.datagrams != 0 {
            self.net_datagrams.fetch_add(counts.datagrams, r);
        }
        if counts.frames != 0 {
            self.net_frames.fetch_add(counts.frames, r);
        }
        if counts.decode_errors != 0 {
            self.net_decode_errors.fetch_add(counts.decode_errors, r);
        }
        if counts.truncations != 0 {
            self.net_truncations.fetch_add(counts.truncations, r);
        }
        if dropped_frames != 0 {
            self.dropped_net_decode.fetch_add(dropped_frames, r);
        }
    }

    /// Reads just the net ingress tallies with relaxed loads; cheap enough
    /// for the supervisor to call while assembling a flight dump.
    pub fn net_counts(&self) -> NetCounts {
        let r = Ordering::Relaxed;
        NetCounts {
            datagrams: self.net_datagrams.load(r),
            frames: self.net_frames.load(r),
            decode_errors: self.net_decode_errors.load(r),
            truncations: self.net_truncations.load(r),
        }
    }

    /// Reads every field with relaxed loads (see the module docs for the
    /// consistency contract) and the latency histogram through its seqlock.
    pub fn snapshot(&self) -> StatSnapshot {
        let r = Ordering::Relaxed;
        StatSnapshot {
            arrived: self.arrived.load(r),
            arrived_value: self.arrived_value.load(r),
            admitted: self.admitted.load(r),
            dropped_buffer_full: self.dropped_buffer_full.load(r),
            dropped_policy: self.dropped_policy.load(r),
            dropped_backpressure: self.dropped_backpressure.load(r),
            dropped_shard_failure: self.dropped_shard_failure.load(r),
            dropped_net_decode: self.dropped_net_decode.load(r),
            net: self.net_counts(),
            pushed_out: self.pushed_out.load(r),
            transmitted: self.transmitted.load(r),
            transmitted_value: self.transmitted_value.load(r),
            flushed: self.flushed.load(r),
            slots: self.slots.load(r),
            restarts: self.restarts.load(r),
            panics: self.panics.load(r),
            failures: self.failures.load(r),
            occupancy: self.occupancy.load(r),
            queue_depth: self.queue_depth.load(r),
            queue_hwm: self.queue_hwm.load(r),
            buffer_limit: self.buffer_limit.load(r),
            ports: self.ports.load(r),
            latency: self.latency.snapshot(),
        }
    }
}

/// A point-in-time copy of one [`StatCell`] (or, via
/// [`StatSnapshot::merge`], of several).
#[derive(Debug, Clone, Default)]
pub struct StatSnapshot {
    /// Packets offered to admission control.
    pub arrived: u64,
    /// Total intrinsic value offered.
    pub arrived_value: u64,
    /// Packets admitted to the buffer.
    pub admitted: u64,
    /// Packets rejected because the shared buffer was full.
    pub dropped_buffer_full: u64,
    /// Packets rejected by policy decision.
    pub dropped_policy: u64,
    /// Packets rejected upstream by full ingress rings.
    pub dropped_backpressure: u64,
    /// Packets lost to abandoned (given-up) shards.
    pub dropped_shard_failure: u64,
    /// Frames lost to network decoding (truncation or failed validation).
    pub dropped_net_decode: u64,
    /// Socket-level receive tallies of the net ingress feeding this shard
    /// (all zero when the datapath runs without a network plane).
    pub net: NetCounts,
    /// Resident packets evicted to make room.
    pub pushed_out: u64,
    /// Packets transmitted.
    pub transmitted: u64,
    /// Total value transmitted.
    pub transmitted_value: u64,
    /// Packets discarded by periodic flushes.
    pub flushed: u64,
    /// Slots completed (including drain slots).
    pub slots: u64,
    /// Supervised shard restarts.
    pub restarts: u64,
    /// Shard incarnation deaths.
    pub panics: u64,
    /// Shards abandoned after exhausting the restart budget.
    pub failures: u64,
    /// Buffer occupancy at the last completed slot (gauge; summed across
    /// shards by [`StatSnapshot::merge`]).
    pub occupancy: u64,
    /// Deepest per-port queue at the last completed slot (gauge; max across
    /// shards).
    pub queue_depth: u64,
    /// High-watermark of [`StatSnapshot::queue_depth`] over the run.
    pub queue_hwm: u64,
    /// Configured shared buffer limit B (gauge; summed across shards).
    pub buffer_limit: u64,
    /// Configured port count n (gauge; summed across shards).
    pub ports: u64,
    /// Buffer sojourn of transmitted packets, in slots.
    pub latency: LogHistogram,
}

impl StatSnapshot {
    /// Packets dropped for any reason.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_buffer_full
            + self.dropped_policy
            + self.dropped_backpressure
            + self.dropped_shard_failure
            + self.dropped_net_decode
    }

    /// Accumulates `other` into `self`: counters add, capacity gauges add
    /// (aggregate buffer/ports across shards), depth gauges take the max,
    /// histograms merge.
    pub fn merge(&mut self, other: &StatSnapshot) {
        self.arrived += other.arrived;
        self.arrived_value += other.arrived_value;
        self.admitted += other.admitted;
        self.dropped_buffer_full += other.dropped_buffer_full;
        self.dropped_policy += other.dropped_policy;
        self.dropped_backpressure += other.dropped_backpressure;
        self.dropped_shard_failure += other.dropped_shard_failure;
        self.dropped_net_decode += other.dropped_net_decode;
        self.net.merge(&other.net);
        self.pushed_out += other.pushed_out;
        self.transmitted += other.transmitted;
        self.transmitted_value += other.transmitted_value;
        self.flushed += other.flushed;
        self.slots += other.slots;
        self.restarts += other.restarts;
        self.panics += other.panics;
        self.failures += other.failures;
        self.occupancy += other.occupancy;
        self.queue_depth = self.queue_depth.max(other.queue_depth);
        self.queue_hwm = self.queue_hwm.max(other.queue_hwm);
        self.buffer_limit += other.buffer_limit;
        self.ports += other.ports;
        self.latency.merge(&other.latency);
    }

    /// Renders the snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"arrived\":{},\"arrived_value\":{},\"admitted\":{},\
             \"dropped\":{{\"buffer_full\":{},\"policy\":{},\"backpressure\":{},\"shard_failure\":{},\"net_decode\":{}}},\
             \"net\":{},\
             \"pushed_out\":{},\"transmitted\":{},\"transmitted_value\":{},\"flushed\":{},\
             \"slots\":{},\"restarts\":{},\"panics\":{},\"failures\":{},\
             \"occupancy\":{},\"queue_depth\":{},\"queue_hwm\":{},\"buffer_limit\":{},\"ports\":{},\
             \"latency\":{}}}",
            self.arrived,
            self.arrived_value,
            self.admitted,
            self.dropped_buffer_full,
            self.dropped_policy,
            self.dropped_backpressure,
            self.dropped_shard_failure,
            self.dropped_net_decode,
            self.net.to_json(),
            self.pushed_out,
            self.transmitted,
            self.transmitted_value,
            self.flushed,
            self.slots,
            self.restarts,
            self.panics,
            self.failures,
            self.occupancy,
            self.queue_depth,
            self.queue_hwm,
            self.buffer_limit,
            self.ports,
            self.latency.to_json(),
        )
    }
}

/// Per-slot tallies the observer accumulates in plain locals before folding
/// them into the shared cell at slot end.
#[derive(Debug, Default)]
struct Pending {
    arrived: u64,
    arrived_value: u64,
    admitted: u64,
    dropped_buffer_full: u64,
    dropped_policy: u64,
    dropped_backpressure: u64,
    dropped_shard_failure: u64,
    dropped_net_decode: u64,
    pushed_out: u64,
    transmitted: u64,
    transmitted_value: u64,
    flushed: u64,
}

/// The [`Observer`] feeding a shard's [`StatCell`].
///
/// Per-packet hooks touch only plain locals; the cell's atomics are written
/// once per slot (and on supervision events, so a dying shard's partial
/// slot is not lost). Dropping the observer flushes any remaining tallies.
#[derive(Debug)]
pub struct TelemetryObserver {
    cell: Arc<StatCell>,
    pending: Pending,
    latency: LogHistogram,
}

impl TelemetryObserver {
    /// Creates an observer writing into `cell`.
    pub fn new(cell: Arc<StatCell>) -> Self {
        TelemetryObserver {
            cell,
            pending: Pending::default(),
            latency: LogHistogram::new(),
        }
    }

    fn flush_pending(&mut self) {
        let r = Ordering::Relaxed;
        let p = std::mem::take(&mut self.pending);
        let c = &*self.cell;
        if p.arrived != 0 {
            c.arrived.fetch_add(p.arrived, r);
        }
        if p.arrived_value != 0 {
            c.arrived_value.fetch_add(p.arrived_value, r);
        }
        if p.admitted != 0 {
            c.admitted.fetch_add(p.admitted, r);
        }
        if p.dropped_buffer_full != 0 {
            c.dropped_buffer_full.fetch_add(p.dropped_buffer_full, r);
        }
        if p.dropped_policy != 0 {
            c.dropped_policy.fetch_add(p.dropped_policy, r);
        }
        if p.dropped_backpressure != 0 {
            c.dropped_backpressure.fetch_add(p.dropped_backpressure, r);
        }
        if p.dropped_shard_failure != 0 {
            c.dropped_shard_failure
                .fetch_add(p.dropped_shard_failure, r);
        }
        if p.dropped_net_decode != 0 {
            c.dropped_net_decode.fetch_add(p.dropped_net_decode, r);
        }
        if p.pushed_out != 0 {
            c.pushed_out.fetch_add(p.pushed_out, r);
        }
        if p.transmitted != 0 {
            c.transmitted.fetch_add(p.transmitted, r);
        }
        if p.transmitted_value != 0 {
            c.transmitted_value.fetch_add(p.transmitted_value, r);
        }
        if p.flushed != 0 {
            c.flushed.fetch_add(p.flushed, r);
        }
        if self.latency.count() > 0 {
            c.latency.merge_delta(&self.latency);
            self.latency = LogHistogram::new();
        }
    }
}

impl Observer for TelemetryObserver {
    fn arrival(&mut self, _slot: u64, _port: PortId, _work: u32, value: u64) {
        self.pending.arrived += 1;
        self.pending.arrived_value += value;
    }

    fn admitted(&mut self, _slot: u64, _port: PortId) {
        self.pending.admitted += 1;
    }

    fn dropped(&mut self, _slot: u64, _port: PortId, reason: DropReason) {
        match reason {
            DropReason::BufferFull => self.pending.dropped_buffer_full += 1,
            DropReason::Policy => self.pending.dropped_policy += 1,
            DropReason::Backpressure => self.pending.dropped_backpressure += 1,
            DropReason::ShardFailure => self.pending.dropped_shard_failure += 1,
            DropReason::NetDecode => self.pending.dropped_net_decode += 1,
        }
    }

    fn backpressure(&mut self, _slot: u64, packets: u64) {
        self.pending.dropped_backpressure += packets;
    }

    fn pushed_out(&mut self, _slot: u64, _victim: PortId) {
        self.pending.pushed_out += 1;
    }

    fn transmitted(&mut self, _slot: u64, _port: PortId, latency: u64, value: u64) {
        self.pending.transmitted += 1;
        self.pending.transmitted_value += value;
        self.latency.record(latency);
    }

    fn flush(&mut self, _slot: u64, discarded: u64) {
        self.pending.flushed += discarded;
    }

    fn slot_end(&mut self, _slot: u64, occupancy: usize) {
        self.flush_pending();
        self.cell
            .occupancy
            .store(occupancy as u64, Ordering::Relaxed);
        self.cell.slots.fetch_add(1, Ordering::Relaxed);
    }

    fn queue_depth(&mut self, _slot: u64, depth: u64) {
        self.cell.queue_depth.store(depth, Ordering::Relaxed);
        self.cell.queue_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    fn shard_started(&mut self, buffer_limit: usize, ports: usize) {
        self.cell
            .buffer_limit
            .store(buffer_limit as u64, Ordering::Relaxed);
        self.cell.ports.store(ports as u64, Ordering::Relaxed);
    }

    fn shard_panicked(&mut self, _slot: u64, _orphans: u64) {
        // The dying slot never reached slot_end; publish its partial tallies.
        self.flush_pending();
        self.cell.panics.fetch_add(1, Ordering::Relaxed);
    }

    fn shard_restarted(&mut self, _slot: u64, _attempt: u64) {
        self.cell.restarts.fetch_add(1, Ordering::Relaxed);
    }

    fn shard_failed(&mut self, _slot: u64, orphans: u64) {
        self.pending.dropped_shard_failure += orphans;
        self.flush_pending();
        self.cell.failures.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for TelemetryObserver {
    fn drop(&mut self) {
        self.flush_pending();
    }
}

/// Configuration of the telemetry plane.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Sampling cadence (clamped to at least 1 ms).
    pub interval: Duration,
    /// Samples kept in the in-memory time-series ring (oldest evicted).
    pub ring_capacity: usize,
    /// Append one JSONL line per sample to this file.
    pub stats_out: Option<PathBuf>,
    /// Rewrite this file with a Prometheus text-format dump each sample
    /// (write-to-temp + rename, so scrapers never see a torn file).
    pub prom_out: Option<PathBuf>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval: Duration::from_millis(250),
            ring_capacity: 1024,
            stats_out: None,
            prom_out: None,
        }
    }
}

/// Instantaneous rates between consecutive samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleRates {
    /// Packets offered per second since the previous sample.
    pub arrived_per_sec: f64,
    /// Packets transmitted per second since the previous sample.
    pub transmitted_per_sec: f64,
    /// Packets dropped (any reason) per second since the previous sample.
    pub dropped_per_sec: f64,
}

/// One entry of the sampler's time-series: cumulative per-shard snapshots,
/// their aggregate, and rates against the previous sample.
#[derive(Debug, Clone)]
pub struct TelemetrySample {
    /// 0-based sample counter.
    pub seq: u64,
    /// Time since the sampler started.
    pub elapsed: Duration,
    /// Aggregate of all shards (see [`StatSnapshot::merge`]).
    pub total: StatSnapshot,
    /// Per-shard snapshots, indexed by shard id.
    pub shards: Vec<StatSnapshot>,
    /// Deltas against the previous sample, per second.
    pub rates: SampleRates,
}

impl TelemetrySample {
    /// Renders the sample as one JSONL line.
    pub fn to_json(&self) -> String {
        let mut shards = String::new();
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                shards.push(',');
            }
            shards.push_str(&s.to_json());
        }
        format!(
            "{{\"type\":\"telemetry\",\"seq\":{},\"elapsed_ms\":{:.3},\
             \"rates\":{{\"arrived_per_sec\":{:.1},\"transmitted_per_sec\":{:.1},\"dropped_per_sec\":{:.1}}},\
             \"total\":{},\"shards\":[{}]}}",
            self.seq,
            self.elapsed.as_secs_f64() * 1e3,
            self.rates.arrived_per_sec,
            self.rates.transmitted_per_sec,
            self.rates.dropped_per_sec,
            self.total.to_json(),
            shards,
        )
    }

    /// Renders the sample in the Prometheus text exposition format
    /// (per-shard series only; aggregation is the scraper's job).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048 + 512 * self.shards.len());
        out.push_str("# HELP smbm_packets_total Packets by lifecycle stage.\n");
        out.push_str("# TYPE smbm_packets_total counter\n");
        for (i, s) in self.shards.iter().enumerate() {
            for (stage, v) in [
                ("arrived", s.arrived),
                ("admitted", s.admitted),
                ("pushed_out", s.pushed_out),
                ("transmitted", s.transmitted),
                ("flushed", s.flushed),
            ] {
                out.push_str(&format!(
                    "smbm_packets_total{{shard=\"{i}\",stage=\"{stage}\"}} {v}\n"
                ));
            }
        }
        out.push_str("# HELP smbm_drops_total Dropped packets by reason.\n");
        out.push_str("# TYPE smbm_drops_total counter\n");
        for (i, s) in self.shards.iter().enumerate() {
            for (reason, v) in [
                ("buffer_full", s.dropped_buffer_full),
                ("policy", s.dropped_policy),
                ("backpressure", s.dropped_backpressure),
                ("shard_failure", s.dropped_shard_failure),
                ("net_decode", s.dropped_net_decode),
            ] {
                out.push_str(&format!(
                    "smbm_drops_total{{shard=\"{i}\",reason=\"{reason}\"}} {v}\n"
                ));
            }
        }
        out.push_str("# HELP smbm_net_total Network ingress activity by kind.\n");
        out.push_str("# TYPE smbm_net_total counter\n");
        for (i, s) in self.shards.iter().enumerate() {
            for (kind, v) in [
                ("datagrams", s.net.datagrams),
                ("frames", s.net.frames),
                ("decode_errors", s.net.decode_errors),
                ("truncations", s.net.truncations),
            ] {
                out.push_str(&format!(
                    "smbm_net_total{{shard=\"{i}\",kind=\"{kind}\"}} {v}\n"
                ));
            }
        }
        out.push_str("# HELP smbm_value_total Intrinsic value by lifecycle stage.\n");
        out.push_str("# TYPE smbm_value_total counter\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "smbm_value_total{{shard=\"{i}\",stage=\"arrived\"}} {}\n",
                s.arrived_value
            ));
            out.push_str(&format!(
                "smbm_value_total{{shard=\"{i}\",stage=\"transmitted\"}} {}\n",
                s.transmitted_value
            ));
        }
        out.push_str("# HELP smbm_slots_total Slots completed (including drain slots).\n");
        out.push_str("# TYPE smbm_slots_total counter\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!("smbm_slots_total{{shard=\"{i}\"}} {}\n", s.slots));
        }
        out.push_str("# HELP smbm_shard_events_total Supervision events per shard.\n");
        out.push_str("# TYPE smbm_shard_events_total counter\n");
        for (i, s) in self.shards.iter().enumerate() {
            for (event, v) in [
                ("panic", s.panics),
                ("restart", s.restarts),
                ("gave_up", s.failures),
            ] {
                out.push_str(&format!(
                    "smbm_shard_events_total{{shard=\"{i}\",event=\"{event}\"}} {v}\n"
                ));
            }
        }
        for (name, help, get) in [
            (
                "smbm_buffer_occupancy",
                "Packets resident in the shared buffer.",
                (|s: &StatSnapshot| s.occupancy) as fn(&StatSnapshot) -> u64,
            ),
            (
                "smbm_buffer_limit",
                "Configured shared buffer limit B.",
                |s: &StatSnapshot| s.buffer_limit,
            ),
            (
                "smbm_queue_depth",
                "Deepest per-port queue at the last slot end.",
                |s: &StatSnapshot| s.queue_depth,
            ),
            (
                "smbm_queue_depth_hwm",
                "High-watermark of the deepest per-port queue.",
                |s: &StatSnapshot| s.queue_hwm,
            ),
            (
                "smbm_ports",
                "Configured output port count n.",
                |s: &StatSnapshot| s.ports,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            for (i, s) in self.shards.iter().enumerate() {
                out.push_str(&format!("{name}{{shard=\"{i}\"}} {}\n", get(s)));
            }
        }
        out.push_str(
            "# HELP smbm_latency_slots Buffer sojourn of transmitted packets, in slots.\n",
        );
        out.push_str("# TYPE smbm_latency_slots summary\n");
        for (i, s) in self.shards.iter().enumerate() {
            let h = &s.latency;
            for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
                out.push_str(&format!(
                    "smbm_latency_slots{{shard=\"{i}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!(
                "smbm_latency_slots_sum{{shard=\"{i}\"}} {}\n",
                h.sum()
            ));
            out.push_str(&format!(
                "smbm_latency_slots_count{{shard=\"{i}\"}} {}\n",
                h.count()
            ));
        }
        out
    }
}

/// What the sampler hands back when stopped: the retained time-series tail
/// plus bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Retained samples, oldest first (at most the configured ring
    /// capacity; earlier samples were evicted but still reached the sinks).
    pub samples: Vec<TelemetrySample>,
    /// Samples ever taken (>= `samples.len()`).
    pub ticks: u64,
    /// Sink I/O errors encountered (deduplicated to the first few).
    pub errors: Vec<String>,
}

impl TelemetryReport {
    /// The final (exact, post-join) sample.
    pub fn last(&self) -> Option<&TelemetrySample> {
        self.samples.last()
    }
}

/// The background sampling thread. Spawn it with the shards' cells before
/// the run, stop it after the shard threads are joined: the final sample is
/// then exact thanks to join's happens-before edge.
#[derive(Debug)]
pub struct TelemetrySampler {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: JoinHandle<TelemetryReport>,
}

impl TelemetrySampler {
    /// Opens the configured sinks (failing fast on bad paths) and spawns
    /// the sampler thread. An immediate first sample is taken, one per
    /// interval after that, and a final one at [`TelemetrySampler::stop`] —
    /// so every run yields at least two samples.
    ///
    /// # Errors
    ///
    /// Propagates sink-creation or thread-spawn failures.
    pub fn spawn(cells: Vec<Arc<StatCell>>, config: TelemetryConfig) -> io::Result<Self> {
        let stats = config
            .stats_out
            .as_ref()
            .map(JsonlWriter::create)
            .transpose()?;
        if let Some(p) = &config.prom_out {
            // Fail fast on an unwritable path instead of erroring per tick.
            File::create(p)?;
        }
        let prom_out = config.prom_out.clone();
        let interval = config.interval.max(Duration::from_millis(1));
        let capacity = config.ring_capacity.max(1);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("smbm-telemetry".into())
            .spawn(move || sampler_loop(cells, interval, capacity, stats, prom_out, thread_stop))?;
        Ok(TelemetrySampler { stop, handle })
    }

    /// Signals the thread, waits for its final sample, and returns the
    /// collected time-series.
    pub fn stop(self) -> TelemetryReport {
        let (lock, cvar) = &*self.stop;
        *lock.lock().expect("telemetry stop flag poisoned") = true;
        cvar.notify_all();
        self.handle.join().unwrap_or_else(|_| TelemetryReport {
            errors: vec!["telemetry sampler thread panicked".to_string()],
            ..TelemetryReport::default()
        })
    }
}

struct SamplerState {
    ring: VecDeque<TelemetrySample>,
    capacity: usize,
    seq: u64,
    prev: Option<(Duration, StatSnapshot)>,
    stats: Option<JsonlWriter>,
    prom_out: Option<PathBuf>,
    errors: Vec<String>,
}

impl SamplerState {
    fn record_error(&mut self, what: &str, e: &io::Error) {
        if self.errors.len() < 8 {
            self.errors.push(format!("{what}: {e}"));
        }
    }

    fn tick(&mut self, cells: &[Arc<StatCell>], elapsed: Duration) {
        let shards: Vec<StatSnapshot> = cells.iter().map(|c| c.snapshot()).collect();
        let mut total = StatSnapshot::default();
        for s in &shards {
            total.merge(s);
        }
        let rates = match &self.prev {
            Some((t0, prev)) => {
                let dt = elapsed.saturating_sub(*t0).as_secs_f64();
                if dt > 0.0 {
                    SampleRates {
                        arrived_per_sec: total.arrived.saturating_sub(prev.arrived) as f64 / dt,
                        transmitted_per_sec: total.transmitted.saturating_sub(prev.transmitted)
                            as f64
                            / dt,
                        dropped_per_sec: total.dropped_total().saturating_sub(prev.dropped_total())
                            as f64
                            / dt,
                    }
                } else {
                    SampleRates::default()
                }
            }
            None => SampleRates::default(),
        };
        let sample = TelemetrySample {
            seq: self.seq,
            elapsed,
            total: total.clone(),
            shards,
            rates,
        };
        self.seq += 1;
        if let Some(w) = &mut self.stats {
            if let Err(e) = w.write_line(&sample.to_json()) {
                self.record_error("stats sink", &e);
            }
        }
        if let Some(p) = &self.prom_out {
            if let Err(e) = write_atomic(p, &sample.to_prometheus()) {
                self.record_error("prometheus sink", &e);
            }
        }
        self.prev = Some((elapsed, total));
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(sample);
    }

    fn finish(mut self) -> TelemetryReport {
        if let Some(w) = &mut self.stats {
            if let Err(e) = w.flush() {
                self.record_error("stats sink flush", &e);
            }
        }
        TelemetryReport {
            samples: self.ring.into_iter().collect(),
            ticks: self.seq,
            errors: self.errors,
        }
    }
}

fn sampler_loop(
    cells: Vec<Arc<StatCell>>,
    interval: Duration,
    capacity: usize,
    stats: Option<JsonlWriter>,
    prom_out: Option<PathBuf>,
    stop: Arc<(Mutex<bool>, Condvar)>,
) -> TelemetryReport {
    let started = Instant::now();
    let mut state = SamplerState {
        ring: VecDeque::with_capacity(capacity.min(1 << 12)),
        capacity,
        seq: 0,
        prev: None,
        stats,
        prom_out,
        errors: Vec::new(),
    };
    state.tick(&cells, started.elapsed());
    loop {
        let (lock, cvar) = &*stop;
        let mut stopped = lock.lock().expect("telemetry stop flag poisoned");
        let mut timed_out = false;
        while !*stopped && !timed_out {
            let (guard, timeout) = cvar
                .wait_timeout(stopped, interval)
                .expect("telemetry stop flag poisoned");
            stopped = guard;
            timed_out = timeout.timed_out();
        }
        let done = *stopped;
        drop(stopped);
        if done {
            break;
        }
        state.tick(&cells, started.elapsed());
    }
    // Final sample: the runtime stops the sampler only after joining the
    // shard threads, so this one observes every counter's final value.
    state.tick(&cells, started.elapsed());
    state.finish()
}

/// Writes `text` to a sibling temp file, then renames it over `path`, so a
/// concurrent reader never observes a partially-written dump.
fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let mut tmp_name = OsString::from(path.as_os_str());
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "smbm-obs-telemetry-{}-{}",
            std::process::id(),
            name
        ));
        p
    }

    #[test]
    fn observer_folds_into_cell_per_slot() {
        let cell = Arc::new(StatCell::new());
        let mut obs = TelemetryObserver::new(Arc::clone(&cell));
        obs.shard_started(64, 8);
        obs.arrival(0, PortId::new(1), 2, 5);
        obs.admitted(0, PortId::new(1));
        obs.arrival(0, PortId::new(2), 1, 3);
        obs.dropped(0, PortId::new(2), DropReason::BufferFull);
        obs.transmitted(0, PortId::new(1), 4, 5);
        // Nothing published until the slot ends.
        assert_eq!(cell.snapshot().arrived, 0);
        obs.slot_end(0, 0);
        obs.queue_depth(0, 3);
        let s = cell.snapshot();
        assert_eq!(s.arrived, 2);
        assert_eq!(s.arrived_value, 8);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.dropped_buffer_full, 1);
        assert_eq!(s.transmitted, 1);
        assert_eq!(s.transmitted_value, 5);
        assert_eq!(s.slots, 1);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.queue_hwm, 3);
        assert_eq!(s.buffer_limit, 64);
        assert_eq!(s.ports, 8);
        assert_eq!(s.latency.count(), 1);
        assert_eq!(s.latency.max(), 4);
        // The high-watermark survives a lower gauge value.
        obs.queue_depth(1, 1);
        let s = cell.snapshot();
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.queue_hwm, 3);
    }

    #[test]
    fn drop_flushes_partial_slot() {
        let cell = Arc::new(StatCell::new());
        {
            let mut obs = TelemetryObserver::new(Arc::clone(&cell));
            obs.arrival(0, PortId::new(0), 1, 1);
            obs.admitted(0, PortId::new(0));
        }
        let s = cell.snapshot();
        assert_eq!(s.arrived, 1);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.slots, 0);
    }

    #[test]
    fn supervision_hooks_flush_and_count() {
        let cell = Arc::new(StatCell::new());
        let mut obs = TelemetryObserver::new(Arc::clone(&cell));
        obs.arrival(9, PortId::new(0), 1, 1);
        obs.shard_panicked(9, 4);
        obs.shard_restarted(9, 1);
        obs.shard_failed(20, 7);
        let s = cell.snapshot();
        assert_eq!(s.arrived, 1, "partial slot published by the panic hook");
        assert_eq!(s.panics, 1);
        assert_eq!(s.restarts, 1);
        assert_eq!(s.failures, 1);
        assert_eq!(s.dropped_shard_failure, 7);
    }

    #[test]
    fn record_net_is_multi_writer_and_snapshots() {
        let cell = Arc::new(StatCell::new());
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        c.record_net(
                            NetCounts {
                                datagrams: 1,
                                frames: 8,
                                decode_errors: 2,
                                truncations: 1,
                            },
                            2,
                        );
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let s = cell.snapshot();
        assert_eq!(s.net.datagrams, 4_000);
        assert_eq!(s.net.frames, 32_000);
        assert_eq!(s.net.decode_errors, 8_000);
        assert_eq!(s.net.truncations, 4_000);
        assert_eq!(s.dropped_net_decode, 8_000);
        assert_eq!(s.dropped_total(), 8_000);
        assert_eq!(cell.net_counts(), s.net);
        assert!(s.to_json().contains("\"net\":{\"datagrams\":4000"));
        assert!(s.to_json().contains("\"net_decode\":8000"));
    }

    #[test]
    fn snapshot_merge_aggregates() {
        let mut a = StatSnapshot {
            arrived: 10,
            occupancy: 3,
            queue_hwm: 5,
            buffer_limit: 64,
            ports: 8,
            ..StatSnapshot::default()
        };
        let b = StatSnapshot {
            arrived: 7,
            occupancy: 2,
            queue_hwm: 9,
            buffer_limit: 64,
            ports: 8,
            ..StatSnapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.arrived, 17);
        assert_eq!(a.occupancy, 5, "occupancy gauge sums across shards");
        assert_eq!(a.queue_hwm, 9, "watermark takes the max");
        assert_eq!(a.buffer_limit, 128, "aggregate capacity sums");
        assert_eq!(a.ports, 16);
    }

    #[test]
    fn seqlock_snapshot_is_internally_consistent_under_writes() {
        let cell = Arc::new(StatCell::new());
        let writer_cell = Arc::clone(&cell);
        let writer = std::thread::spawn(move || {
            let mut obs = TelemetryObserver::new(writer_cell);
            for slot in 0..4_000u64 {
                for k in 0..16u64 {
                    let port = PortId::new((k % 4) as usize);
                    obs.arrival(slot, port, 1, 1);
                    obs.admitted(slot, port);
                    obs.transmitted(slot, port, (slot * 7 + k) % 257, 1);
                }
                obs.slot_end(slot, 0);
            }
        });
        let mut last_count = 0u64;
        let mut snapshots = 0u64;
        while !writer.is_finished() {
            let s = cell.snapshot();
            let bucket_sum: u64 = s.latency.bucket_counts().iter().sum();
            assert_eq!(
                s.latency.count(),
                bucket_sum,
                "seqlock snapshot tore: count != bucket sum"
            );
            assert!(
                s.latency.count() >= last_count,
                "histogram count went backwards"
            );
            last_count = s.latency.count();
            snapshots += 1;
        }
        writer.join().unwrap();
        assert!(snapshots > 0);
        let s = cell.snapshot();
        assert_eq!(s.latency.count(), 4_000 * 16);
        assert_eq!(s.arrived, 4_000 * 16);
        assert_eq!(s.slots, 4_000);
    }

    #[test]
    fn sampler_collects_at_least_first_and_final_samples() {
        let cells: Vec<Arc<StatCell>> = (0..2).map(|_| Arc::new(StatCell::new())).collect();
        let sampler = TelemetrySampler::spawn(
            cells.clone(),
            TelemetryConfig {
                interval: Duration::from_secs(3600),
                ..TelemetryConfig::default()
            },
        )
        .unwrap();
        {
            let mut obs = TelemetryObserver::new(Arc::clone(&cells[1]));
            obs.arrival(0, PortId::new(0), 1, 2);
            obs.admitted(0, PortId::new(0));
            obs.slot_end(0, 1);
        }
        let report = sampler.stop();
        assert!(report.ticks >= 2, "initial + final samples guaranteed");
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        let last = report.last().unwrap();
        assert_eq!(last.shards.len(), 2);
        assert_eq!(last.total.arrived, 1);
        assert_eq!(last.total.arrived_value, 2);
        assert_eq!(last.shards[1].occupancy, 1);
        assert_eq!(last.shards[0].arrived, 0);
    }

    #[test]
    fn sampler_ring_is_bounded() {
        let cells = vec![Arc::new(StatCell::new())];
        let sampler = TelemetrySampler::spawn(
            cells,
            TelemetryConfig {
                interval: Duration::from_millis(1),
                ring_capacity: 3,
                ..TelemetryConfig::default()
            },
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(40));
        let report = sampler.stop();
        assert!(report.ticks > 3);
        assert_eq!(report.samples.len(), 3);
        // The ring keeps the newest tail, ending with the final sample.
        assert_eq!(report.samples.last().unwrap().seq, report.ticks - 1);
        let seqs: Vec<u64> = report.samples.iter().map(|s| s.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn sampler_writes_jsonl_and_prometheus_sinks() {
        let stats_path = temp_path("stats.jsonl");
        let prom_path = temp_path("metrics.prom");
        let cells = vec![Arc::new(StatCell::new())];
        let sampler = TelemetrySampler::spawn(
            cells.clone(),
            TelemetryConfig {
                interval: Duration::from_secs(3600),
                stats_out: Some(stats_path.clone()),
                prom_out: Some(prom_path.clone()),
                ..TelemetryConfig::default()
            },
        )
        .unwrap();
        {
            let mut obs = TelemetryObserver::new(Arc::clone(&cells[0]));
            obs.shard_started(32, 4);
            obs.arrival(0, PortId::new(0), 1, 1);
            obs.admitted(0, PortId::new(0));
            obs.transmitted(0, PortId::new(0), 2, 1);
            obs.slot_end(0, 0);
        }
        let report = sampler.stop();
        assert!(report.errors.is_empty(), "{:?}", report.errors);

        let stats = std::fs::read_to_string(&stats_path).unwrap();
        let lines: Vec<&str> = stats.lines().collect();
        assert!(lines.len() >= 2, "expected >=2 snapshots, got {lines:?}");
        for line in &lines {
            assert!(line.starts_with("{\"type\":\"telemetry\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(lines.last().unwrap().contains("\"arrived\":1"));

        let prom = std::fs::read_to_string(&prom_path).unwrap();
        for needle in [
            "# TYPE smbm_packets_total counter",
            "smbm_packets_total{shard=\"0\",stage=\"arrived\"} 1",
            "smbm_packets_total{shard=\"0\",stage=\"transmitted\"} 1",
            "# TYPE smbm_buffer_occupancy gauge",
            "smbm_buffer_limit{shard=\"0\"} 32",
            "smbm_ports{shard=\"0\"} 4",
            "# TYPE smbm_latency_slots summary",
            "smbm_latency_slots_count{shard=\"0\"} 1",
        ] {
            assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
        }
        std::fs::remove_file(&stats_path).unwrap();
        std::fs::remove_file(&prom_path).unwrap();
    }

    #[test]
    fn spawn_fails_fast_on_unwritable_sink() {
        let mut bad = std::env::temp_dir();
        bad.push(format!("smbm-obs-no-such-dir-{}", std::process::id()));
        bad.push("stats.jsonl");
        let err = TelemetrySampler::spawn(
            vec![Arc::new(StatCell::new())],
            TelemetryConfig {
                stats_out: Some(bad),
                ..TelemetryConfig::default()
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn sample_json_shape() {
        let sample = TelemetrySample {
            seq: 4,
            elapsed: Duration::from_millis(1500),
            total: StatSnapshot {
                arrived: 3,
                ..StatSnapshot::default()
            },
            shards: vec![StatSnapshot::default(), StatSnapshot::default()],
            rates: SampleRates {
                arrived_per_sec: 10.0,
                transmitted_per_sec: 8.0,
                dropped_per_sec: 0.5,
            },
        };
        let json = sample.to_json();
        assert!(json.starts_with("{\"type\":\"telemetry\",\"seq\":4,\"elapsed_ms\":1500.000"));
        assert!(json.contains("\"arrived_per_sec\":10.0"));
        assert!(json.contains("\"total\":{\"arrived\":3"));
        assert!(json.contains("\"shards\":[{"));
    }
}
