//! Bounded structured event log with JSONL export.

use crate::{escape_json, DropReason, Observer};
use smbm_switch::PortId;

/// One structured engine event, as recorded by [`RingEventLog`].
///
/// Phase boundary hooks are intentionally not logged (they carry no packet
/// information and would dominate the ring); everything else is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A packet was offered.
    Arrival {
        /// Engine slot counter.
        slot: u64,
        /// Destination port.
        port: PortId,
        /// Required processing cycles.
        work: u32,
        /// Intrinsic value.
        value: u64,
    },
    /// The offered packet entered the buffer.
    Admitted {
        /// Engine slot counter.
        slot: u64,
        /// Destination port.
        port: PortId,
    },
    /// The offered packet was rejected.
    Dropped {
        /// Engine slot counter.
        slot: u64,
        /// Destination port.
        port: PortId,
        /// Why it was rejected.
        reason: DropReason,
    },
    /// A full ingress ring rejected packets upstream of admission control
    /// (runtime datapath only).
    Backpressure {
        /// Engine/runtime cycle counter.
        slot: u64,
        /// Packets rejected by the full ring.
        packets: u64,
    },
    /// A resident packet was evicted.
    PushedOut {
        /// Engine slot counter.
        slot: u64,
        /// Queue that lost a packet.
        victim: PortId,
    },
    /// A packet left the switch.
    Transmitted {
        /// Engine slot counter.
        slot: u64,
        /// Source queue.
        port: PortId,
        /// Slots spent in the buffer.
        latency: u64,
        /// Intrinsic value.
        value: u64,
    },
    /// A periodic flushout discarded the buffer.
    Flush {
        /// Engine slot counter.
        slot: u64,
        /// Packets discarded.
        discarded: u64,
    },
    /// A zero-arrival drain began.
    DrainStart {
        /// Engine slot counter.
        slot: u64,
    },
    /// The drain emptied the buffer.
    DrainEnd {
        /// Engine slot counter.
        slot: u64,
    },
    /// A slot ended.
    SlotEnd {
        /// Engine slot counter.
        slot: u64,
        /// Buffer occupancy after the transmission phase.
        occupancy: u64,
    },
    /// A supervised shard incarnation died (runtime datapath only).
    ShardPanic {
        /// Shard slot counter at the time of death.
        slot: u64,
        /// Packets still queued in the shard's ingress rings.
        orphans: u64,
    },
    /// The supervisor restarted the dead shard.
    ShardRestart {
        /// Shard slot counter at the time of death.
        slot: u64,
        /// 1-based restart attempt against the budget.
        attempt: u64,
    },
    /// The supervisor exhausted its restart budget and abandoned the shard.
    ShardFailed {
        /// Shard slot counter at the time of the final death.
        slot: u64,
        /// Ring packets dropped as shard-failure losses.
        orphans: u64,
    },
}

impl Event {
    /// Renders the event as one JSON object, optionally prefixed with extra
    /// `"key":"value"` string fields (used to tag events with a policy name).
    fn write_json(&self, out: &mut String, extra: &[(&str, &str)]) {
        out.push('{');
        for (k, v) in extra {
            out.push_str(&format!("\"{}\":\"{}\",", escape_json(k), escape_json(v)));
        }
        match *self {
            Event::Arrival {
                slot,
                port,
                work,
                value,
            } => out.push_str(&format!(
                "\"type\":\"arrival\",\"slot\":{slot},\"port\":{},\"work\":{work},\"value\":{value}",
                port.index()
            )),
            Event::Admitted { slot, port } => out.push_str(&format!(
                "\"type\":\"admitted\",\"slot\":{slot},\"port\":{}",
                port.index()
            )),
            Event::Dropped { slot, port, reason } => out.push_str(&format!(
                "\"type\":\"dropped\",\"slot\":{slot},\"port\":{},\"reason\":\"{}\"",
                port.index(),
                reason.label()
            )),
            Event::Backpressure { slot, packets } => out.push_str(&format!(
                "\"type\":\"backpressure\",\"slot\":{slot},\"packets\":{packets}"
            )),
            Event::PushedOut { slot, victim } => out.push_str(&format!(
                "\"type\":\"pushed_out\",\"slot\":{slot},\"victim\":{}",
                victim.index()
            )),
            Event::Transmitted {
                slot,
                port,
                latency,
                value,
            } => out.push_str(&format!(
                "\"type\":\"transmitted\",\"slot\":{slot},\"port\":{},\"latency\":{latency},\"value\":{value}",
                port.index()
            )),
            Event::Flush { slot, discarded } => out.push_str(&format!(
                "\"type\":\"flush\",\"slot\":{slot},\"discarded\":{discarded}"
            )),
            Event::DrainStart { slot } => {
                out.push_str(&format!("\"type\":\"drain_start\",\"slot\":{slot}"))
            }
            Event::DrainEnd { slot } => {
                out.push_str(&format!("\"type\":\"drain_end\",\"slot\":{slot}"))
            }
            Event::SlotEnd { slot, occupancy } => out.push_str(&format!(
                "\"type\":\"slot_end\",\"slot\":{slot},\"occupancy\":{occupancy}"
            )),
            Event::ShardPanic { slot, orphans } => out.push_str(&format!(
                "\"type\":\"shard_panic\",\"slot\":{slot},\"orphans\":{orphans}"
            )),
            Event::ShardRestart { slot, attempt } => out.push_str(&format!(
                "\"type\":\"shard_restart\",\"slot\":{slot},\"attempt\":{attempt}"
            )),
            Event::ShardFailed { slot, orphans } => out.push_str(&format!(
                "\"type\":\"shard_failed\",\"slot\":{slot},\"orphans\":{orphans}"
            )),
        }
        out.push('}');
    }
}

/// A bounded in-memory event buffer: keeps the most recent `capacity`
/// events, overwriting the oldest once full (so long runs stay bounded
/// while the interesting tail survives).
#[derive(Debug, Clone)]
pub struct RingEventLog {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    total: u64,
}

impl RingEventLog {
    /// Creates a log keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log capacity must be positive");
        RingEventLog {
            buf: Vec::with_capacity(capacity.min(1 << 16)),
            capacity,
            head: 0,
            total: 0,
        }
    }

    /// Appends an event, evicting the oldest when at capacity.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events ever pushed (retained or overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Renders the retained events as JSON Lines, oldest first.
    pub fn to_jsonl(&self) -> String {
        self.to_jsonl_with(&[])
    }

    /// Like [`RingEventLog::to_jsonl`], prefixing every line with the given
    /// string fields (e.g. `[("policy", "LWD")]`).
    pub fn to_jsonl_with(&self, extra: &[(&str, &str)]) -> String {
        let mut out = String::new();
        for e in self.events() {
            e.write_json(&mut out, extra);
            out.push('\n');
        }
        out
    }
}

impl Observer for RingEventLog {
    fn arrival(&mut self, slot: u64, port: PortId, work: u32, value: u64) {
        self.push(Event::Arrival {
            slot,
            port,
            work,
            value,
        });
    }

    fn admitted(&mut self, slot: u64, port: PortId) {
        self.push(Event::Admitted { slot, port });
    }

    fn dropped(&mut self, slot: u64, port: PortId, reason: DropReason) {
        self.push(Event::Dropped { slot, port, reason });
    }

    fn backpressure(&mut self, slot: u64, packets: u64) {
        self.push(Event::Backpressure { slot, packets });
    }

    fn pushed_out(&mut self, slot: u64, victim: PortId) {
        self.push(Event::PushedOut { slot, victim });
    }

    fn transmitted(&mut self, slot: u64, port: PortId, latency: u64, value: u64) {
        self.push(Event::Transmitted {
            slot,
            port,
            latency,
            value,
        });
    }

    fn flush(&mut self, slot: u64, discarded: u64) {
        self.push(Event::Flush { slot, discarded });
    }

    fn drain_start(&mut self, slot: u64) {
        self.push(Event::DrainStart { slot });
    }

    fn drain_end(&mut self, slot: u64) {
        self.push(Event::DrainEnd { slot });
    }

    fn slot_end(&mut self, slot: u64, occupancy: usize) {
        self.push(Event::SlotEnd {
            slot,
            occupancy: occupancy as u64,
        });
    }

    fn shard_panicked(&mut self, slot: u64, orphans: u64) {
        self.push(Event::ShardPanic { slot, orphans });
    }

    fn shard_restarted(&mut self, slot: u64, attempt: u64) {
        self.push(Event::ShardRestart { slot, attempt });
    }

    fn shard_failed(&mut self, slot: u64, orphans: u64) {
        self.push(Event::ShardFailed { slot, orphans });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot_end(slot: u64) -> Event {
        Event::SlotEnd { slot, occupancy: 0 }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let mut log = RingEventLog::new(8);
        for i in 0..5 {
            log.push(slot_end(i));
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.total_recorded(), 5);
        let slots: Vec<u64> = log
            .events()
            .map(|e| match e {
                Event::SlotEnd { slot, .. } => *slot,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraparound_keeps_newest_in_order() {
        let mut log = RingEventLog::new(4);
        for i in 0..11 {
            log.push(slot_end(i));
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.total_recorded(), 11);
        let slots: Vec<u64> = log
            .events()
            .map(|e| match e {
                Event::SlotEnd { slot, .. } => *slot,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(slots, vec![7, 8, 9, 10]);
    }

    #[test]
    fn jsonl_lines_are_json_objects() {
        let mut log = RingEventLog::new(16);
        log.arrival(3, PortId::new(2), 4, 9);
        log.dropped(3, PortId::new(2), DropReason::BufferFull);
        log.flush(4, 17);
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"type\":\"arrival\",\"slot\":3,\"port\":2,\"work\":4,\"value\":9}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"dropped\",\"slot\":3,\"port\":2,\"reason\":\"buffer_full\"}"
        );
        assert_eq!(lines[2], "{\"type\":\"flush\",\"slot\":4,\"discarded\":17}");
    }

    #[test]
    fn backpressure_events_serialize() {
        let mut log = RingEventLog::new(4);
        log.backpressure(12, 3);
        log.dropped(12, PortId::new(0), DropReason::Backpressure);
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"backpressure\",\"slot\":12,\"packets\":3}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"dropped\",\"slot\":12,\"port\":0,\"reason\":\"backpressure\"}"
        );
    }

    #[test]
    fn supervision_events_serialize() {
        let mut log = RingEventLog::new(8);
        log.shard_panicked(41, 6);
        log.shard_restarted(41, 1);
        log.shard_failed(90, 12);
        log.dropped(90, PortId::new(1), DropReason::ShardFailure);
        let lines: Vec<String> = log.to_jsonl().lines().map(str::to_string).collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"shard_panic\",\"slot\":41,\"orphans\":6}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"shard_restart\",\"slot\":41,\"attempt\":1}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"shard_failed\",\"slot\":90,\"orphans\":12}"
        );
        assert_eq!(
            lines[3],
            "{\"type\":\"dropped\",\"slot\":90,\"port\":1,\"reason\":\"shard_failure\"}"
        );
    }

    #[test]
    fn jsonl_with_label_prefixes_fields() {
        let mut log = RingEventLog::new(4);
        log.drain_start(7);
        let jsonl = log.to_jsonl_with(&[("policy", "LWD")]);
        assert_eq!(
            jsonl,
            "{\"policy\":\"LWD\",\"type\":\"drain_start\",\"slot\":7}\n"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = RingEventLog::new(0);
    }
}
