//! Durable JSONL output: a buffered line writer that flushes on `Drop`.
//!
//! Every file sink in the observability layer (periodic telemetry
//! snapshots, flight-recorder dumps, exported event logs) funnels through
//! [`JsonlWriter`] so an early exit — a panic unwinding through the caller,
//! a Ctrl-C path that drops the runtime, a supervisor giving up on a shard —
//! never loses the buffered tail of the stream.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A buffered JSON-Lines file writer that flushes itself when dropped.
///
/// Lines are buffered through a [`BufWriter`]; callers that need durability
/// at a specific point (e.g. after a post-mortem dump) call
/// [`JsonlWriter::flush`] explicitly, but even without that the `Drop`
/// implementation flushes best-effort, so unwinding cannot strand buffered
/// lines.
#[derive(Debug)]
pub struct JsonlWriter {
    path: PathBuf,
    out: BufWriter<File>,
    lines: u64,
}

impl JsonlWriter {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the [`File::create`] failure.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(JsonlWriter {
            path,
            out: BufWriter::new(file),
            lines: 0,
        })
    }

    /// Writes one line (a newline is appended; `line` itself should be a
    /// complete JSON object without one).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    pub fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.lines += 1;
        Ok(())
    }

    /// Writes a pre-rendered multi-line chunk (e.g. a whole flight dump)
    /// verbatim. The chunk is expected to end with a newline; line
    /// accounting counts the newlines it contains.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    pub fn write_chunk(&mut self, chunk: &str) -> io::Result<()> {
        self.out.write_all(chunk.as_bytes())?;
        self.lines += chunk.matches('\n').count() as u64;
        Ok(())
    }

    /// Flushes buffered lines to the file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying flush failure.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Lines written so far (buffered or flushed).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for JsonlWriter {
    /// Best-effort flush: losing the tail of a diagnostic stream is worse
    /// than ignoring a flush error during teardown.
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("smbm-obs-sink-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn writes_lines_and_counts() {
        let path = temp_path("basic.jsonl");
        let mut w = JsonlWriter::create(&path).unwrap();
        w.write_line("{\"a\":1}").unwrap();
        w.write_chunk("{\"b\":2}\n{\"c\":3}\n").unwrap();
        assert_eq!(w.lines(), 3);
        assert_eq!(w.path(), path.as_path());
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn drop_flushes_buffered_tail() {
        let path = temp_path("drop.jsonl");
        {
            let mut w = JsonlWriter::create(&path).unwrap();
            // Small enough to sit in the BufWriter; only Drop gets it out.
            w.write_line("{\"tail\":true}").unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"tail\":true}\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn panic_unwind_still_flushes() {
        let path = temp_path("panic.jsonl");
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut w = JsonlWriter::create(&path).unwrap();
            w.write_line("{\"written\":\"before-panic\"}").unwrap();
            panic!("simulated early exit");
        }));
        assert!(result.is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"written\":\"before-panic\"}\n");
        std::fs::remove_file(&path).unwrap();
    }
}
