//! The slot machine: the paper's two-phase slot semantics in one place.
//!
//! Every phase the datapath can emit — flush, arrival, transmission, drain
//! — is produced by exactly one function in this module. The offline
//! engine and the live runtime shard are both thin drivers over it: the
//! engine calls [`SlotMachine::flush_check`] + [`SlotMachine::step`] once
//! per trace slot, the shard calls the same pair per ingested burst (plus
//! [`SlotMachine::idle_slot`] for freerun cycles that transmit without
//! arrivals), and both finish with [`SlotMachine::drain`].

use smbm_obs::{Observer, Phase};
use smbm_switch::{AdmitError, ArrivalOutcome, FlushMode, FlushPolicy, Transmitted};

use crate::system::DatapathSystem;

/// Hard cap on drain slots, guarding against a non-work-conserving system
/// looping forever. [`SlotMachine::drain`] reports the trip as `false`
/// rather than panicking: the offline engine asserts on it, a live shard
/// records it and joins.
pub const MAX_DRAIN_SLOTS: u64 = 100_000_000;

/// Upper bound on ring batches a freerun driver folds into one slot's
/// arrival burst when it claims its backlog bulk. Bounding the burst keeps
/// a single [`SlotMachine::step`] slot from ballooning under a deep backlog
/// (one slot still means one transmission phase, so an unbounded burst
/// would distort the slot-pressure model the paper's policies assume),
/// while staying large enough that a saturated ring amortizes the per-slot
/// lock round-trip across many batches.
pub const MAX_BURST_BATCHES: usize = 32;

/// Shared slot accounting, written by the machine as slots complete. The
/// engine's `RunSummary` and the runtime's shard reports are both rebuilt
/// from this one struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotStats {
    /// Slots executed, including drain slots.
    pub slots: u64,
    /// Arrival bursts stepped through the machine (trace slots offline,
    /// ingested bursts live) — the flush schedule is keyed on it.
    pub bursts: u64,
    /// Sum of end-of-slot occupancies over every counted slot (mid-run
    /// drain slots are excluded, the final drain is included).
    pub occ_sum: u64,
    /// Peak end-of-slot occupancy over any arrival slot (occupancy only
    /// falls while draining, so drain slots never move it).
    pub occ_max: usize,
}

impl SlotStats {
    /// Fresh, all-zero accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean end-of-slot occupancy (0 for an empty run).
    pub fn mean_occupancy(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.occ_sum as f64 / self.slots as f64
        }
    }

    /// Folds another run's accounting into this one: tallies sum, the
    /// extremum takes the max. The supervised runtime uses this to account
    /// a shard across incarnations.
    pub fn absorb(&mut self, other: &SlotStats) {
        self.slots += other.slots;
        self.bursts += other.bursts;
        self.occ_sum += other.occ_sum;
        self.occ_max = self.occ_max.max(other.occ_max);
    }
}

/// Per-slot completion callback for drivers that must record progress as
/// the run advances, not just at the end: called after every completed slot
/// (arrival, idle, and drain slots alike) with the system at its post-slot
/// state. The supervised runtime shard writes its crash-safe accounting
/// through this, so a panicking incarnation leaves an exact record at the
/// last slot boundary.
pub trait SlotHook<S: DatapathSystem> {
    /// One slot just completed; `sys` is at its end-of-slot state and
    /// `stats` already includes the slot.
    fn slot_done(&mut self, sys: &S, stats: &SlotStats);
}

/// The no-op hook: monomorphizes every callback away, so an unhooked run
/// (the offline engine) costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHook;

impl<S: DatapathSystem> SlotHook<S> for NoHook {
    fn slot_done(&mut self, _sys: &S, _stats: &SlotStats) {}
}

/// The canonical slot loop state: a system plus the accounting, scratch
/// buffers, and flush schedule of one run. All phase emission — flush,
/// arrival, transmission, drain — lives in this type's methods; the
/// drivers only decide *when* to feed it a burst.
#[derive(Debug)]
pub struct SlotMachine<S: DatapathSystem> {
    sys: S,
    stats: SlotStats,
    flush: Option<FlushPolicy>,
    emit_queue_depth: bool,
    scratch: Vec<Transmitted>,
}

impl<S: DatapathSystem> SlotMachine<S> {
    /// A fresh machine over `sys` with an optional periodic flush schedule
    /// (keyed on the burst counter, as in the paper's simulations).
    pub fn new(sys: S, flush: Option<FlushPolicy>) -> Self {
        SlotMachine {
            sys,
            stats: SlotStats::new(),
            flush,
            emit_queue_depth: false,
            scratch: Vec::new(),
        }
    }

    /// Enables the per-slot [`Observer::queue_depth`] gauge emission the
    /// telemetry plane feeds on. Off by default: the gauge costs an O(n)
    /// scan of the port queues per slot, which the offline engine does not
    /// pay.
    #[must_use]
    pub fn emit_queue_depth(mut self, on: bool) -> Self {
        self.emit_queue_depth = on;
        self
    }

    /// The driven system.
    pub fn system(&self) -> &S {
        &self.sys
    }

    /// Mutable access to the driven system.
    pub fn system_mut(&mut self) -> &mut S {
        &mut self.sys
    }

    /// The run's slot accounting so far.
    pub fn stats(&self) -> &SlotStats {
        &self.stats
    }

    /// The system's objective so far.
    pub fn score(&self) -> u64 {
        self.sys.score()
    }

    /// Packets currently buffered.
    pub fn occupancy(&self) -> usize {
        self.sys.occupancy()
    }

    /// Consumes the machine, returning the system.
    pub fn into_system(self) -> S {
        self.sys
    }

    /// Runs the flush schedule if one is due before the next burst: a
    /// `Drop` flush discards the buffer inline, a `Drain` flush runs
    /// arrival-free slots (excluded from the occupancy statistics) until
    /// the buffer empties. Returns `false` only if a drain-mode flush hit
    /// [`MAX_DRAIN_SLOTS`].
    pub fn flush_check<O: Observer, H: SlotHook<S>>(&mut self, obs: &mut O, hook: &mut H) -> bool {
        let Some(flush) = self.flush else {
            return true;
        };
        if !flush.due(self.stats.bursts) {
            return true;
        }
        match flush.mode {
            FlushMode::Drop => {
                obs.phase_start(Phase::Flush);
                let discarded = self.sys.flush();
                obs.flush(self.stats.slots, discarded);
                obs.phase_end(Phase::Flush);
                true
            }
            FlushMode::Drain => self.drain(obs, hook, false),
        }
    }

    /// Runs one full slot fed by `burst`: the arrival phase (per-packet
    /// arrival events, admission outcomes), the transmission phase, and
    /// end-of-slot accounting.
    ///
    /// # Errors
    ///
    /// Propagates an [`AdmitError`] raised by an inconsistent policy
    /// decision. The burst counter already includes the failed burst and
    /// outcome events were emitted for every packet that received one, but
    /// the slot is left incomplete: no transmission phase ran and the slot
    /// counter did not advance.
    pub fn step<O: Observer, H: SlotHook<S>>(
        &mut self,
        burst: &[S::Packet],
        obs: &mut O,
        hook: &mut H,
    ) -> Result<(), AdmitError> {
        let slot = self.stats.slots;
        obs.slot_start(slot);
        obs.phase_start(Phase::Arrival);
        // Per-packet admission with inline event emission: arrival, then
        // its outcome. Nothing is materialized on the hot path.
        let mut result = Ok(());
        for &pkt in burst {
            let (port, work, value) = S::meta(pkt);
            obs.arrival(slot, port, work, value);
            match self.sys.offer(pkt) {
                Ok(ArrivalOutcome::Admitted) => obs.admitted(slot, port),
                Ok(ArrivalOutcome::PushedOut(victim)) => {
                    obs.pushed_out(slot, victim);
                    obs.admitted(slot, port);
                }
                Ok(ArrivalOutcome::Dropped(reason)) => obs.dropped(slot, port, reason),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        obs.phase_end(Phase::Arrival);
        self.stats.bursts += 1;
        result?;
        self.transmission_phase(slot, obs);
        self.finish_slot(slot, true, obs, hook);
        Ok(())
    }

    /// Runs one transmission-only slot: no arrival phase, no burst counted.
    /// The freerun shard uses this to keep transmitting through arrival
    /// gaps.
    pub fn idle_slot<O: Observer, H: SlotHook<S>>(&mut self, obs: &mut O, hook: &mut H) {
        let slot = self.stats.slots;
        obs.slot_start(slot);
        self.transmission_phase(slot, obs);
        self.finish_slot(slot, true, obs, hook);
    }

    /// Runs arrival-free slots until the buffer empties. Drain slots count
    /// toward the slot total but never move the occupancy maximum; their
    /// occupancies enter the mean only when `count_occupancy` is set (the
    /// final drain), matching the engine's original statistics. Returns
    /// `false` if [`MAX_DRAIN_SLOTS`] elapsed without emptying the buffer
    /// (a non-work-conserving system).
    pub fn drain<O: Observer, H: SlotHook<S>>(
        &mut self,
        obs: &mut O,
        hook: &mut H,
        count_occupancy: bool,
    ) -> bool {
        if self.sys.occupancy() == 0 {
            return true;
        }
        obs.drain_start(self.stats.slots);
        let mut sum_acc = 0u64;
        let mut guard = 0u64;
        while self.sys.occupancy() > 0 {
            let slot = self.stats.slots;
            obs.slot_start(slot);
            obs.phase_start(Phase::Drain);
            self.transmission(slot, obs);
            self.sys.end_slot();
            obs.phase_end(Phase::Drain);
            self.stats.slots += 1;
            sum_acc += self.sys.occupancy() as u64;
            obs.slot_end(slot, self.sys.occupancy());
            if self.emit_queue_depth {
                obs.queue_depth(slot, self.sys.max_queue_depth() as u64);
            }
            hook.slot_done(&self.sys, &self.stats);
            guard += 1;
            if guard >= MAX_DRAIN_SLOTS {
                obs.drain_end(self.stats.slots);
                return false;
            }
        }
        if count_occupancy {
            self.stats.occ_sum += sum_acc;
        }
        obs.drain_end(self.stats.slots);
        true
    }

    /// The transmission phase: run it on the system and forward each
    /// completed packet to the observer. The scratch buffer is reused
    /// across slots, so the uninstrumented path allocates nothing steady
    /// state. This is the one place `Observer::transmitted` fires.
    fn transmission<O: Observer>(&mut self, slot: u64, obs: &mut O) {
        self.scratch.clear();
        self.sys.transmission_phase_into(&mut self.scratch);
        for t in self.scratch.iter() {
            obs.transmitted(slot, t.port, t.latency(), t.value.get());
        }
    }

    /// The transmission phase bracketed with its observer phase markers —
    /// the one place `Phase::Transmission` is emitted. Drain slots run the
    /// same transmission under `Phase::Drain` brackets instead.
    fn transmission_phase<O: Observer>(&mut self, slot: u64, obs: &mut O) {
        obs.phase_start(Phase::Transmission);
        self.transmission(slot, obs);
        obs.phase_end(Phase::Transmission);
    }

    /// End-of-slot bookkeeping shared by arrival and idle slots: advance
    /// the switch clock, update the statistics, and emit the end-of-slot
    /// events.
    fn finish_slot<O: Observer, H: SlotHook<S>>(
        &mut self,
        slot: u64,
        count_max: bool,
        obs: &mut O,
        hook: &mut H,
    ) {
        self.sys.end_slot();
        self.stats.slots += 1;
        let occ = self.sys.occupancy();
        self.stats.occ_sum += occ as u64;
        if count_max {
            self.stats.occ_max = self.stats.occ_max.max(occ);
        }
        obs.slot_end(slot, occ);
        if self.emit_queue_depth {
            obs.queue_depth(slot, self.sys.max_queue_depth() as u64);
        }
        hook.slot_done(&self.sys, &self.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::WorkAdapter;
    use smbm_core::{GreedyWork, WorkRunner};
    use smbm_obs::NullObserver;
    use smbm_switch::{PortId, Work, WorkPacket, WorkSwitchConfig};

    fn machine(ports: u32, buffer: usize) -> SlotMachine<WorkAdapter<WorkRunner<GreedyWork>>> {
        let cfg = WorkSwitchConfig::contiguous(ports, buffer).unwrap();
        SlotMachine::new(
            WorkAdapter::new(WorkRunner::new(cfg, GreedyWork::new(), 1)),
            None,
        )
    }

    fn wp(port: usize, w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(port), Work::new(w))
    }

    #[test]
    fn step_counts_slots_and_occupancy() {
        let mut m = machine(1, 8);
        m.step(&[wp(0, 1); 5], &mut NullObserver, &mut NoHook)
            .unwrap();
        assert_eq!(m.stats().slots, 1);
        assert_eq!(m.stats().bursts, 1);
        assert_eq!(m.stats().occ_max, 4);
        assert_eq!(m.occupancy(), 4);
        assert_eq!(m.score(), 1);
    }

    #[test]
    fn drain_empties_and_counts() {
        let mut m = machine(1, 8);
        m.step(&[wp(0, 1); 3], &mut NullObserver, &mut NoHook)
            .unwrap();
        assert!(m.drain(&mut NullObserver, &mut NoHook, true));
        assert_eq!(m.occupancy(), 0);
        assert_eq!(m.score(), 3);
        assert_eq!(m.stats().slots, 3);
        // Occupancies after each slot: 2, then drain 1, 0.
        assert_eq!(m.stats().occ_sum, 3);
        assert_eq!(m.stats().occ_max, 2);
    }

    #[test]
    fn idle_slot_transmits_without_arrivals() {
        let mut m = machine(1, 8);
        m.step(&[wp(0, 1); 2], &mut NullObserver, &mut NoHook)
            .unwrap();
        m.idle_slot(&mut NullObserver, &mut NoHook);
        assert_eq!(m.stats().slots, 2);
        assert_eq!(m.stats().bursts, 1, "idle slots do not count as bursts");
        assert_eq!(m.score(), 2);
    }

    #[test]
    fn flush_check_fires_on_the_burst_schedule() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut m = SlotMachine::new(
            WorkAdapter::new(WorkRunner::new(cfg, GreedyWork::new(), 1)),
            Some(FlushPolicy::every(2).dropping()),
        );
        m.step(&[wp(0, 1); 6], &mut NullObserver, &mut NoHook)
            .unwrap();
        assert!(m.flush_check(&mut NullObserver, &mut NoHook));
        assert_eq!(m.occupancy(), 5, "period 2: no flush before burst 1");
        m.step(&[], &mut NullObserver, &mut NoHook).unwrap();
        assert!(m.flush_check(&mut NullObserver, &mut NoHook));
        assert_eq!(m.occupancy(), 0, "flush due before burst 2");
    }

    #[test]
    fn hook_sees_every_slot_boundary() {
        struct Count(u64, u64);
        impl<S: DatapathSystem> SlotHook<S> for Count {
            fn slot_done(&mut self, sys: &S, stats: &SlotStats) {
                self.0 += 1;
                self.1 = stats.slots;
                assert_eq!(sys.occupancy() == 0, stats.slots >= 3);
            }
        }
        let mut m = machine(1, 8);
        let mut hook = Count(0, 0);
        m.step(&[wp(0, 1); 3], &mut NullObserver, &mut hook)
            .unwrap();
        m.drain(&mut NullObserver, &mut hook, true);
        assert_eq!(hook.0, 3, "one callback per slot, drain slots included");
        assert_eq!(hook.1, 3);
    }

    #[test]
    fn stats_absorb_sums_and_maxes() {
        let mut a = SlotStats {
            slots: 2,
            bursts: 1,
            occ_sum: 5,
            occ_max: 4,
        };
        let b = SlotStats {
            slots: 3,
            bursts: 3,
            occ_sum: 7,
            occ_max: 2,
        };
        a.absorb(&b);
        assert_eq!(a.slots, 5);
        assert_eq!(a.bursts, 4);
        assert_eq!(a.occ_sum, 12);
        assert_eq!(a.occ_max, 4);
        assert!((a.mean_occupancy() - 2.4).abs() < 1e-12);
    }
}
