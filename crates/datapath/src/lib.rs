//! # smbm-datapath
//!
//! The canonical two-phase slot machine: the paper's slot semantics —
//! periodic flushout, arrival phase with push-out admission, transmission
//! phase, end-of-slot accounting, and arrival-free drains — encoded in
//! exactly one place.
//!
//! Both datapath drivers are thin shells over this crate:
//!
//! * the offline simulation engine (`smbm-sim::run_work` and friends) feeds
//!   a [`SlotMachine`] one trace slot at a time;
//! * the live runtime shard (`smbm-runtime::run_shard`) feeds it whatever
//!   its ingress rings deliver each cycle, with ingest, faults, supervision,
//!   and clock pacing layered around the same machine.
//!
//! Because the phase sequence exists once, a lockstep shard (one burst per
//! trace slot under a virtual clock) reproduces the engine's counters
//! *bit-for-bit* by construction — the differential tests pin it — and any
//! future policy or phase lands in simulation, benchmarks, and the live
//! service by changing this crate alone.
//!
//! The pieces:
//!
//! * [`DatapathSystem`] — the model-erased bundle of switch operations the
//!   machine drives (burst admission, transmission, flush, occupancy,
//!   score, telemetry gauges), with adapters [`WorkAdapter`] /
//!   [`ValueAdapter`] / [`CombinedAdapter`] over anything implementing the
//!   `smbm-core` system traits — owned runners and `&mut` borrows alike;
//! * [`SlotMachine`] — the slot loop state: [`step`] runs one
//!   arrival+transmission slot, [`idle_slot`] a transmission-only slot,
//!   [`flush_check`] the flush schedule, [`drain`] arrival-free slots until
//!   the buffer empties;
//! * [`SlotStats`] — the shared slot accounting (slots, bursts, occupancy
//!   sum/max) both the engine's `RunSummary` and the runtime's shard
//!   reports are rebuilt on;
//! * [`SlotHook`] — a per-slot completion callback for drivers that must
//!   record progress as the run advances (the supervised shard writes its
//!   crash-safe accounting through it; the engine passes [`NoHook`]).
//!
//! [`step`]: SlotMachine::step
//! [`idle_slot`]: SlotMachine::idle_slot
//! [`flush_check`]: SlotMachine::flush_check
//! [`drain`]: SlotMachine::drain

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod system;

pub use machine::{NoHook, SlotHook, SlotMachine, SlotStats, MAX_BURST_BATCHES, MAX_DRAIN_SLOTS};
pub use system::{CombinedAdapter, DatapathSystem, ValueAdapter, WorkAdapter};
